"""Documentation consistency checks.

- the generated API index is in sync with the code;
- README and DESIGN reference files that actually exist;
- every example script is listed in the README.
"""

import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestApiDocSync:
    def test_generated_api_doc_matches_code(self):
        sys.path.insert(0, str(ROOT / "tools"))
        try:
            import gen_api_docs

            expected = gen_api_docs.generate()
        finally:
            sys.path.pop(0)
        current = (ROOT / "docs" / "API.md").read_text()
        assert current == expected, (
            "docs/API.md is stale; run `python tools/gen_api_docs.py`"
        )


class TestReadme:
    def test_examples_listed(self):
        readme = (ROOT / "README.md").read_text()
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"{script.name} missing from README"

    def test_top_level_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/MODEL.md", "docs/API.md"):
            assert (ROOT / name).exists(), name


class TestDesignInventory:
    def test_design_mentions_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        src = ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir() and not p.name.startswith("_")):
            assert package in design, f"subpackage {package} missing from DESIGN.md"

    def test_experiments_covers_benchmarks(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            stem = bench.stem.replace("bench_", "")
            # Every bench file's topic appears in EXPERIMENTS.md (by a
            # keyword derived from its name).
            keyword = {
                "bounds": "E-L2.1",
                "tsp_correspondence": "E-P2.1",
                "dfs_approx": "E-T3.1",
                "equijoin_perfect": "E-T3.2",
                "worst_case_family": "E-T3.3",
                "universality": "E-L3.3",
                "hardness_scaling": "E-T4.2",
                "reductions": "E-T4.3",
                "approx_quality": "E-APPROX",
                "join_algorithms": "E-JOINS",
                "phase_transition": "E-PHASE",
                "extensions": "E-S5",
                "ablations": "Ablations",
                "engine": "engine",
            }.get(stem)
            if keyword is None:
                continue
            assert keyword.lower() in experiments.lower(), (
                f"EXPERIMENTS.md lacks coverage for {bench.name}"
            )
