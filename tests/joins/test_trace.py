"""Tests for the trace bridge (join executions → pebbling schemes)."""

import pytest

from repro.errors import SchemeError
from repro.joins.algorithms import sort_merge_join
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import Equality
from repro.joins.trace import TraceReport, scheme_from_output, trace_report
from repro.relations.relation import Relation


@pytest.fixture
def simple_join():
    left = Relation("R", [1, 1, 2])
    right = Relation("S", [1, 2, 2])
    graph = build_join_graph(left, right, Equality())
    return left, right, graph


class TestSchemeFromOutput:
    def test_valid_output(self, simple_join):
        left, right, graph = simple_join
        output = sort_merge_join(left, right)
        scheme = scheme_from_output(graph, output)
        scheme.validate(graph.without_isolated_vertices())

    def test_incomplete_output_rejected(self, simple_join):
        # Failure injection: an algorithm that forgets a result pair.
        left, right, graph = simple_join
        output = sort_merge_join(left, right)[:-1]
        with pytest.raises(SchemeError):
            scheme_from_output(graph, output)

    def test_duplicated_output_rejected(self, simple_join):
        left, right, graph = simple_join
        output = sort_merge_join(left, right)
        with pytest.raises(SchemeError):
            scheme_from_output(graph, output + [output[0]])

    def test_phantom_pair_rejected(self, simple_join):
        # Failure injection: an algorithm emitting a non-joining pair.
        from repro.relations.relation import TupleRef

        left, right, graph = simple_join
        output = sort_merge_join(left, right)
        phantom = (TupleRef("R", 2), TupleRef("S", 0))  # 2 != 1
        with pytest.raises(SchemeError):
            scheme_from_output(graph, [phantom] + output)


class TestTraceReport:
    def test_report_fields(self, simple_join):
        left, right, graph = simple_join
        report = trace_report(graph, sort_merge_join(left, right), "sm")
        assert report.algorithm == "sm"
        assert report.output_size == graph.num_edges
        assert report.lower_bound == graph.num_edges
        assert report.effective_cost >= report.lower_bound
        assert report.cost_ratio >= 1.0
        assert len(report.row()) == 5

    def test_empty_join(self):
        left = Relation("R", [1])
        right = Relation("S", [2])
        graph = build_join_graph(left, right, Equality())
        report = trace_report(graph, [], "none")
        assert report.output_size == 0
        assert report.cost_ratio == 1.0

    def test_empty_join_with_spurious_output_rejected(self):
        from repro.relations.relation import TupleRef

        left = Relation("R", [1])
        right = Relation("S", [2])
        graph = build_join_graph(left, right, Equality())
        with pytest.raises(SchemeError):
            trace_report(graph, [(TupleRef("R", 0), TupleRef("S", 0))], "bad")
