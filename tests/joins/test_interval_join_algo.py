"""Tests for the temporal merge join algorithm."""

import pytest

from repro.errors import PredicateError
from repro.joins.algorithms import interval_merge_join, plane_sweep_join
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SpatialOverlap
from repro.joins.trace import scheme_from_output, trace_report
from repro.geometry.interval import Interval
from repro.relations.relation import Relation
from repro.workloads.spatial import sessions_interval_workload


class TestIntervalMergeJoin:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_plane_sweep(self, seed):
        left, right = sessions_interval_workload(25, 25, seed=seed)
        assert set(interval_merge_join(left, right)) == set(
            plane_sweep_join(left, right)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_join_graph(self, seed):
        left, right = sessions_interval_workload(20, 20, seed=10 + seed)
        graph = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
        assert set(interval_merge_join(left, right)) == set(graph.edges())

    def test_each_pair_once(self):
        left, right = sessions_interval_workload(30, 30, seed=4)
        output = interval_merge_join(left, right)
        assert len(output) == len(set(output))

    def test_boundary_contact_reported(self):
        left = Relation("R", [Interval(0, 2)])
        right = Relation("S", [Interval(2, 5)])
        assert len(interval_merge_join(left, right)) == 1

    def test_requires_interval_columns(self):
        with pytest.raises(PredicateError):
            interval_merge_join(Relation("R", [1]), Relation("S", [Interval(0, 1)]))

    def test_trace_is_valid_scheme(self):
        left, right = sessions_interval_workload(20, 20, seed=6)
        graph = build_join_graph(left, right, SpatialOverlap())
        if graph.num_edges == 0:
            pytest.skip("degenerate draw")
        scheme = scheme_from_output(graph, interval_merge_join(left, right))
        scheme.validate(graph.without_isolated_vertices())

    def test_merge_order_pebbles_well_on_sorted_sessions(self):
        # Nested/chained sessions: the merge order keeps adjacent-in-time
        # intervals adjacent in emission, keeping the ratio moderate.
        left, right = sessions_interval_workload(40, 40, mean_length=40.0, seed=7)
        graph = build_join_graph(left, right, SpatialOverlap())
        report = trace_report(graph, interval_merge_join(left, right), "interval-merge")
        assert report.cost_ratio <= 2.0  # within the naive bound, typically ~1.2
