"""Tests for the join algorithms: correctness and pebbling-trace shape."""

import random

import pytest

from repro.geometry.primitives import Polygon
from repro.joins.algorithms import (
    block_nested_loops,
    hash_join,
    index_nested_loops,
    inverted_index_join,
    pbsm_join,
    plane_sweep_join,
    rtree_join,
    signature_nested_loops,
    sort_merge_join,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
from repro.joins.trace import scheme_from_output, trace_report
from repro.relations.relation import Relation
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import market_basket_workload, zipf_sets_workload
from repro.workloads.spatial import uniform_rectangles_workload


def _result_set(output):
    return set(output)


def _expected_pairs(graph):
    return set(graph.edges())


class TestEquijoinAlgorithms:
    @pytest.fixture
    def workload(self):
        return zipf_equijoin_workload(25, 25, key_universe=8, skew=0.7, seed=5)

    def test_all_algorithms_agree(self, workload):
        left, right = workload
        graph = build_join_graph(left, right, Equality())
        expected = _expected_pairs(graph)
        assert _result_set(hash_join(left, right)) == expected
        assert _result_set(sort_merge_join(left, right)) == expected
        assert _result_set(index_nested_loops(left, right)) == expected
        assert (
            _result_set(block_nested_loops(left, right, Equality(), block_size=7))
            == expected
        )

    def test_each_pair_emitted_once(self, workload):
        left, right = workload
        for algo in (hash_join, sort_merge_join, index_nested_loops):
            output = algo(left, right)
            assert len(output) == len(set(output))

    def test_sort_merge_pebbles_perfectly(self, workload):
        # Theorem 3.2 realized by an actual algorithm.
        left, right = workload
        graph = build_join_graph(left, right, Equality())
        report = trace_report(graph, sort_merge_join(left, right), "sm")
        assert report.cost_ratio == 1.0

    def test_index_nested_loops_pays_jumps(self):
        # A single key group 3x3: INL re-scans the bucket per outer tuple.
        left = Relation("R", [1, 1, 1])
        right = Relation("S", [1, 1, 1])
        graph = build_join_graph(left, right, Equality())
        report = trace_report(graph, index_nested_loops(left, right), "inl")
        assert report.effective_cost > report.output_size
        sm_report = trace_report(graph, sort_merge_join(left, right), "sm")
        assert sm_report.effective_cost == report.output_size

    def test_hash_join_build_side_choice(self):
        small = Relation("R", [1])
        large = Relation("S", [1] * 5)
        output = hash_join(small, large)
        # Pairs always reported (left, right) regardless of build side.
        assert all(ref.relation == "R" for ref, _ in output)
        output2 = hash_join(large, small)
        assert all(ref.relation == "S" for ref, _ in output2)

    def test_sort_merge_on_strings(self):
        left = Relation("R", ["b", "a", "b"])
        right = Relation("S", ["b", "c"])
        graph = build_join_graph(left, right, Equality())
        assert _result_set(sort_merge_join(left, right)) == _expected_pairs(graph)


class TestSpatialAlgorithms:
    @pytest.fixture
    def workload(self):
        return uniform_rectangles_workload(25, 25, seed=8)

    def test_all_algorithms_agree(self, workload):
        left, right = workload
        graph = build_join_graph(left, right, SpatialOverlap())
        expected = _expected_pairs(graph)
        assert _result_set(plane_sweep_join(left, right)) == expected
        assert _result_set(rtree_join(left, right)) == expected
        assert _result_set(pbsm_join(left, right)) == expected

    def test_pbsm_reports_replication(self, workload):
        left, right = workload
        output, stats = pbsm_join(left, right, grid=3, report_stats=True)
        assert stats["replication_factor"] >= 1.0
        assert stats["duplicates_suppressed"] >= 0
        assert len(output) == len(set(output))

    def test_polygon_join(self):
        def tri(x, y):
            return Polygon([(x, y), (x + 3, y), (x + 1.5, y + 3)])

        rng = random.Random(4)
        left = Relation("R", [tri(rng.uniform(0, 12), rng.uniform(0, 12)) for _ in range(10)])
        right = Relation("S", [tri(rng.uniform(0, 12), rng.uniform(0, 12)) for _ in range(10)])
        graph = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
        expected = _expected_pairs(graph)
        assert _result_set(plane_sweep_join(left, right)) == expected
        assert _result_set(rtree_join(left, right)) == expected
        assert _result_set(pbsm_join(left, right)) == expected

    def test_traces_are_valid_schemes(self, workload):
        left, right = workload
        graph = build_join_graph(left, right, SpatialOverlap())
        if graph.num_edges == 0:
            pytest.skip("degenerate workload")
        for algo in (plane_sweep_join, rtree_join, pbsm_join):
            scheme = scheme_from_output(graph, algo(left, right))
            scheme.validate(graph.without_isolated_vertices())


class TestSetAlgorithms:
    @pytest.fixture
    def workload(self):
        return zipf_sets_workload(20, 20, universe=12, left_size=2, right_size=6, seed=3)

    def test_algorithms_agree(self, workload):
        left, right = workload
        graph = build_join_graph(left, right, SetContainment())
        expected = _expected_pairs(graph)
        assert _result_set(signature_nested_loops(left, right)) == expected
        assert _result_set(inverted_index_join(left, right)) == expected

    def test_signature_stats(self, workload):
        left, right = workload
        output, stats = signature_nested_loops(left, right, report_stats=True)
        assert stats["candidates"] >= len(output)
        assert stats["false_positives"] == stats["candidates"] - len(output)

    def test_market_basket(self):
        patterns, baskets = market_basket_workload(
            10, 15, catalog=30, hit_fraction=1.0, seed=2
        )
        output = inverted_index_join(patterns, baskets)
        # Every pattern was sampled from some basket: all patterns match.
        matched_patterns = {ref for ref, _ in output}
        assert len(matched_patterns) == 10

    def test_requires_set_columns(self):
        from repro.errors import PredicateError

        with pytest.raises(PredicateError):
            inverted_index_join(Relation("R", [1]), Relation("S", [{1}]))
