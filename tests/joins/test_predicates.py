"""Tests for join predicate classes."""

import pytest

from repro.errors import PredicateError
from repro.geometry.primitives import Polygon, Rectangle
from repro.joins.predicates import (
    Band,
    Equality,
    SetContainment,
    SetOverlap,
    SpatialOverlap,
)
from repro.relations.domains import Domain


class TestEquality:
    def test_matches(self):
        p = Equality()
        assert p.matches(3, 3)
        assert not p.matches(3, 4)
        assert p.matches("a", "a")
        assert p.matches(frozenset([1]), frozenset([1]))

    def test_accepts_same_domain(self):
        p = Equality()
        assert p.accepts(Domain.NUMERIC, Domain.NUMERIC)
        assert p.accepts(Domain.SET, Domain.SET)
        assert not p.accepts(Domain.NUMERIC, Domain.STRING)

    def test_check_domains_raises(self):
        with pytest.raises(PredicateError):
            Equality().check_domains(Domain.NUMERIC, Domain.SET)


class TestSpatialOverlap:
    def test_matches_rectangles(self):
        p = SpatialOverlap()
        assert p.matches(Rectangle(0, 0, 2, 2), Rectangle(1, 1, 3, 3))
        assert not p.matches(Rectangle(0, 0, 1, 1), Rectangle(5, 5, 6, 6))

    def test_matches_polygons(self):
        p = SpatialOverlap()
        a = Polygon([(0, 0), (2, 0), (1, 2)])
        b = Polygon([(1, 1), (3, 1), (2, 3)])
        assert p.matches(a, b)

    def test_accepts_only_spatial(self):
        p = SpatialOverlap()
        assert p.accepts(Domain.RECTANGLE, Domain.RECTANGLE)
        assert p.accepts(Domain.POLYGON, Domain.POLYGON)
        assert not p.accepts(Domain.NUMERIC, Domain.RECTANGLE)


class TestSetPredicates:
    def test_containment_direction(self):
        p = SetContainment()
        assert p.matches({1}, {1, 2})
        assert not p.matches({1, 2}, {1})

    def test_overlap(self):
        p = SetOverlap()
        assert p.matches({1, 5}, {5, 9})
        assert not p.matches({1}, {2})

    def test_accepts(self):
        assert SetContainment().accepts(Domain.SET, Domain.SET)
        assert not SetContainment().accepts(Domain.SET, Domain.NUMERIC)


class TestBand:
    def test_matches(self):
        p = Band(2.0)
        assert p.matches(5, 6.5)
        assert not p.matches(5, 8)

    def test_zero_width_is_equality(self):
        p = Band(0)
        assert p.matches(5, 5)
        assert not p.matches(5, 5.01)

    def test_negative_width_rejected(self):
        with pytest.raises(PredicateError):
            Band(-1)

    def test_accepts_numeric_only(self):
        p = Band(1)
        assert p.accepts(Domain.NUMERIC, Domain.NUMERIC)
        assert not p.accepts(Domain.STRING, Domain.STRING)

    def test_repr_shows_width(self):
        assert "0.5" in repr(Band(0.5))
