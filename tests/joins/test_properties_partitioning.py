"""Property-based tests for partitioned joins and the k-pebble game."""

from hypothesis import given, settings, strategies as st

from repro.graphs.bipartite import BipartiteGraph

COMMON = settings(max_examples=40, deadline=None)


@st.composite
def small_bipartite(draw, max_side=4):
    n_left = draw(st.integers(1, max_side))
    n_right = draw(st.integers(1, max_side))
    cells = [(i, j) for i in range(n_left) for j in range(n_right)]
    chosen = draw(st.lists(st.sampled_from(cells), min_size=1, max_size=len(cells)))
    graph = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    for i, j in set(chosen):
        graph.add_edge(f"u{i}", f"v{j}")
    return graph


@COMMON
@given(small_bipartite(), st.integers(1, 3), st.integers(1, 3))
def test_all_strategies_produce_valid_partitionings(graph, p, q):
    from repro.joins.partitioning import (
        greedy_partitioning,
        hash_partitioning,
        round_robin_partitioning,
    )

    for strategy in (hash_partitioning, round_robin_partitioning, greedy_partitioning):
        part = strategy(graph, p, q)
        part.validate(graph)
        assert 0 <= part.cost(graph) <= p * q


@COMMON
@given(small_bipartite(max_side=3), st.integers(1, 2), st.integers(1, 2))
def test_bruteforce_optimum_bounds_heuristics(graph, p, q):
    from repro.errors import InstanceTooLargeError
    from repro.joins.partitioning import (
        cell_capacity_lower_bound,
        greedy_partitioning,
        hash_partitioning,
        optimal_partitioning_bruteforce,
    )

    try:
        opt = optimal_partitioning_bruteforce(graph, p, q).cost(graph)
    except InstanceTooLargeError:
        return
    assert cell_capacity_lower_bound(graph, p, q) <= opt
    assert opt <= hash_partitioning(graph, p, q).cost(graph)
    assert opt <= greedy_partitioning(graph, p, q).cost(graph)


@COMMON
@given(small_bipartite(max_side=3))
def test_kpebble_greedy_wins_and_respects_bounds(graph):
    from repro.core.kpebble import (
        greedy_kpebble_cost,
        kpebble_lower_bound,
    )

    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return
    for k in (2, 3):
        cost = greedy_kpebble_cost(working, k)
        assert cost >= kpebble_lower_bound(working)


@COMMON
@given(small_bipartite(max_side=3))
def test_kpebble_bruteforce_monotone_in_k(graph):
    from repro.errors import InstanceTooLargeError
    from repro.core.kpebble import optimal_kpebble_cost_bruteforce

    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return
    try:
        costs = [optimal_kpebble_cost_bruteforce(working, k) for k in (2, 3, 4)]
    except InstanceTooLargeError:
        return
    assert all(a >= b for a, b in zip(costs, costs[1:]))


@COMMON
@given(small_bipartite(max_side=3))
def test_kpebble_two_matches_paper_model(graph):
    from repro.errors import InstanceTooLargeError
    from repro.core.kpebble import optimal_kpebble_cost_bruteforce
    from repro.core.solvers.exact import solve_exact

    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return
    try:
        two_pebble = optimal_kpebble_cost_bruteforce(working, 2)
    except InstanceTooLargeError:
        return
    assert two_pebble == solve_exact(working).scheme.cost()
