"""Property-based tests (hypothesis) for the multiway join engine.

Quantifies over random instances of five query shapes — acyclic (path,
star) and cyclic (triangle, 4-cycle, ternary-overlap) — and asserts:

- LFTJ ≡ generic join ≡ binary cascade ≡ the naive backtracking oracle,
  as binding *sets* in canonical column order, for every variable order;
- LFTJ intermediate counters never exceed the AGM bound (each satisfied
  prefix extends to distinct full bindings only on the last level, so
  per-level matches are bounded by the bound on the projected query —
  we pin the triangle case, where intermediates ≤ 3 · AGM is loose and
  output ≤ AGM is tight).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.joins.multiway import (
    Atom,
    MultiwayQuery,
    agm_bound,
    binary_cascade,
    generic_join,
    leapfrog_triejoin,
    naive_multiway,
)

COMMON = settings(max_examples=40, deadline=None)

# (name, variables) per atom; covers acyclic and cyclic hypergraphs.
SHAPES = {
    "path": (("R", ("a", "b")), ("S", ("b", "c")), ("T", ("c", "d"))),
    "star": (("R", ("a", "b")), ("S", ("a", "c")), ("T", ("a", "d"))),
    "triangle": (("R", ("a", "b")), ("S", ("b", "c")), ("T", ("c", "a"))),
    "four_cycle": (
        ("R", ("a", "b")),
        ("S", ("b", "c")),
        ("T", ("c", "d")),
        ("U", ("d", "a")),
    ),
    "ternary": (("R", ("a", "b", "c")), ("S", ("b", "c", "d"))),
}


@st.composite
def random_query(draw):
    shape = SHAPES[draw(st.sampled_from(sorted(SHAPES)))]
    atoms = []
    for name, variables in shape:
        rows = draw(
            st.lists(
                st.tuples(*[st.integers(0, 5)] * len(variables)),
                min_size=0,
                max_size=12,
            )
        )
        atoms.append(Atom(name, variables, tuple(rows)))
    return MultiwayQuery(atoms=tuple(atoms))


@COMMON
@given(random_query())
def test_all_algorithms_agree_with_naive_oracle(query):
    expected = naive_multiway(query)
    assert leapfrog_triejoin(query).binding_set() == expected
    assert generic_join(query).binding_set() == expected
    assert binary_cascade(query).binding_set() == expected


@COMMON
@given(random_query(), st.integers(0, 2**31 - 1))
def test_agreement_holds_for_every_variable_order(query, order_seed):
    order = list(query.variables())
    random.Random(order_seed).shuffle(order)
    order = tuple(order)
    expected = naive_multiway(query)
    assert leapfrog_triejoin(query, order=order).binding_set() == expected
    assert generic_join(query, order=order).binding_set() == expected


@COMMON
@given(random_query())
def test_no_duplicate_bindings_emitted(query):
    for algo in (leapfrog_triejoin, generic_join, binary_cascade):
        result = algo(query)
        assert len(result.bindings) == len(result.binding_set())


@st.composite
def triangle_instance(draw):
    """Random triangle instances, mixing uniform rows with star/co-star
    rows so skewed (AGM-tight) corners of the space get exercised."""
    def edge_rows():
        uniform = draw(
            st.lists(
                st.tuples(st.integers(0, 8), st.integers(0, 8)),
                min_size=1,
                max_size=15,
            )
        )
        arms = draw(st.integers(0, 8))
        skewed = [(0, i) for i in range(arms + 1)] + [
            (i, 0) for i in range(1, arms + 1)
        ]
        return tuple(uniform) + tuple(skewed)

    return MultiwayQuery(
        atoms=(
            Atom("R", ("a", "b"), edge_rows()),
            Atom("S", ("b", "c"), edge_rows()),
            Atom("T", ("c", "a"), edge_rows()),
        )
    )


@COMMON
@given(triangle_instance())
def test_lftj_output_and_intermediates_within_agm_on_triangles(query):
    bound = agm_bound(query)
    result = leapfrog_triejoin(query)
    # The output itself obeys AGM, and LFTJ's per-level match counter is
    # bounded by one partial match per level per output-feasible prefix:
    # ≤ |vars| · AGM in general, and empirically ≤ AGM on these shapes.
    assert result.output_size <= bound + 1e-9
    assert result.intermediates <= 3 * bound + 1e-9


@COMMON
@given(triangle_instance())
def test_generic_join_intermediates_within_agm_on_triangles(query):
    bound = agm_bound(query)
    result = generic_join(query)
    assert result.output_size <= bound + 1e-9
    assert result.intermediates <= 3 * bound + 1e-9
