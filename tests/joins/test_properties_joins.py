"""Property-based tests (hypothesis) across the join layer.

Each property quantifies over randomly drawn relations and asserts a
cross-implementation agreement or a model invariant:

- accelerated join-graph extraction ≡ naive, per predicate class;
- every join algorithm's output order forms a valid pebbling scheme;
- the engine's executed rows ≡ the naive cross-product filter.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import JoinQuery, execute
from repro.geometry.interval import Interval
from repro.geometry.primitives import Rectangle
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import (
    Band,
    Equality,
    SetContainment,
    SetOverlap,
    SpatialOverlap,
)
from repro.joins.trace import scheme_from_output
from repro.relations.relation import Relation

COMMON = settings(max_examples=40, deadline=None)

numeric_relations = st.builds(
    lambda values: Relation("R", values),
    st.lists(st.integers(0, 6), min_size=1, max_size=12),
)
numeric_relations_s = st.builds(
    lambda values: Relation("S", values),
    st.lists(st.integers(0, 6), min_size=1, max_size=12),
)


@st.composite
def set_relation(draw, name: str):
    values = draw(
        st.lists(
            st.frozensets(st.integers(0, 7), min_size=0, max_size=4),
            min_size=1,
            max_size=10,
        )
    )
    return Relation(name, values)


@st.composite
def rect_relation(draw, name: str):
    def to_rect(t):
        x, y, w, h = t
        return Rectangle(x, y, x + w, y + h)

    values = draw(
        st.lists(
            st.tuples(
                st.floats(0, 20, allow_nan=False),
                st.floats(0, 20, allow_nan=False),
                st.floats(0.1, 6, allow_nan=False),
                st.floats(0.1, 6, allow_nan=False),
            ).map(to_rect),
            min_size=1,
            max_size=10,
        )
    )
    return Relation(name, values)


@st.composite
def interval_relation(draw, name: str):
    def to_interval(t):
        lo, length = t
        return Interval(lo, lo + length)

    values = draw(
        st.lists(
            st.tuples(
                st.floats(0, 40, allow_nan=False),
                st.floats(0.1, 10, allow_nan=False),
            ).map(to_interval),
            min_size=1,
            max_size=10,
        )
    )
    return Relation(name, values)


@COMMON
@given(numeric_relations, numeric_relations_s)
def test_equality_accelerated_equals_naive(left, right):
    fast = build_join_graph(left, right, Equality())
    slow = build_join_graph(left, right, Equality(), accelerate=False)
    assert fast == slow


@COMMON
@given(set_relation("R"), set_relation("S"))
def test_containment_accelerated_equals_naive(left, right):
    fast = build_join_graph(left, right, SetContainment())
    slow = build_join_graph(left, right, SetContainment(), accelerate=False)
    assert fast == slow


@COMMON
@given(set_relation("R"), set_relation("S"))
def test_set_overlap_accelerated_equals_naive(left, right):
    fast = build_join_graph(left, right, SetOverlap())
    slow = build_join_graph(left, right, SetOverlap(), accelerate=False)
    assert fast == slow


@COMMON
@given(rect_relation("R"), rect_relation("S"))
def test_spatial_accelerated_equals_naive(left, right):
    fast = build_join_graph(left, right, SpatialOverlap())
    slow = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
    assert fast == slow


@COMMON
@given(interval_relation("R"), interval_relation("S"))
def test_interval_accelerated_equals_naive(left, right):
    fast = build_join_graph(left, right, SpatialOverlap())
    slow = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
    assert fast == slow


@COMMON
@given(interval_relation("R"), interval_relation("S"))
def test_interval_overlap_equals_lifted_rectangles(left, right):
    lifted_left = Relation("R", [Rectangle(v.lo, 0.0, v.hi, 1.0) for v in left.values])
    lifted_right = Relation("S", [Rectangle(v.lo, 0.0, v.hi, 1.0) for v in right.values])
    a = build_join_graph(left, right, SpatialOverlap())
    b = build_join_graph(lifted_left, lifted_right, SpatialOverlap())
    assert set(a.edges()) == set(b.edges())


@COMMON
@given(numeric_relations, numeric_relations_s)
def test_all_equijoin_algorithms_trace_validly(left, right):
    from repro.joins.algorithms import hash_join, index_nested_loops, sort_merge_join

    graph = build_join_graph(left, right, Equality())
    for algo in (hash_join, sort_merge_join, index_nested_loops):
        output = algo(left, right)
        if graph.num_edges == 0:
            assert output == []
            continue
        scheme = scheme_from_output(graph, output)
        scheme.validate(graph.without_isolated_vertices())


@COMMON
@given(numeric_relations, numeric_relations_s)
def test_engine_rows_equal_naive_filter(left, right):
    result = execute(JoinQuery(left, right, Equality()), with_trace=False)
    naive = [
        (a, b) for a in left.values for b in right.values if a == b
    ]
    assert sorted(result.rows) == sorted(naive)


@COMMON
@given(numeric_relations, numeric_relations_s, st.floats(0, 3, allow_nan=False))
def test_band_accelerated_equals_naive(left, right, width):
    fast = build_join_graph(left, right, Band(width))
    slow = build_join_graph(left, right, Band(width), accelerate=False)
    assert fast == slow


# ---------------------------------------------------------------------------
# Boundary semantics of the interval merge join (closed intervals).
#
# The merge's tie-break takes the *left* side when `lo` values are equal;
# these properties pin that the tie-break, the active-list pruning
# (`hi >= lo`, which keeps touching intervals alive), and zero-width
# intervals all agree with the predicate itself and with the plane sweep.
# Integer endpoints with tiny lengths force heavy ties, touching endpoints
# (a.hi == b.lo), and zero-width (point) intervals.
# ---------------------------------------------------------------------------


@st.composite
def tie_heavy_intervals(draw, name: str):
    values = draw(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 2)).map(
                lambda t: Interval(float(t[0]), float(t[0] + t[1]))
            ),
            min_size=1,
            max_size=10,
        )
    )
    return Relation(name, values)


@COMMON
@given(tie_heavy_intervals("R"), tie_heavy_intervals("S"))
def test_interval_merge_join_boundary_semantics(left, right):
    from collections import Counter

    from repro.geometry.interval import sweep_interval_pairs
    from repro.joins.algorithms import interval_merge_join

    merged = interval_merge_join(left, right)
    predicate_pairs = [
        (r_ref, s_ref)
        for r_ref, r_iv in left.items()
        for s_ref, s_iv in right.items()
        if r_iv.overlaps(s_iv)
    ]
    # Multiset equality: every θ-matching pair exactly once, none invented.
    assert Counter(merged) == Counter(predicate_pairs)
    swept = sweep_interval_pairs(
        [(v, ref) for ref, v in left.items()],
        [(v, ref) for ref, v in right.items()],
    )
    assert Counter(merged) == Counter(swept)


@COMMON
@given(tie_heavy_intervals("R"), tie_heavy_intervals("S"))
def test_interval_merge_join_emits_touching_and_zero_width(left, right):
    from repro.joins.algorithms import interval_merge_join

    out = set(interval_merge_join(left, right))
    for r_ref, r_iv in left.items():
        for s_ref, s_iv in right.items():
            if r_iv.hi == s_iv.lo or s_iv.hi == r_iv.lo:
                # Touching endpoints overlap under closed semantics …
                assert (r_ref, s_ref) in out
            if r_iv.lo == r_iv.hi == s_iv.lo == s_iv.hi:
                # … and so do coincident zero-width (point) intervals.
                assert (r_ref, s_ref) in out


# ---------------------------------------------------------------------------
# Edge-dedup uniformity: every extraction path inserts through one dedup
# point, so naive and accelerated graphs must agree as edge *multisets*
# (sorted edge lists + per-vertex degrees), not merely as sets.
# ---------------------------------------------------------------------------


def _assert_edge_multisets_match(fast, slow):
    assert fast.edges() == slow.edges()
    assert fast.num_edges == slow.num_edges
    for vertex in fast.left + fast.right:
        assert fast.degree(vertex) == slow.degree(vertex)


@COMMON
@given(numeric_relations, numeric_relations_s)
def test_equality_edge_multisets_match(left, right):
    fast = build_join_graph(left, right, Equality())
    slow = build_join_graph(left, right, Equality(), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


@COMMON
@given(interval_relation("R"), interval_relation("S"))
def test_interval_edge_multisets_match(left, right):
    fast = build_join_graph(left, right, SpatialOverlap())
    slow = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


@COMMON
@given(rect_relation("R"), rect_relation("S"))
def test_spatial_edge_multisets_match(left, right):
    fast = build_join_graph(left, right, SpatialOverlap())
    slow = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


@COMMON
@given(set_relation("R"), set_relation("S"))
def test_set_overlap_edge_multisets_match(left, right):
    fast = build_join_graph(left, right, SetOverlap())
    slow = build_join_graph(left, right, SetOverlap(), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


@COMMON
@given(set_relation("R"), set_relation("S"))
def test_containment_edge_multisets_match(left, right):
    fast = build_join_graph(left, right, SetContainment())
    slow = build_join_graph(left, right, SetContainment(), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


@COMMON
@given(numeric_relations, numeric_relations_s, st.floats(0, 3, allow_nan=False))
def test_band_edge_multisets_match(left, right, width):
    fast = build_join_graph(left, right, Band(width))
    slow = build_join_graph(left, right, Band(width), accelerate=False)
    _assert_edge_multisets_match(fast, slow)


def test_dedup_pairs_keeps_first_occurrence_order():
    from repro.joins.join_graph import _dedup_pairs

    pairs = [("a", 1), ("b", 2), ("a", 1), ("c", 3), ("b", 2)]
    assert list(_dedup_pairs(pairs)) == [("a", 1), ("b", 2), ("c", 3)]
