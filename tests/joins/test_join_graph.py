"""Tests for join-graph extraction: accelerated paths vs the naive oracle."""

import random

import pytest

from repro.errors import PredicateError
from repro.geometry.primitives import Polygon, Rectangle
from repro.joins.join_graph import build_join_graph, join_output_size
from repro.joins.predicates import (
    Band,
    Equality,
    SetContainment,
    SetOverlap,
    SpatialOverlap,
)
from repro.relations.relation import Relation, TupleRef
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import uniform_rectangles_workload


class TestEquijoinGraph:
    def test_basic(self):
        r = Relation("R", [1, 1, 2])
        s = Relation("S", [1, 3])
        graph = build_join_graph(r, s, Equality())
        assert graph.num_edges == 2
        assert graph.has_edge(TupleRef("R", 0), TupleRef("S", 0))
        assert graph.has_edge(TupleRef("R", 1), TupleRef("S", 0))

    def test_equijoin_graph_is_union_of_bicliques(self):
        from repro.core.solvers.equijoin import is_union_of_bicliques

        rng = random.Random(0)
        r = Relation("R", [rng.randrange(6) for _ in range(30)])
        s = Relation("S", [rng.randrange(6) for _ in range(30)])
        graph = build_join_graph(r, s, Equality())
        assert is_union_of_bicliques(graph)

    def test_accelerated_matches_naive(self):
        rng = random.Random(1)
        r = Relation("R", [rng.randrange(8) for _ in range(25)])
        s = Relation("S", [rng.randrange(8) for _ in range(25)])
        fast = build_join_graph(r, s, Equality())
        slow = build_join_graph(r, s, Equality(), accelerate=False)
        assert fast == slow

    def test_domain_mismatch_rejected(self):
        r = Relation("R", [1])
        s = Relation("S", ["a"])
        with pytest.raises(PredicateError):
            build_join_graph(r, s, Equality())

    def test_all_vertices_present_even_dangling(self):
        r = Relation("R", [1, 99])
        s = Relation("S", [1])
        graph = build_join_graph(r, s, Equality())
        assert graph.has_vertex(TupleRef("R", 1))
        assert graph.num_edges == 1


class TestSpatialGraph:
    @pytest.mark.parametrize("seed", range(4))
    def test_rectangle_sweep_matches_naive(self, seed):
        r, s = uniform_rectangles_workload(20, 20, seed=seed)
        fast = build_join_graph(r, s, SpatialOverlap())
        slow = build_join_graph(r, s, SpatialOverlap(), accelerate=False)
        assert fast == slow

    def test_polygon_filter_verify_matches_naive(self):
        def tri(x, y):
            return Polygon([(x, y), (x + 2, y), (x + 1, y + 2)])

        rng = random.Random(2)
        r = Relation("R", [tri(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)])
        s = Relation("S", [tri(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)])
        fast = build_join_graph(r, s, SpatialOverlap())
        slow = build_join_graph(r, s, SpatialOverlap(), accelerate=False)
        assert fast == slow


class TestContainmentGraph:
    @pytest.mark.parametrize("seed", range(4))
    def test_inverted_index_matches_naive(self, seed):
        r, s = zipf_sets_workload(15, 15, universe=10, left_size=2, right_size=5, seed=seed)
        fast = build_join_graph(r, s, SetContainment())
        slow = build_join_graph(r, s, SetContainment(), accelerate=False)
        assert fast == slow

    def test_set_overlap_basic(self):
        r = Relation("R", [frozenset({1, 2})])
        s = Relation("S", [frozenset({2, 3}), frozenset({4})])
        graph = build_join_graph(r, s, SetOverlap())
        assert graph.num_edges == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_set_overlap_accelerated_matches_naive(self, seed):
        r, s = zipf_sets_workload(15, 15, universe=10, left_size=3, right_size=4, seed=seed)
        fast = build_join_graph(r, s, SetOverlap())
        slow = build_join_graph(r, s, SetOverlap(), accelerate=False)
        assert fast == slow

    def test_empty_left_set_overlaps_nothing(self):
        r = Relation("R", [frozenset()])
        s = Relation("S", [frozenset({1})])
        graph = build_join_graph(r, s, SetOverlap())
        assert graph.num_edges == 0


class TestBandGraph:
    def test_band_join(self):
        r = Relation("R", [1.0, 5.0])
        s = Relation("S", [1.4, 10.0])
        graph = build_join_graph(r, s, Band(0.5))
        assert graph.num_edges == 1

    def test_band_zero_equals_equality(self):
        rng = random.Random(3)
        r = Relation("R", [rng.randrange(5) for _ in range(15)])
        s = Relation("S", [rng.randrange(5) for _ in range(15)])
        band = build_join_graph(r, s, Band(0))
        eq = build_join_graph(r, s, Equality())
        assert band == eq

    @pytest.mark.parametrize("seed", range(4))
    def test_band_sorted_window_matches_naive(self, seed):
        rng = random.Random(seed)
        r = Relation("R", [rng.uniform(0, 20) for _ in range(25)])
        s = Relation("S", [rng.uniform(0, 20) for _ in range(25)])
        fast = build_join_graph(r, s, Band(1.5))
        slow = build_join_graph(r, s, Band(1.5), accelerate=False)
        assert fast == slow

    def test_band_boundary_inclusive(self):
        r = Relation("R", [0.0])
        s = Relation("S", [2.0, 2.0001])
        graph = build_join_graph(r, s, Band(2.0))
        assert graph.num_edges == 1


class TestOutputSize:
    def test_output_size_is_m(self):
        r = Relation("R", [1, 1])
        s = Relation("S", [1, 1])
        graph = build_join_graph(r, s, Equality())
        assert join_output_size(graph) == 4
