"""Tests for the partitioned-join open problem (paper §5)."""

import pytest

from repro.errors import InstanceTooLargeError, SchemeError
from repro.graphs.generators import (
    random_bipartite_gnm,
    union_of_bicliques,
)
from repro.joins.partitioning import (
    Partitioning,
    cell_capacity_lower_bound,
    greedy_partitioning,
    hash_partitioning,
    left_capacity,
    optimal_partitioning_bruteforce,
    replication_grid_partitioning,
    right_capacity,
    round_robin_partitioning,
)


class TestPartitioningBasics:
    def test_capacities(self):
        g = union_of_bicliques([(2, 2), (1, 1)])  # |L|=3, |R|=3
        assert left_capacity(g, 2) == 2
        assert right_capacity(g, 3) == 1

    def test_validate_rejects_unassigned(self):
        g = union_of_bicliques([(1, 1)])
        part = Partitioning(1, 1, {}, {})
        with pytest.raises(SchemeError):
            part.validate(g)

    def test_validate_rejects_overflow(self):
        g = union_of_bicliques([(2, 1)])  # 2 left tuples, capacity 1 at p=2
        part = Partitioning(
            2, 1, {v: 0 for v in g.left}, {v: 0 for v in g.right}
        )
        with pytest.raises(SchemeError):
            part.validate(g)

    def test_cost_counts_active_cells(self):
        g = union_of_bicliques([(1, 1), (1, 1)])
        part = round_robin_partitioning(g, 2, 2)
        part.validate(g)
        assert part.cost(g) == len(part.active_cells(g))


class TestStrategies:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_strategies_valid(self, seed):
        g = random_bipartite_gnm(4, 4, 8, seed=seed)
        for strategy in (hash_partitioning, round_robin_partitioning, greedy_partitioning):
            part = strategy(g, 2, 2)
            part.validate(g)

    def test_hash_colocates_key_groups(self):
        # 4 small key groups fit in 2 of the 4 cells.
        g = union_of_bicliques([(2, 2), (1, 2), (2, 1), (1, 1)])
        part = hash_partitioning(g, 2, 2)
        part.validate(g)
        assert part.cost(g) == 2

    def test_greedy_never_worse_than_hash(self):
        for seed in range(5):
            g = random_bipartite_gnm(4, 4, 9, seed=seed)
            assert (
                greedy_partitioning(g, 2, 2).cost(g)
                <= hash_partitioning(g, 2, 2).cost(g)
            )

    def test_replication_bounds_subjoins_by_p(self):
        g = random_bipartite_gnm(6, 6, 14, seed=2)
        report = replication_grid_partitioning(g, 3, 3)
        assert report.active_subjoins <= 3
        assert report.replicas >= 0
        # Every join edge is covered by some replica.
        for u, v in g.edges():
            assert report.left_of[u] in report.copies_of[v]


class TestOptimality:
    def test_bruteforce_respects_capacity(self):
        g = union_of_bicliques([(2, 1), (1, 1)])
        part = optimal_partitioning_bruteforce(g, 2, 2)
        part.validate(g)

    @pytest.mark.parametrize("seed", range(5))
    def test_bruteforce_beats_or_ties_heuristics(self, seed):
        g = random_bipartite_gnm(3, 3, 6, seed=seed)
        opt = optimal_partitioning_bruteforce(g, 2, 2).cost(g)
        assert opt <= hash_partitioning(g, 2, 2).cost(g)
        assert opt <= round_robin_partitioning(g, 2, 2).cost(g)
        assert opt <= greedy_partitioning(g, 2, 2).cost(g)
        assert opt >= cell_capacity_lower_bound(g, 2, 2)

    def test_hash_is_optimal_on_equijoin_shapes(self):
        # The paper's conjecture, empirically: on every tested equijoin
        # (union-of-bicliques) instance hash partitioning is optimal.
        import random

        rng = random.Random(1)
        for _ in range(10):
            sizes = [(rng.randint(1, 2), rng.randint(1, 2)) for _ in range(rng.randint(2, 4))]
            g = union_of_bicliques(sizes)
            try:
                opt = optimal_partitioning_bruteforce(g, 2, 2).cost(g)
            except InstanceTooLargeError:
                continue
            assert hash_partitioning(g, 2, 2).cost(g) == opt

    def test_round_robin_suboptimal_on_skew(self):
        # One big key group + singles: round-robin shreds the group.
        g = union_of_bicliques([(2, 2), (1, 1)])
        rr = round_robin_partitioning(g, 2, 2).cost(g)
        hp = hash_partitioning(g, 2, 2).cost(g)
        assert hp <= rr

    def test_bruteforce_size_cap(self):
        g = random_bipartite_gnm(8, 8, 20, seed=0)
        with pytest.raises(InstanceTooLargeError):
            optimal_partitioning_bruteforce(g, 4, 4)


class TestLowerBound:
    def test_dense_graph_needs_many_cells(self):
        from repro.graphs.generators import complete_bipartite

        g = complete_bipartite(4, 4)  # m=16; caps 2x2 -> >= 4 cells
        assert cell_capacity_lower_bound(g, 2, 2) == 4
        opt = optimal_partitioning_bruteforce(g, 2, 2).cost(g)
        assert opt == 4  # complete graph: every cell is active

    def test_empty(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert cell_capacity_lower_bound(BipartiteGraph(), 2, 2) == 0
