"""Units for the worst-case-optimal multiway join package."""

from fractions import Fraction

import pytest

from repro.errors import BudgetExhaustedError, PredicateError
from repro.joins.multiway import (
    Atom,
    MultiwayQuery,
    TrieIterator,
    TrieRelation,
    agm_bound,
    binary_cascade,
    choose_variable_order,
    estimate_cascade,
    fractional_edge_cover,
    generic_join,
    leapfrog_triejoin,
    naive_multiway,
)
from repro.joins.trace import multiway_trace_report
from repro.runtime.budget import Budget


def triangle(R, S, T) -> MultiwayQuery:
    return MultiwayQuery(
        atoms=(
            Atom("R", ("a", "b"), tuple(R)),
            Atom("S", ("b", "c"), tuple(S)),
            Atom("T", ("c", "a"), tuple(T)),
        )
    )


def star_costar(k: int) -> tuple[tuple[int, int], ...]:
    """The AGM-tight rows: a star out of hub 0 plus a co-star into it."""
    return tuple((0, i) for i in range(k + 1)) + tuple(
        (i, 0) for i in range(1, k + 1)
    )


TINY = triangle(
    [(1, 2), (1, 3), (2, 3)],
    [(2, 3), (3, 1), (3, 4)],
    [(3, 1), (1, 2), (4, 1)],
)
TINY_OUTPUT = {(1, 2, 3), (1, 3, 4), (2, 3, 1)}


class TestQueryModel:
    def test_variables_first_appearance_order(self):
        assert TINY.variables() == ("a", "b", "c")

    def test_describe(self):
        assert "R(a, b)" in TINY.describe() and "⋈" in TINY.describe()

    def test_atom_rejects_repeated_variable(self):
        with pytest.raises(PredicateError):
            Atom("R", ("a", "a"), ())

    def test_atom_rejects_arity_mismatch(self):
        with pytest.raises(PredicateError):
            Atom("R", ("a", "b"), ((1,),))

    def test_query_rejects_duplicate_atom_names(self):
        with pytest.raises(PredicateError):
            MultiwayQuery(
                atoms=(Atom("R", ("a",), ()), Atom("R", ("b",), ()))
            )

    def test_validate_order_rejects_non_permutation(self):
        with pytest.raises(PredicateError):
            TINY.validate_order(("a", "b"))

    def test_choose_order_prefers_shared_variables(self):
        q = MultiwayQuery(
            atoms=(
                Atom("R", ("a", "b"), ()),
                Atom("S", ("b", "c"), ()),
                Atom("T", ("b", "d"), ()),
            )
        )
        assert choose_variable_order(q)[0] == "b"


class TestTrie:
    def test_rows_sorted_and_deduped_under_order(self):
        atom = Atom("R", ("a", "b"), ((2, 1), (1, 2), (2, 1)))
        trie = TrieRelation(atom, ("b", "a"))
        assert trie.rows == [(1, 2), (2, 1)]
        assert trie.depth_vars == ("b", "a")

    def test_iterator_walks_keys_in_order(self):
        atom = Atom("R", ("a", "b"), ((1, 10), (1, 20), (3, 30)))
        it = TrieIterator(TrieRelation(atom, ("a", "b")))
        it.open()
        assert it.key() == 1
        it.next()
        assert it.key() == 3
        it.next()
        assert it.at_end

    def test_iterator_seek_lands_on_least_geq(self):
        atom = Atom("R", ("a",), ((1,), (4,), (9,)))
        it = TrieIterator(TrieRelation(atom, ("a",)))
        it.open()
        it.seek(5)
        assert it.key() == 9
        it.seek(10)
        assert it.at_end

    def test_iterator_open_up_restores_position(self):
        atom = Atom("R", ("a", "b"), ((1, 10), (2, 20)))
        it = TrieIterator(TrieRelation(atom, ("a", "b")))
        it.open()
        it.open()
        assert it.key() == 10
        it.up()
        assert it.key() == 1


class TestAlgorithms:
    @pytest.mark.parametrize(
        "algo", [leapfrog_triejoin, generic_join, binary_cascade]
    )
    def test_tiny_triangle(self, algo):
        assert algo(TINY).binding_set() == TINY_OUTPUT

    def test_lftj_respects_explicit_order(self):
        result = leapfrog_triejoin(TINY, order=("c", "a", "b"))
        assert result.order == ("c", "a", "b")
        # Bindings still come out in canonical (a, b, c) column order.
        assert result.binding_set() == TINY_OUTPUT

    def test_empty_atom_empty_output(self):
        q = triangle([], [(1, 2)], [(2, 1)])
        for algo in (leapfrog_triejoin, generic_join, binary_cascade):
            assert algo(q).output_size == 0

    def test_duplicate_rows_collapse(self):
        q = triangle(
            [(1, 2), (1, 2)], [(2, 3), (2, 3)], [(3, 1), (3, 1)]
        )
        for algo in (leapfrog_triejoin, generic_join, binary_cascade):
            result = algo(q)
            assert result.bindings == [(1, 2, 3)]

    def test_cascade_counts_non_final_stages(self):
        q = triangle(star_costar(10), star_costar(10), star_costar(10))
        result = binary_cascade(q)
        assert len(result.stage_sizes) == 2
        assert result.intermediates == result.stage_sizes[0]

    def test_cascade_estimate_is_exact_on_first_stage(self):
        q = triangle(star_costar(10), star_costar(10), star_costar(10))
        assert estimate_cascade(q)[0] == binary_cascade(q).stage_sizes[0]

    def test_budget_trips_on_blowup(self):
        rows = star_costar(200)
        q = triangle(rows, rows, rows)
        with pytest.raises(BudgetExhaustedError):
            binary_cascade(q, budget=Budget(node_budget=500).start())
        with pytest.raises(BudgetExhaustedError):
            leapfrog_triejoin(q, budget=Budget(node_budget=300).start())


class TestBounds:
    def test_triangle_cover_is_half_each(self):
        rows = star_costar(8)
        q = triangle(rows, rows, rows)
        cover = fractional_edge_cover(q)
        assert cover == {
            "R": Fraction(1, 2),
            "S": Fraction(1, 2),
            "T": Fraction(1, 2),
        }

    def test_triangle_bound_is_n_to_three_halves(self):
        rows = star_costar(8)  # 17 distinct rows per atom
        q = triangle(rows, rows, rows)
        assert agm_bound(q) == pytest.approx(17**1.5)

    def test_acyclic_path_bound_uses_integral_cover(self):
        q = MultiwayQuery(
            atoms=(
                Atom("R", ("a", "b"), tuple((i, i) for i in range(5))),
                Atom("S", ("b", "c"), tuple((i, i) for i in range(7))),
            )
        )
        cover = fractional_edge_cover(q)
        # a forces w_R = 1, c forces w_S = 1; bound = |R| * |S|.
        assert cover == {"R": Fraction(1), "S": Fraction(1)}
        assert agm_bound(q) == pytest.approx(35.0)

    def test_empty_atom_bound_is_zero(self):
        assert agm_bound(triangle([], [(1, 2)], [(2, 1)])) == 0.0

    def test_agm_is_a_true_output_bound(self):
        rows = star_costar(12)
        q = triangle(rows, rows, rows)
        assert leapfrog_triejoin(q).output_size <= agm_bound(q)


class TestSeparation:
    """The reason this package exists: the star + co-star triangle."""

    def test_lftj_within_agm_while_cascade_exceeds_it(self):
        rows = star_costar(40)
        q = triangle(rows, rows, rows)
        agm = agm_bound(q)
        lftj = leapfrog_triejoin(q)
        cascade = binary_cascade(q)
        assert lftj.binding_set() == cascade.binding_set()
        assert lftj.intermediates <= agm
        assert cascade.intermediates > agm


class TestTraceBridge:
    def test_projection_counts_and_beta0(self):
        result = leapfrog_triejoin(TINY)
        report = multiway_trace_report(TINY, result.bindings, "lftj")
        assert report.left_atom == "R" and report.right_atom == "S"
        assert report.projected_pairs == len(TINY_OUTPUT)
        assert report.beta0 >= 0
        assert report.report.cost_ratio >= 1.0

    def test_explicit_atom_pair(self):
        result = leapfrog_triejoin(TINY)
        report = multiway_trace_report(
            TINY, result.bindings, "lftj", atom_pair=(1, 2)
        )
        assert (report.left_atom, report.right_atom) == ("S", "T")

    def test_empty_output_reports_cleanly(self):
        q = triangle([], [(1, 2)], [(2, 1)])
        report = multiway_trace_report(q, [], "lftj")
        assert report.projected_pairs == 0
        assert report.report.effective_cost == 0

    def test_as_dict_is_json_shaped(self):
        import json

        result = generic_join(TINY)
        report = multiway_trace_report(TINY, result.bindings, "generic")
        json.dumps(report.as_dict())
