"""Tests for geometric primitives."""

import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Polygon, Rectangle


class TestRectangle:
    def test_basic_properties(self):
        r = Rectangle(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == Point(2, 1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Rectangle(2, 0, 1, 1)
        with pytest.raises(GeometryError):
            Rectangle(0, 2, 1, 1)

    def test_degenerate_allowed(self):
        r = Rectangle(1, 1, 1, 5)
        assert r.width == 0
        assert r.area == 0

    def test_contains_point(self):
        r = Rectangle(0, 0, 2, 2)
        assert r.contains_point(Point(1, 1))
        assert r.contains_point(Point(0, 0))  # boundary closed
        assert not r.contains_point(Point(3, 1))

    def test_intersects(self):
        a = Rectangle(0, 0, 2, 2)
        assert a.intersects(Rectangle(1, 1, 3, 3))
        assert a.intersects(Rectangle(2, 0, 3, 1))  # edge contact
        assert not a.intersects(Rectangle(2.1, 0, 3, 1))

    def test_union_bounds(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(2, 2, 3, 3)
        u = a.union_bounds(b)
        assert (u.x_min, u.y_min, u.x_max, u.y_max) == (0, 0, 3, 3)

    def test_translated(self):
        r = Rectangle(0, 0, 1, 1).translated(5, -1)
        assert (r.x_min, r.y_min) == (5, -1)

    def test_hashable(self):
        assert len({Rectangle(0, 0, 1, 1), Rectangle(0, 0, 1, 1)}) == 1


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_repeated_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 0), (0, 0)])

    def test_from_rectangle(self):
        p = Polygon.from_rectangle(Rectangle(0, 0, 2, 1))
        assert len(p.vertices) == 4
        assert p.area() == 2

    def test_from_degenerate_rectangle_rejected(self):
        with pytest.raises(GeometryError):
            Polygon.from_rectangle(Rectangle(0, 0, 0, 1))

    def test_area_triangle(self):
        p = Polygon([(0, 0), (4, 0), (0, 3)])
        assert p.area() == 6

    def test_bounding_box(self):
        p = Polygon([(0, 0), (4, 0), (2, 5)])
        box = p.bounding_box()
        assert (box.x_min, box.y_min, box.x_max, box.y_max) == (0, 0, 4, 5)

    def test_contains_point(self):
        p = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert p.contains_point(Point(2, 2))
        assert p.contains_point(Point(0, 2))  # boundary
        assert not p.contains_point(Point(5, 2))

    def test_contains_point_concave(self):
        # L-shape: the notch is outside.
        p = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert p.contains_point(Point(1, 3))
        assert not p.contains_point(Point(3, 3))

    def test_is_simple(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.is_simple()
        bowtie = Polygon([(0, 0), (2, 2), (2, 0), (0, 2)])
        assert not bowtie.is_simple()

    def test_edges_close_ring(self):
        p = Polygon([(0, 0), (1, 0), (0, 1)])
        edges = p.edges()
        assert len(edges) == 3
        assert edges[-1] == (Point(0, 1), Point(0, 0))

    def test_translated(self):
        p = Polygon([(0, 0), (1, 0), (0, 1)]).translated(10, 10)
        assert p.vertices[0] == Point(10, 10)

    def test_equality_and_hash(self):
        a = Polygon([(0, 0), (1, 0), (0, 1)])
        b = Polygon([(0, 0), (1, 0), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
