"""Tests for geometric realizations (Lemma 3.4 and comb universality)."""

import pytest

from repro.graphs.generators import random_bipartite_gnm
from repro.geometry.realize import (
    realize_bipartite_with_combs,
    realize_union_of_bicliques,
    realize_worst_case_family,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SpatialOverlap
from repro.core.families import worst_case_family
from repro.relations.relation import TupleRef


def _positional_isomorphic(join_graph, target):
    """Check the built join graph equals `target` under positional maps."""
    left_map = {TupleRef("R", i): v for i, v in enumerate(target.left)}
    right_map = {TupleRef("S", j): v for j, v in enumerate(target.right)}
    got = {
        (left_map[u], right_map[v])
        for u, v in join_graph.edges()
    }
    want = set(target.edges())
    return got == want


class TestWorstCaseRealization:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_join_graph_is_g_n(self, n):
        left, right = realize_worst_case_family(n)
        join_graph = build_join_graph(left, right, SpatialOverlap())
        target = worst_case_family(n)
        assert join_graph.num_edges == target.num_edges == 2 * n
        assert _positional_isomorphic(join_graph, target)

    def test_rejects_zero(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            realize_worst_case_family(0)


class TestBicliqueRealization:
    def test_blocks_realized(self):
        left, right = realize_union_of_bicliques([(2, 3), (1, 2)])
        join_graph = build_join_graph(left, right, SpatialOverlap())
        assert join_graph.num_edges == 2 * 3 + 1 * 2
        from repro.core.solvers.equijoin import is_union_of_bicliques

        assert is_union_of_bicliques(join_graph)


class TestCombUniversality:
    @pytest.mark.parametrize("seed", range(6))
    def test_arbitrary_graphs_realized(self, seed):
        target = random_bipartite_gnm(3, 4, 7, seed=seed)
        left, right = realize_bipartite_with_combs(target)
        join_graph = build_join_graph(left, right, SpatialOverlap())
        assert _positional_isomorphic(join_graph, target)

    def test_worst_case_family_via_combs(self):
        target = worst_case_family(4)
        left, right = realize_bipartite_with_combs(target)
        join_graph = build_join_graph(left, right, SpatialOverlap())
        assert _positional_isomorphic(join_graph, target)

    def test_polygons_are_simple(self):
        target = random_bipartite_gnm(3, 3, 5, seed=2)
        left, right = realize_bipartite_with_combs(target)
        for polygon in list(left) + list(right):
            assert polygon.is_simple()

    def test_isolated_vertices_have_plain_spines(self):
        from repro.graphs.bipartite import BipartiteGraph

        target = BipartiteGraph(left=["u0", "u1"], right=["v0"])
        target.add_edge("u0", "v0")
        left, right = realize_bipartite_with_combs(target)
        # u1 has no edges: its polygon is the bare 4-vertex spine.
        assert len(left.values[1].vertices) == 4

    def test_empty_edge_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        target = BipartiteGraph(left=["u0"], right=["v0"])
        left, right = realize_bipartite_with_combs(target)
        join_graph = build_join_graph(left, right, SpatialOverlap())
        assert join_graph.num_edges == 0
