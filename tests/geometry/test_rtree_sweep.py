"""Tests for the R-tree and the plane sweep, cross-checked by brute force."""

import random

import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import Rectangle
from repro.geometry.rtree import RTree
from repro.geometry.sweep import sweep_rectangle_pairs


def _random_rects(rng, n, extent=20.0, side=3.0):
    out = []
    for i in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        out.append((Rectangle(x, y, x + rng.uniform(0.1, side), y + rng.uniform(0.1, side)), i))
    return out


def _brute_pairs(left, right):
    return {
        (pa, pb)
        for ra, pa in left
        for rb, pb in right
        if ra.intersects(rb)
    }


class TestRTree:
    def test_empty(self):
        tree = RTree([])
        assert tree.query(Rectangle(0, 0, 1, 1)) == []
        assert tree.height() == 0

    def test_invalid_fanout(self):
        with pytest.raises(GeometryError):
            RTree([], fanout=1)

    def test_query_matches_brute_force(self):
        rng = random.Random(11)
        entries = _random_rects(rng, 60)
        tree = RTree(entries, fanout=4)
        window = Rectangle(5, 5, 12, 12)
        expected = {p for r, p in entries if r.intersects(window)}
        got = {p for _, p in tree.query(window)}
        assert got == expected

    def test_query_all(self):
        rng = random.Random(3)
        entries = _random_rects(rng, 30)
        tree = RTree(entries)
        got = {p for _, p in tree.query(Rectangle(-1, -1, 100, 100))}
        assert got == set(range(30))

    def test_height_grows_with_size(self):
        rng = random.Random(1)
        small = RTree(_random_rects(rng, 5), fanout=4)
        large = RTree(_random_rects(rng, 200), fanout=4)
        assert large.height() > small.height()

    @pytest.mark.parametrize("seed", range(4))
    def test_join_matches_brute_force(self, seed):
        rng = random.Random(seed)
        left = _random_rects(rng, 25)
        right = [(r, p + 1000) for r, p in _random_rects(rng, 25)]
        got = set(RTree(left, fanout=4).join(RTree(right, fanout=4)))
        assert got == _brute_pairs(left, right)


class TestSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        left = _random_rects(rng, 30)
        right = [(r, p + 1000) for r, p in _random_rects(rng, 30)]
        got = set(sweep_rectangle_pairs(left, right))
        assert got == _brute_pairs(left, right)

    def test_no_duplicates(self):
        rng = random.Random(9)
        left = _random_rects(rng, 20)
        right = [(r, p + 1000) for r, p in _random_rects(rng, 20)]
        pairs = sweep_rectangle_pairs(left, right)
        assert len(pairs) == len(set(pairs))

    def test_touching_rectangles_reported(self):
        left = [(Rectangle(0, 0, 1, 1), "a")]
        right = [(Rectangle(1, 1, 2, 2), "b")]
        assert sweep_rectangle_pairs(left, right) == [("a", "b")]

    def test_empty_inputs(self):
        assert sweep_rectangle_pairs([], []) == []
        assert sweep_rectangle_pairs([(Rectangle(0, 0, 1, 1), "a")], []) == []
