"""Property-based tests (hypothesis) for the geometric substrate."""

from hypothesis import given, settings, strategies as st

from repro.geometry.intersect import polygons_overlap, rectangles_overlap
from repro.geometry.interval import Interval
from repro.geometry.primitives import Polygon, Rectangle

COMMON = settings(max_examples=60, deadline=None)

rectangles = st.tuples(
    st.floats(-20, 20, allow_nan=False),
    st.floats(-20, 20, allow_nan=False),
    st.floats(0, 10, allow_nan=False),
    st.floats(0, 10, allow_nan=False),
).map(lambda t: Rectangle(t[0], t[1], t[0] + t[2], t[1] + t[3]))

intervals = st.tuples(
    st.floats(-50, 50, allow_nan=False),
    st.floats(0, 20, allow_nan=False),
).map(lambda t: Interval(t[0], t[0] + t[1]))


@COMMON
@given(rectangles, rectangles)
def test_rectangle_overlap_symmetric(a, b):
    assert rectangles_overlap(a, b) == rectangles_overlap(b, a)


@COMMON
@given(rectangles)
def test_rectangle_overlap_reflexive(a):
    assert rectangles_overlap(a, a)


@COMMON
@given(rectangles, rectangles)
def test_rectangle_overlap_vs_union_extent(a, b):
    # Overlap iff the bounding box of the pair is no larger than the two
    # side lengths stacked in each dimension — checked as two tolerance-
    # guarded implications (exact iff does not survive float rounding at
    # boundary-contact cases).
    union = a.union_bounds(b)
    eps = 1e-9
    if rectangles_overlap(a, b):
        assert union.width <= a.width + b.width + eps
        assert union.height <= a.height + b.height + eps
    if (
        union.width < a.width + b.width - eps
        and union.height < a.height + b.height - eps
    ):
        assert rectangles_overlap(a, b)


@COMMON
@given(rectangles, rectangles)
def test_polygon_overlap_agrees_with_rectangle_test(a, b):
    if a.width == 0 or a.height == 0 or b.width == 0 or b.height == 0:
        return  # degenerate rectangles cannot polygonize
    assert polygons_overlap(
        Polygon.from_rectangle(a), Polygon.from_rectangle(b)
    ) == rectangles_overlap(a, b)


@COMMON
@given(intervals, intervals)
def test_interval_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@COMMON
@given(intervals, intervals)
def test_interval_overlap_iff_gap_nonpositive(a, b):
    gap = max(a.lo, b.lo) - min(a.hi, b.hi)
    assert a.overlaps(b) == (gap <= 0)


@COMMON
@given(intervals, intervals)
def test_interval_containment_implies_overlap(a, b):
    if a.contains(b):
        assert a.overlaps(b)


@COMMON
@given(st.lists(rectangles, min_size=1, max_size=12))
def test_rtree_query_matches_brute_force(rects):
    from repro.geometry.rtree import RTree

    entries = [(r, i) for i, r in enumerate(rects)]
    tree = RTree(entries, fanout=3)
    window = Rectangle(-5, -5, 15, 15)
    expected = {i for r, i in entries if r.intersects(window)}
    assert {p for _, p in tree.query(window)} == expected


@COMMON
@given(st.data())
def test_comb_realization_round_trip(data):
    from repro.graphs.bipartite import BipartiteGraph
    from repro.geometry.realize import realize_bipartite_with_combs
    from repro.joins.join_graph import build_join_graph
    from repro.joins.predicates import SpatialOverlap
    from repro.relations.relation import TupleRef

    n_left = data.draw(st.integers(1, 3))
    n_right = data.draw(st.integers(1, 3))
    cells = [(i, j) for i in range(n_left) for j in range(n_right)]
    chosen = data.draw(st.lists(st.sampled_from(cells), max_size=len(cells)))
    target = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    for i, j in set(chosen):
        target.add_edge(f"u{i}", f"v{j}")
    left, right = realize_bipartite_with_combs(target)
    join_graph = build_join_graph(left, right, SpatialOverlap())
    left_map = {TupleRef("R", i): v for i, v in enumerate(target.left)}
    right_map = {TupleRef("S", j): v for j, v in enumerate(target.right)}
    got = {(left_map[u], right_map[v]) for u, v in join_graph.edges()}
    assert got == set(target.edges())
