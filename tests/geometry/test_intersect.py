"""Tests for intersection predicates."""

import pytest

from repro.geometry.intersect import (
    overlap,
    point_on_segment,
    polygons_overlap,
    rectangles_overlap,
    segments_intersect,
)
from repro.geometry.primitives import Point, Polygon, Rectangle


class TestSegments:
    def test_crossing(self):
        assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(2, 0), Point(0, 1), Point(2, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect(Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0))

    def test_touching_at_endpoint(self):
        assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_t_junction(self):
        assert segments_intersect(Point(0, 0), Point(2, 0), Point(1, -1), Point(1, 0))

    def test_point_on_segment(self):
        assert point_on_segment(Point(1, 1), Point(0, 0), Point(2, 2))
        assert not point_on_segment(Point(3, 3), Point(0, 0), Point(2, 2))
        assert not point_on_segment(Point(1, 0), Point(0, 0), Point(2, 2))


class TestPolygonOverlap:
    def test_overlapping_squares(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(1, 1), (3, 1), (3, 3), (1, 3)])
        assert polygons_overlap(a, b)

    def test_disjoint_squares(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        assert not polygons_overlap(a, b)

    def test_nested_polygons(self):
        outer = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        inner = Polygon([(4, 4), (6, 4), (6, 6), (4, 6)])
        assert polygons_overlap(outer, inner)
        assert polygons_overlap(inner, outer)

    def test_edge_touching(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(2, 0), (4, 0), (4, 2), (2, 2)])
        assert polygons_overlap(a, b)

    def test_bounding_box_fast_reject(self):
        a = Polygon([(0, 0), (1, 0), (0, 1)])
        b = Polygon([(100, 100), (101, 100), (100, 101)])
        assert not polygons_overlap(a, b)

    def test_concave_interlock_no_overlap(self):
        # A U-shape and a bar floating inside the notch without touching.
        u_shape = Polygon(
            [(0, 0), (6, 0), (6, 6), (4, 6), (4, 2), (2, 2), (2, 6), (0, 6)]
        )
        bar = Polygon([(2.5, 4), (3.5, 4), (3.5, 5), (2.5, 5)])
        assert not polygons_overlap(u_shape, bar)


class TestPolymorphicOverlap:
    def test_rect_rect(self):
        assert overlap(Rectangle(0, 0, 2, 2), Rectangle(1, 1, 3, 3))

    def test_rect_polygon(self):
        rect = Rectangle(0, 0, 2, 2)
        poly = Polygon([(1, 1), (3, 1), (3, 3), (1, 3)])
        assert overlap(rect, poly)
        assert overlap(poly, rect)

    def test_unsupported_pair(self):
        with pytest.raises(TypeError):
            overlap(Rectangle(0, 0, 1, 1), 7)

    def test_agrees_with_rectangle_test(self):
        import random

        rng = random.Random(5)
        for _ in range(40):
            a = Rectangle(rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(5, 9), rng.uniform(5, 9))
            b = Rectangle(rng.uniform(0, 9), rng.uniform(0, 9), rng.uniform(9, 12), rng.uniform(9, 12))
            as_poly = polygons_overlap(Polygon.from_rectangle(a), Polygon.from_rectangle(b))
            assert as_poly == rectangles_overlap(a, b)
