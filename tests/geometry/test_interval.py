"""Tests for the interval substrate and its model-level observation."""

import random

import pytest

from repro.errors import GeometryError
from repro.geometry.interval import (
    Interval,
    IntervalIndex,
    realize_worst_case_intervals,
    sweep_interval_pairs,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SpatialOverlap
from repro.relations.domains import Domain
from repro.relations.relation import Relation
from repro.workloads.spatial import sessions_interval_workload


def _random_intervals(rng, n, horizon=100.0, length=8.0):
    out = []
    for i in range(n):
        lo = rng.uniform(0, horizon)
        out.append((Interval(lo, lo + rng.uniform(0.1, length)), i))
    return out


class TestInterval:
    def test_basic(self):
        interval = Interval(1.0, 3.0)
        assert interval.length == 2.0
        assert interval.contains_point(2.0)
        assert interval.contains_point(1.0)  # closed
        assert not interval.contains_point(3.1)

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            Interval(2.0, 1.0)

    def test_overlap_closed(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))
        assert not Interval(0, 2).overlaps(Interval(2.1, 4))
        assert Interval(0, 10).overlaps(Interval(3, 4))

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 3))
        assert not Interval(0, 10).contains(Interval(9, 11))

    def test_domain_inference(self):
        r = Relation("R", [Interval(0, 1)])
        assert r.domain == Domain.INTERVAL


class TestIndexAndSweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_index_matches_brute_force(self, seed):
        rng = random.Random(seed)
        entries = _random_intervals(rng, 40)
        index = IntervalIndex(entries)
        window = Interval(30.0, 50.0)
        expected = {p for iv, p in entries if iv.overlaps(window)}
        got = {p for _, p in index.query(window)}
        assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_sweep_matches_brute_force(self, seed):
        rng = random.Random(seed)
        left = _random_intervals(rng, 30)
        right = [(iv, p + 1000) for iv, p in _random_intervals(rng, 30)]
        got = set(sweep_interval_pairs(left, right))
        expected = {
            (pa, pb)
            for ia, pa in left
            for ib, pb in right
            if ia.overlaps(ib)
        }
        assert got == expected

    def test_sweep_no_duplicates(self):
        rng = random.Random(3)
        left = _random_intervals(rng, 20)
        right = [(iv, p + 1000) for iv, p in _random_intervals(rng, 20)]
        pairs = sweep_interval_pairs(left, right)
        assert len(pairs) == len(set(pairs))


class TestIntervalJoins:
    @pytest.mark.parametrize("seed", range(4))
    def test_accelerated_matches_naive(self, seed):
        left, right = sessions_interval_workload(25, 25, seed=seed)
        fast = build_join_graph(left, right, SpatialOverlap())
        slow = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
        assert fast == slow

    def test_pebbling_pipeline_end_to_end(self):
        from repro.core.solvers.registry import solve

        left, right = sessions_interval_workload(20, 20, seed=1)
        graph = build_join_graph(left, right, SpatialOverlap())
        if graph.num_edges == 0:
            pytest.skip("degenerate draw")
        result = solve(graph, "dfs+polish")
        result.scheme.validate(graph.without_isolated_vertices())

    def test_spatial_algorithms_work_on_intervals(self):
        from repro.joins.algorithms import pbsm_join, plane_sweep_join, rtree_join

        left, right = sessions_interval_workload(20, 20, seed=2)
        graph = build_join_graph(left, right, SpatialOverlap(), accelerate=False)
        expected = set(graph.edges())
        assert set(plane_sweep_join(left, right)) == expected
        assert set(rtree_join(left, right)) == expected
        assert set(pbsm_join(left, right)) == expected

    def test_engine_plans_interval_queries(self):
        from repro.engine import JoinQuery, execute

        left, right = sessions_interval_workload(15, 15, seed=3)
        result = execute(JoinQuery(left, right, SpatialOverlap()))
        assert result.plan.algorithm_name == "interval-merge"
        assert result.trace is not None


class TestWorstCaseRealization:
    """Intervals realize the full worst-case family via nesting: pendants
    overlap the star centre too, but same-relation overlaps create no join
    edges — so temporal joins inherit the 1.25m − 1 lower bound."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_join_graph_is_g_n(self, n):
        from repro.core.families import worst_case_family
        from repro.relations.relation import TupleRef

        left_values, right_values = realize_worst_case_intervals(n)
        left = Relation("R", left_values)
        right = Relation("S", right_values)
        graph = build_join_graph(left, right, SpatialOverlap())
        target = worst_case_family(n)
        left_map = {TupleRef("R", i): v for i, v in enumerate(target.left)}
        right_map = {TupleRef("S", j): v for j, v in enumerate(target.right)}
        got = {(left_map[u], right_map[v]) for u, v in graph.edges()}
        assert got == set(target.edges())

    def test_rejects_zero(self):
        with pytest.raises(GeometryError):
            realize_worst_case_intervals(0)

    def test_worst_case_cost_through_intervals(self):
        # End to end: G_4 as a temporal join costs 1.25m − 1.
        from repro.core.solvers.exact import solve_exact

        left_values, right_values = realize_worst_case_intervals(4)
        graph = build_join_graph(
            Relation("R", left_values), Relation("S", right_values), SpatialOverlap()
        )
        assert solve_exact(graph).effective_cost == 9

    def test_nesting_really_overlaps_centre(self):
        # The observation's crux: every pendant DOES overlap the centre,
        # yet the join graph has no such edge (same relation).
        left_values, _right = realize_worst_case_intervals(3)
        centre = left_values[0]
        for pendant in left_values[1:]:
            assert centre.overlaps(pendant)