"""Tests for the solver registry and automatic method selection."""

import pytest

from repro.errors import SolverError
from repro.graphs.generators import (
    complete_bipartite,
    random_connected_bipartite,
    union_of_bicliques,
)
from repro.core.families import worst_case_family
from repro.core.solvers.registry import (
    METHODS,
    SolveResult,
    optimal_effective_cost,
    solve,
)


class TestAuto:
    def test_equijoin_shape_routes_to_linear_solver(self):
        g = union_of_bicliques([(2, 3), (1, 1)])
        result = solve(g)
        assert result.method == "equijoin"
        assert result.optimal
        assert result.effective_cost == g.num_edges

    def test_small_hard_instance_routes_to_exact(self):
        g = worst_case_family(4)
        result = solve(g)
        assert result.method == "exact"
        assert result.optimal

    def test_large_instance_routes_to_approximation(self):
        g = worst_case_family(40)  # m = 80, beyond the exact limit
        result = solve(g)
        assert result.method == "dfs+polish"
        assert not result.optimal
        result.scheme.validate(g)

    def test_exact_edge_limit_override(self):
        g = worst_case_family(10)  # m = 20
        result = solve(g, exact_edge_limit=25)
        assert result.method == "exact"


class TestExplicitMethods:
    @pytest.mark.parametrize("method", [m for m in METHODS if m != "auto"])
    def test_every_method_produces_valid_scheme(self, method):
        g = complete_bipartite(2, 3)
        if method == "equijoin":
            result = solve(g, method)
        else:
            result = solve(g, method)
        result.scheme.validate(g)
        assert result.effective_cost >= g.num_edges

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            solve(complete_bipartite(1, 1), "magic")

    def test_equijoin_method_on_wrong_shape_raises(self):
        with pytest.raises(SolverError):
            solve(worst_case_family(3), "equijoin")


class TestResult:
    def test_summary_format(self):
        g = complete_bipartite(2, 2)
        result = solve(g)
        text = result.summary()
        assert "pi=4" in text
        assert "optimal" in text

    def test_costs_consistent(self):
        for seed in range(4):
            g = random_connected_bipartite(4, 4, extra_edges=2, seed=seed)
            result = solve(g, "dfs")
            assert result.raw_cost == result.effective_cost + 1  # connected
            assert result.jumps == result.scheme.jumps()

    def test_optimal_effective_cost_shortcut(self):
        g = union_of_bicliques([(3, 3), (2, 1)])
        assert optimal_effective_cost(g) == g.num_edges

    def test_optimal_effective_cost_exact_path(self):
        g = worst_case_family(4)
        assert optimal_effective_cost(g) == 9


class TestBudgetOptionsNonDestructive:
    """Regression: ``_resolve_budget`` once ``pop``-ed the budget keys out
    of the caller's options dict, so a shared dict lost its deadline after
    the first solve — exactly the batch-solve pattern ``solve_many`` uses."""

    def test_shared_options_dict_survives_two_resolutions(self):
        from repro.core.solvers.registry import _resolve_budget

        shared = {"deadline": 5.0, "memo_cap": 100}
        snapshot = dict(shared)
        first = _resolve_budget(shared)
        assert shared == snapshot
        second = _resolve_budget(shared)
        assert shared == snapshot
        assert first is not None and first.deadline == 5.0
        assert second is not None and second.deadline == 5.0

    def test_solving_twice_with_one_options_dict(self):
        g = worst_case_family(2)
        options = {"deadline": 60.0}
        first = solve(g, "auto", **options)
        second = solve(g, "auto", **options)
        assert options == {"deadline": 60.0}
        assert first.effective_cost == second.effective_cost
        assert first.status == second.status

    def test_budget_keys_stripped_from_solver_options(self):
        # Budget knobs must not leak into the method dispatch (solvers
        # would reject them as unexpected keyword arguments).
        result = solve(worst_case_family(2), "exact", deadline=60.0)
        assert result.optimal
