"""Tests for the diamond-gadget template search."""

import pytest

from repro.errors import GadgetError
from repro.core.gadget_search import search_template, template_candidates
from repro.core.gadgets import default_gadget


class TestTemplateCandidates:
    def test_all_candidates_respect_degree_bounds(self):
        for candidate in template_candidates(8):
            for corner in candidate.corners:
                assert candidate.graph.degree(corner) == 2
            for central in candidate.central_nodes():
                assert candidate.graph.degree(central) <= 3

    def test_all_candidates_have_backbone(self):
        n = 8
        for candidate in template_candidates(n):
            for v in range(n - 1):
                assert candidate.graph.has_edge(v, v + 1)

    def test_small_n_rejected(self):
        with pytest.raises(GadgetError):
            list(template_candidates(5))

    def test_candidate_count_small(self):
        # The n=7 template space is tiny and fully enumerable.
        candidates = list(template_candidates(7))
        assert 0 < len(candidates) < 200


class TestSearch:
    def test_partial_search_returns_best_effort(self):
        # n=10 contains the shipped gadget's shape: degree + endpoints ok.
        gadget = search_template(sizes=(10,), require_full=False)
        cert = gadget.certify()
        assert cert.degree_ok

    def test_full_search_fails_on_small_sizes(self):
        # The documented negative finding: no template gadget on <= 10
        # nodes satisfies all three Fig-2 properties (checked fully here;
        # the offline run extends this through n = 14).
        with pytest.raises(GadgetError):
            search_template(sizes=(7, 8), require_full=True)

    def test_default_gadget_is_a_template_instance(self):
        gadget = default_gadget()
        n = gadget.num_nodes
        for v in range(n - 1):
            assert gadget.graph.has_edge(v, v + 1)
        assert gadget.corners[0] == 0
        assert gadget.corners[-1] == n - 1
