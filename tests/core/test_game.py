"""Tests for the move-by-move pebble game simulator."""

import pytest

from repro.errors import SchemeError, VertexError
from repro.graphs.generators import complete_bipartite, path_graph
from repro.core.game import PebbleGame
from repro.core.scheme import PebblingScheme
from repro.core.solvers.equijoin import biclique_tour


class TestMoves:
    def test_initial_state(self, path4):
        game = PebbleGame(path4)
        assert game.remaining_edges == 4
        assert not game.is_won()
        assert game.moves_used == 0

    def test_move_deletes_edge(self):
        g = path_graph(2)
        game = PebbleGame(g)
        game.move(0, "u0")
        deleted = game.move(1, "v0")
        assert set(deleted) == {"u0", "v0"}
        assert game.remaining_edges == 1

    def test_move_without_edge_deletes_nothing(self, path4):
        game = PebbleGame(path4)
        game.move(0, "u0")
        assert game.move(1, "v1") is None  # not adjacent in path

    def test_teleporting_allowed(self, k23):
        game = PebbleGame(k23)
        game.move(0, "u0")
        game.move(0, "u1")  # reposition without deleting anything
        assert game.moves_used == 2

    def test_double_occupancy_rejected(self, path4):
        game = PebbleGame(path4)
        game.move(0, "u0")
        with pytest.raises(SchemeError):
            game.move(1, "u0")

    def test_bad_pebble_index(self, path4):
        with pytest.raises(SchemeError):
            PebbleGame(path4).move(2, "u0")

    def test_unknown_vertex(self, path4):
        with pytest.raises(VertexError):
            PebbleGame(path4).move(0, "ghost")

    def test_edge_not_deleted_twice(self):
        g = path_graph(2)
        game = PebbleGame(g)
        game.move(0, "u0")
        game.move(1, "v0")
        game.move(0, "u1")
        # Move pebble 0 back: the u0-v0 edge is already gone.
        assert game.move(0, "u0") is None


class TestReplay:
    def test_replay_wins_and_costs_match(self, k23):
        scheme = PebblingScheme.from_edge_order(k23, biclique_tour(k23))
        game = PebbleGame(k23)
        assert game.replay(scheme) == scheme.cost()
        assert game.is_won()

    def test_log_records_deletions(self):
        g = path_graph(2)
        game = PebbleGame(g)
        scheme = PebblingScheme.from_edge_order(
            g, [("u0", "v0"), ("u1", "v0")]
        )
        game.replay(scheme)
        deletions = [e.deleted_edge for e in game.log if e.deleted_edge]
        assert len(deletions) == 2

    def test_incomplete_replay_not_won(self, path4):
        game = PebbleGame(path4)
        partial = PebblingScheme(path4.edges()[:2])
        game.replay(partial)
        assert not game.is_won()
        assert game.remaining_edges > 0

    def test_reset(self, path4):
        game = PebbleGame(path4)
        game.move(0, "u0")
        game.reset()
        assert game.moves_used == 0
        assert game.remaining_edges == 4
        assert game.positions == [None, None]

    def test_won_game_cost_lower_bounded(self, k23):
        # Any winning play uses at least m+1 moves on a connected graph.
        scheme = PebblingScheme.from_edge_order(k23, biclique_tour(k23))
        game = PebbleGame(k23)
        game.replay(scheme)
        assert game.moves_used >= k23.num_edges + 1
