"""Pebbling on general (non-bipartite) graphs.

The paper's §2 footnote: "This definition applies for general graphs as
well."  The cost model, bounds, and solvers in this library are written
against the footnote's generality — these tests exercise them on
triangles, odd cycles, cliques, and wheels, where no bipartition exists.
"""

import itertools

import pytest

from repro.graphs.hamiltonian import has_hamiltonian_path
from repro.graphs.line_graph import is_claw_free, line_graph
from repro.graphs.simple import Graph
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import (
    optimal_effective_cost_bruteforce,
    solve_exact,
)
from repro.core.solvers.greedy import solve_greedy


def _triangle() -> Graph:
    return Graph(edges=[(0, 1), (1, 2), (2, 0)])


def _odd_cycle(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


def _clique(n: int) -> Graph:
    return Graph(edges=itertools.combinations(range(n), 2))


def _wheel(n: int) -> Graph:
    g = _odd_cycle(n)
    for i in range(n):
        g.add_edge("hub", i)
    return g


class TestExactOnGeneralGraphs:
    def test_triangle_is_perfect(self):
        # L(C3) = C3, traceable: pi = m = 3.
        assert solve_exact(_triangle()).effective_cost == 3

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_cycles_perfect(self, n):
        assert solve_exact(_odd_cycle(n)).effective_cost == n

    def test_k4_perfect(self):
        g = _clique(4)
        result = solve_exact(g)
        assert result.effective_cost == g.num_edges

    def test_wheel(self):
        g = _wheel(5)
        result = solve_exact(g)
        result.scheme.validate(g)
        assert g.num_edges <= result.effective_cost <= 1.25 * g.num_edges

    @pytest.mark.parametrize("n", [3, 4])
    def test_matches_bruteforce_on_small_cliques(self, n):
        g = _clique(n)
        assert (
            solve_exact(g).effective_cost
            == optimal_effective_cost_bruteforce(g)
        )

    def test_triangle_spider_is_perfect_unlike_the_star_spider(self):
        # A triangle with one pendant per corner looks like the Fig-1
        # spider, but pebbles PERFECTLY: each pendant's line-node touches
        # *two* cycle edges (its corner has degree 3), so L(G) is
        # traceable — whereas the bipartite star spider's pendants have
        # line-degree 1 and force jumps.  The worst case needs a hub whose
        # arms do not interconnect, which bipartiteness provides.
        g = _triangle()
        for i in range(3):
            g.add_edge(i, f"p{i}")
        result = solve_exact(g)
        assert result.effective_cost == g.num_edges
        assert result.jumps == 0
        assert result.effective_cost == effective_cost_lower_bound(g)


class TestStructureOnGeneralGraphs:
    @pytest.mark.parametrize("maker", [_triangle, lambda: _odd_cycle(5), lambda: _clique(4), lambda: _wheel(4)])
    def test_line_graphs_still_claw_free(self, maker):
        assert is_claw_free(line_graph(maker()))

    @pytest.mark.parametrize("maker", [_triangle, lambda: _odd_cycle(7), lambda: _clique(4)])
    def test_prop_2_1_holds(self, maker):
        g = maker()
        pi = solve_exact(g).effective_cost
        assert (pi == g.num_edges) == has_hamiltonian_path(line_graph(g))


class TestApproximationsOnGeneralGraphs:
    @pytest.mark.parametrize("maker", [lambda: _odd_cycle(9), lambda: _clique(5), lambda: _wheel(6)])
    def test_dfs_guarantee_holds(self, maker):
        g = maker()
        result = solve_dfs_approx(g)
        result.scheme.validate(g)
        assert result.effective_cost <= g.num_edges + g.num_edges // 4

    @pytest.mark.parametrize("maker", [lambda: _odd_cycle(9), lambda: _clique(5)])
    def test_greedy_valid(self, maker):
        g = maker()
        result = solve_greedy(g)
        result.scheme.validate(g)
        assert result.effective_cost >= g.num_edges
