"""Tests for the TSP(1,2) view of pebbling (§2.2)."""

import pytest

from repro.errors import SchemeError
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
)
from repro.core.scheme import PebblingScheme
from repro.core.solvers.equijoin import biclique_tour
from repro.core.tsp import (
    edges_share_endpoint,
    reorder_paths_greedily,
    scheme_to_tour,
    split_tour_into_paths,
    tour_cost,
    tour_from_paths,
    tour_jumps,
    tour_to_scheme,
    validate_tour,
)


class TestCost:
    def test_empty_tour(self):
        assert tour_cost([]) == 0
        assert tour_jumps([]) == 0

    def test_no_jump_tour(self, k23):
        tour = biclique_tour(k23)
        assert tour_jumps(tour) == 0
        assert tour_cost(tour) == len(tour) - 1

    def test_all_jump_tour(self):
        g = matching_graph(3)
        tour = g.edges()
        assert tour_jumps(tour) == 2
        assert tour_cost(tour) == 2 + 2

    def test_share_endpoint(self):
        assert edges_share_endpoint(("a", "b"), ("b", "c"))
        assert not edges_share_endpoint(("a", "b"), ("c", "d"))


class TestValidation:
    def test_valid(self, k23):
        validate_tour(k23, biclique_tour(k23))

    def test_missing_edge(self, k23):
        with pytest.raises(SchemeError):
            validate_tour(k23, biclique_tour(k23)[:-1])

    def test_duplicate_edge(self, k23):
        tour = biclique_tour(k23)
        with pytest.raises(SchemeError):
            validate_tour(k23, tour + [tour[0]])

    def test_foreign_edge(self, k23):
        tour = biclique_tour(k23)[:-1] + [("u0", "ghost")]
        with pytest.raises(SchemeError):
            validate_tour(k23, tour)


class TestConversion:
    def test_round_trip(self, k23):
        tour = biclique_tour(k23)
        scheme = tour_to_scheme(k23, tour)
        assert scheme_to_tour(k23, scheme) == tour

    def test_cost_identity(self, k23):
        # pi_hat = tour cost + 2; for connected G, pi = tour cost + 1.
        tour = biclique_tour(k23)
        scheme = tour_to_scheme(k23, tour)
        assert scheme.cost() == tour_cost(tour) + 2
        assert scheme.effective_cost(k23) == tour_cost(tour) + 1

    def test_scheme_with_transit_rejected(self, path4):
        transit = [("u0", "v1")] + list(path4.edges())
        if not path4.has_edge("u0", "v1"):
            scheme = PebblingScheme(transit)
            with pytest.raises(SchemeError):
                scheme_to_tour(path4, scheme)


class TestPathPartitions:
    def test_split_at_jumps(self):
        g = matching_graph(3)
        paths = split_tour_into_paths(g.edges())
        assert len(paths) == 3
        assert all(len(p) == 1 for p in paths)

    def test_split_no_jumps(self, k23):
        paths = split_tour_into_paths(biclique_tour(k23))
        assert len(paths) == 1

    def test_split_empty(self):
        assert split_tour_into_paths([]) == []

    def test_tour_from_paths_concatenates(self):
        paths = [[("a", "b")], [("c", "d")]]
        assert tour_from_paths(paths) == [("a", "b"), ("c", "d")]

    def test_reorder_exploits_free_junctions(self):
        # Three fragments that chain perfectly when ordered/oriented right.
        p1 = [("a", "b")]
        p2 = [("c", "d")]
        p3 = [("b", "c")]
        ordered = reorder_paths_greedily([p1, p2, p3])
        tour = tour_from_paths(ordered)
        assert tour_jumps(tour) <= 1  # naive order has 2 jumps

    def test_reorder_never_loses_elements(self):
        paths = [[("a", "b")], [("x", "y")], [("b", "c")]]
        ordered = reorder_paths_greedily(paths)
        flat = [e for p in ordered for e in p]
        assert sorted(map(repr, flat)) == sorted(
            map(repr, [e for p in paths for e in p])
        )

    def test_reorder_empty(self):
        assert reorder_paths_greedily([]) == []
