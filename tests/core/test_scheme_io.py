"""Tests for scheme serialization round trips."""

import pytest

from repro.errors import SchemeError
from repro.graphs.generators import complete_bipartite
from repro.core.scheme import PebblingScheme
from repro.core.scheme_io import dump_scheme, load_scheme
from repro.core.solvers.equijoin import solve_equijoin


class TestRoundTrip:
    def test_basic(self, k23):
        scheme = solve_equijoin(k23)
        restored = load_scheme(dump_scheme(scheme))
        assert restored == scheme
        restored.validate(k23)
        assert restored.cost() == scheme.cost()

    def test_empty_scheme(self):
        assert load_scheme(dump_scheme(PebblingScheme([]))) == PebblingScheme([])

    def test_comments_and_blanks_ignored(self):
        text = "# hi\n\nC u0 v0\n"
        scheme = load_scheme(text)
        assert len(scheme) == 1

    def test_bad_lines_rejected(self):
        with pytest.raises(SchemeError):
            load_scheme("X u0 v0\n")
        with pytest.raises(SchemeError):
            load_scheme("C u0\n")

    def test_spacey_names_rejected(self):
        scheme = PebblingScheme([("a vertex", "b")])
        with pytest.raises(SchemeError):
            dump_scheme(scheme)
