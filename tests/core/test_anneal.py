"""Tests for the simulated annealing solver."""

import pytest

from repro.graphs.generators import (
    complete_bipartite,
    random_bipartite_gnm,
    random_connected_bipartite,
)
from repro.core.families import worst_case_effective_cost, worst_case_family
from repro.core.solvers.anneal import anneal_component_tour, solve_anneal
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.registry import solve
from repro.core.tsp import tour_cost


class TestAnneal:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_never_worse_than_start(self, seed):
        g = random_connected_bipartite(5, 5, extra_edges=3, seed=seed)
        result = solve_anneal(g, seed=seed)
        result.scheme.validate(g)
        start = solve_dfs_approx(g)
        assert result.effective_cost <= start.effective_cost

    def test_reaches_optimum_on_worst_case_family(self):
        g = worst_case_family(6)
        result = solve_anneal(g, seed=1, steps=8000)
        assert result.effective_cost == worst_case_effective_cost(6)

    @pytest.mark.parametrize("seed", range(4))
    def test_close_to_exact_on_random(self, seed):
        g = random_bipartite_gnm(4, 4, 9, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        exact = solve_exact(g).effective_cost
        annealed = solve_anneal(g, seed=seed).effective_cost
        assert annealed <= exact + 1  # typically equal

    def test_deterministic_given_seed(self):
        g = random_connected_bipartite(5, 5, extra_edges=4, seed=2)
        a = solve_anneal(g, seed=7).effective_cost
        b = solve_anneal(g, seed=7).effective_cost
        assert a == b

    def test_registry_integration(self):
        g = complete_bipartite(2, 3)
        result = solve(g, "anneal")
        result.scheme.validate(g)
        assert result.method == "anneal"
        assert not result.optimal

    def test_component_anneal_never_increases_cost(self):
        g = worst_case_family(4)
        import random as random_module

        tour = g.edges()  # deliberately bad order
        annealed, accepted = anneal_component_tour(
            tour, random_module.Random(0), steps=2000
        )
        assert tour_cost(annealed) <= tour_cost(tour)
        assert sorted(map(repr, annealed)) == sorted(map(repr, tour))

    def test_tiny_tour_untouched(self):
        import random as random_module

        tour = [("u0", "v0"), ("u1", "v0")]
        annealed, accepted = anneal_component_tour(tour, random_module.Random(0))
        assert annealed == tour
        assert accepted == 0
