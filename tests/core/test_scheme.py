"""Tests for PebblingScheme: validity, costs, and move expansion."""

import pytest

from repro.errors import SchemeError
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
)
from repro.core.scheme import (
    PebblingScheme,
    config_transition_cost,
    configs_share_vertex,
)


class TestTransitionCost:
    def test_identical_configs_cost_zero(self):
        assert config_transition_cost(("a", "b"), ("b", "a")) == 0

    def test_one_shared_vertex_costs_one(self):
        assert config_transition_cost(("a", "b"), ("b", "c")) == 1

    def test_disjoint_costs_two(self):
        assert config_transition_cost(("a", "b"), ("c", "d")) == 2

    def test_share_detection(self):
        assert configs_share_vertex(("a", "b"), ("b", "c"))
        assert not configs_share_vertex(("a", "b"), ("c", "d"))


class TestConstruction:
    def test_rejects_non_pairs(self):
        with pytest.raises(SchemeError):
            PebblingScheme([("a",)])

    def test_rejects_double_occupancy(self):
        with pytest.raises(SchemeError):
            PebblingScheme([("a", "a")])

    def test_from_edge_order_valid(self, path4):
        scheme = PebblingScheme.from_edge_order(path4, path4.edges())
        assert len(scheme) == 4

    def test_from_edge_order_rejects_non_edge(self, path4):
        with pytest.raises(SchemeError):
            PebblingScheme.from_edge_order(path4, [("u0", "v1")])

    def test_from_edge_order_rejects_repeat(self, path4):
        edges = path4.edges()
        with pytest.raises(SchemeError):
            PebblingScheme.from_edge_order(path4, edges + [edges[0]])

    def test_from_edge_order_rejects_missing(self, path4):
        with pytest.raises(SchemeError):
            PebblingScheme.from_edge_order(path4, path4.edges()[:-1])


class TestCosts:
    def test_empty_scheme_costs_zero(self):
        assert PebblingScheme([]).cost() == 0

    def test_single_config_costs_two(self):
        assert PebblingScheme([("a", "b")]).cost() == 2

    def test_chain_cost_is_k_plus_one(self, path4):
        # Def 2.1: a scheme whose consecutive configs share a vertex over k
        # configurations costs k + 1.
        edges = path4.edges()
        # Order path edges along the path so consecutive edges share.
        ordered = sorted(edges, key=lambda e: (e[0], e[1]))
        scheme = PebblingScheme.from_edge_order(path4, _path_order(path4))
        assert scheme.cost() == len(edges) + 1

    def test_matching_costs_2m(self):
        # Lemma 2.4: a matching with m edges has pi_hat = 2m, pi = m.
        g = matching_graph(4)
        scheme = PebblingScheme.from_edge_order(g, g.edges())
        assert scheme.cost() == 8
        assert scheme.effective_cost(g) == 4

    def test_jumps_counted(self):
        g = matching_graph(3)
        scheme = PebblingScheme.from_edge_order(g, g.edges())
        assert scheme.jumps() == 2


def _path_order(path_graph_instance):
    """The edges of a path graph in path order."""
    g = path_graph_instance
    degree_one = [v for v in list(g.left) + list(g.right) if g.degree(v) == 1]
    current = degree_one[0]
    previous = None
    order = []
    while True:
        nexts = [n for n in g.neighbors(current) if n != previous]
        if not nexts:
            break
        order.append(g.orient_edge(current, nexts[0]))
        previous, current = current, nexts[0]
    return order


class TestValidity:
    def test_valid_scheme(self, k23):
        from repro.core.solvers.equijoin import biclique_tour

        scheme = PebblingScheme.from_edge_order(k23, biclique_tour(k23))
        scheme.validate(k23)
        assert scheme.is_valid(k23)

    def test_off_graph_configuration_rejected(self, path4):
        scheme = PebblingScheme([("ghost", "u0")])
        assert not scheme.is_valid(path4)

    def test_incomplete_scheme_rejected(self, path4):
        edges = path4.edges()
        scheme = PebblingScheme(edges[:-1])
        with pytest.raises(SchemeError):
            scheme.validate(path4)

    def test_transit_configurations_allowed_if_all_edges_covered(self, path4):
        # A scheme may wander through non-edge configurations; validity only
        # requires every edge to be deleted at some point.
        edges = _path_order(path4)
        with_transit = edges[:2] + [("u0", "v1")] + edges[2:]
        try:
            scheme = PebblingScheme(with_transit)
        except Exception:  # pragma: no cover
            pytest.fail("transit configurations should be constructible")
        if ("u0", "v1") not in [tuple(e) for e in path4.edges()]:
            scheme.validate(path4)

    def test_is_edge_order(self, path4):
        scheme = PebblingScheme.from_edge_order(path4, path4.edges())
        assert scheme.is_edge_order(path4)
        transit = PebblingScheme([("u0", "v1")] + list(path4.edges()))
        if not path4.has_edge("u0", "v1"):
            assert not transit.is_edge_order(path4)


class TestMoves:
    def test_moves_replay_to_same_cost(self, k23):
        from repro.core.game import PebbleGame
        from repro.core.solvers.equijoin import biclique_tour

        scheme = PebblingScheme.from_edge_order(k23, biclique_tour(k23))
        game = PebbleGame(k23)
        moves_used = game.replay(scheme)
        assert moves_used == scheme.cost()
        assert game.is_won()

    def test_moves_on_matching(self):
        from repro.core.game import PebbleGame

        g = matching_graph(3)
        scheme = PebblingScheme.from_edge_order(g, g.edges())
        game = PebbleGame(g)
        assert game.replay(scheme) == 6
        assert game.is_won()

    def test_empty_scheme_no_moves(self):
        assert PebblingScheme([]).moves() == []


class TestConcat:
    def test_concat_additivity_shape(self):
        g1 = complete_bipartite(2, 2)
        s1 = PebblingScheme.from_edge_order(
            g1, [("u0", "v0"), ("u0", "v1"), ("u1", "v1"), ("u1", "v0")]
        )
        s2 = PebblingScheme([("x", "y")])
        combined = s1.concat(s2)
        assert len(combined) == 5
        # Disjoint configs: the junction costs 2 extra moves.
        assert combined.cost() == s1.cost() + s2.cost()
