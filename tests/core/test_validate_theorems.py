"""The executable theorems: validate.py checkers over instance sweeps."""

import pytest

from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
    random_connected_bipartite,
    union_of_bicliques,
)
from repro.core import validate
from repro.core.families import worst_case_family


class TestCostBounds:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        g = random_bipartite_gnm(4, 4, 8, seed=seed)
        report = validate.check_cost_bounds(g)
        assert report["m"] <= report["pi"] <= report["upper"]

    def test_worst_case_family(self):
        validate.check_cost_bounds(worst_case_family(5))

    def test_empty(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert validate.check_cost_bounds(BipartiteGraph())["m"] == 0


class TestAdditivity:
    @pytest.mark.parametrize(
        "first,second",
        [
            (path_graph(3), cycle_graph(4)),
            (complete_bipartite(2, 2), worst_case_family(3)),
            (matching_graph(2), path_graph(2)),
            (worst_case_family(2), worst_case_family(3)),
        ],
    )
    def test_pairs(self, first, second):
        report = validate.check_additivity(first, second)
        assert report["pi_union"] == report["pi_G"] + report["pi_H"]


class TestCorrespondence:
    @pytest.mark.parametrize("seed", range(6))
    def test_perfect_iff_hamiltonian(self, seed):
        g = random_connected_bipartite(4, 4, extra_edges=seed % 3, seed=seed)
        report = validate.check_perfect_iff_hamiltonian(g)
        assert report["pi"] >= report["m"]

    def test_worst_case_family_not_perfect(self):
        report = validate.check_perfect_iff_hamiltonian(worst_case_family(4))
        assert not report["hamiltonian"]
        assert report["pi"] > report["m"]

    @pytest.mark.parametrize("seed", range(6))
    def test_tsp_correspondence(self, seed):
        g = random_connected_bipartite(4, 4, extra_edges=2, seed=seed)
        report = validate.check_tsp_correspondence(g)
        assert report["tour_cost"] == report["pi"] - 1

    def test_requires_connected(self):
        with pytest.raises(AssertionError):
            validate.check_perfect_iff_hamiltonian(matching_graph(3))


class TestStructuralFacts:
    @pytest.mark.parametrize("seed", range(6))
    def test_line_graphs_claw_free(self, seed):
        g = random_bipartite_gnm(5, 5, 11, seed=seed)
        validate.check_line_graph_claw_free(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_dfs_guarantee(self, seed):
        g = random_bipartite_gnm(5, 5, 12, seed=seed)
        validate.check_dfs_guarantee(g)

    def test_equijoin_perfect(self):
        validate.check_equijoin_perfect(union_of_bicliques([(3, 2), (1, 4)]))
