"""Tests for the Theorem 3.1 DFS 1.25-approximation."""

import pytest

from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite_gnm,
    random_connected_bipartite,
    union_of_bicliques,
)
from repro.core.families import worst_case_family
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import solve_exact


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(20))
    def test_within_guarantee_random_connected(self, seed):
        g = random_connected_bipartite(6, 6, extra_edges=seed % 7, seed=seed)
        result = solve_dfs_approx(g)
        result.scheme.validate(g)
        assert result.effective_cost <= result.guarantee
        assert result.guarantee <= int(1.25 * g.num_edges)

    @pytest.mark.parametrize("seed", range(10))
    def test_within_guarantee_random_disconnected(self, seed):
        g = random_bipartite_gnm(6, 6, 10, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        result = solve_dfs_approx(g)
        result.scheme.validate(g)
        assert result.effective_cost <= result.guarantee

    @pytest.mark.parametrize("n", range(1, 10))
    def test_worst_case_family(self, n):
        g = worst_case_family(n)
        result = solve_dfs_approx(g)
        result.scheme.validate(g)
        assert result.effective_cost <= g.num_edges + g.num_edges // 4

    def test_structured_instances(self):
        for g in (
            path_graph(9),
            cycle_graph(10),
            complete_bipartite(4, 5),
            grid_graph(3, 4),
            union_of_bicliques([(2, 2), (3, 3)]),
        ):
            result = solve_dfs_approx(g)
            result.scheme.validate(g)
            assert result.effective_cost <= result.guarantee


class TestQuality:
    @pytest.mark.parametrize("seed", range(8))
    def test_ratio_vs_optimum_within_125(self, seed):
        g = random_connected_bipartite(4, 4, extra_edges=2, seed=seed)
        approx = solve_dfs_approx(g).effective_cost
        exact = solve_exact(g).effective_cost
        assert approx <= 1.25 * exact + 1e-9

    def test_perfect_on_paths(self):
        # L(path) is a path; the DFS tree is a chain, one chunk, no jumps.
        g = path_graph(8)
        assert solve_dfs_approx(g).effective_cost == 8


class TestMechanics:
    def test_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        result = solve_dfs_approx(BipartiteGraph())
        assert result.effective_cost == 0
        assert result.guarantee == 0

    def test_single_edge(self):
        g = path_graph(1)
        result = solve_dfs_approx(g)
        assert result.effective_cost == 1

    def test_chunks_reported(self):
        g = worst_case_family(6)
        result = solve_dfs_approx(g)
        assert result.chunks >= 1
        # Jumps can only be fewer than chunk junctions (greedy reordering).
        assert result.jumps <= result.chunks - 1
