"""Tests for the k-pebble generalization."""

import pytest

from repro.errors import InstanceTooLargeError, SchemeError
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
)
from repro.core.families import worst_case_family
from repro.core.kpebble import (
    KPebbleGame,
    degree_lower_bound,
    greedy_kpebble_cost,
    greedy_kpebble_schedule,
    kpebble_lower_bound,
    optimal_kpebble_cost_bruteforce,
    vertex_count_lower_bound,
)
from repro.core.solvers.exact import solve_exact


class TestGameMechanics:
    def test_needs_two_pebbles(self):
        with pytest.raises(SchemeError):
            KPebbleGame(path_graph(2), k=1)

    def test_single_placement_deletes_fan(self):
        g = complete_bipartite(1, 3)  # star
        game = KPebbleGame(g, k=4)
        game.move(0, "v0")
        game.move(1, "v1")
        game.move(2, "v2")
        deleted = game.move(3, "u0")
        assert len(deleted) == 3
        assert game.is_won()
        assert game.moves_used == 4

    def test_no_double_occupancy(self):
        g = path_graph(2)
        game = KPebbleGame(g, k=3)
        game.move(0, "u0")
        with pytest.raises(SchemeError):
            game.move(1, "u0")

    def test_bad_pebble_index(self):
        with pytest.raises(SchemeError):
            KPebbleGame(path_graph(2), k=2).move(5, "u0")


class TestLowerBounds:
    def test_vertex_count_bound(self):
        g = complete_bipartite(2, 3)
        assert vertex_count_lower_bound(g) == 5

    def test_degree_bound(self):
        g = complete_bipartite(2, 3)
        # m=6, Delta=3 -> ceil(6/3)+1 = 3.
        assert degree_lower_bound(g) == 3

    def test_combined_bound(self):
        g = complete_bipartite(2, 3)
        assert kpebble_lower_bound(g) == 5

    def test_bounds_sound_vs_bruteforce(self):
        for g in (path_graph(4), complete_bipartite(2, 2), matching_graph(3)):
            for k in (2, 3):
                assert kpebble_lower_bound(g) <= optimal_kpebble_cost_bruteforce(g, k)

    def test_empty(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert degree_lower_bound(BipartiteGraph()) == 0


class TestTwoPebbleConsistency:
    """The k=2 brute force must agree with the paper-model optimum pi_hat."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: path_graph(4),
            lambda: complete_bipartite(2, 2),
            lambda: matching_graph(3),
            lambda: worst_case_family(3),
        ],
    )
    def test_bruteforce_matches_pi_hat(self, maker):
        g = maker()
        pi_hat = solve_exact(g).scheme.cost()
        assert optimal_kpebble_cost_bruteforce(g, 2) == pi_hat

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        g = random_bipartite_gnm(3, 3, 6, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        assert optimal_kpebble_cost_bruteforce(g, 2) == solve_exact(g).scheme.cost()


class TestMonotonicityAndGreedy:
    def test_more_pebbles_never_hurt_exact(self):
        g = complete_bipartite(2, 3)
        costs = [optimal_kpebble_cost_bruteforce(g, k) for k in (2, 3, 4, 5)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_n_pebbles_reach_vertex_floor(self):
        g = complete_bipartite(2, 3)
        n = 5
        assert optimal_kpebble_cost_bruteforce(g, n) == n

    def test_greedy_always_wins(self):
        # The scheduler terminates with a winning schedule on every
        # instance and every pebble count (its length is the cost).
        for seed in range(5):
            g = random_bipartite_gnm(4, 4, 9, seed=seed).without_isolated_vertices()
            if g.num_edges == 0:
                continue
            for k in (2, 3, 5):
                schedule = greedy_kpebble_schedule(g, k)
                assert len(schedule) == greedy_kpebble_cost(g, k)
                assert len(schedule) >= kpebble_lower_bound(g)

    def test_greedy_respects_lower_bound(self):
        g = worst_case_family(4)
        for k in (2, 3, 6):
            assert greedy_kpebble_cost(g, k) >= kpebble_lower_bound(g)

    def test_greedy_monotone_at_large_k(self):
        g = worst_case_family(5)
        big = greedy_kpebble_cost(g, g.num_vertices)
        assert big == vertex_count_lower_bound(g)  # optimal at k >= n

    def test_bruteforce_size_cap(self):
        with pytest.raises(InstanceTooLargeError):
            optimal_kpebble_cost_bruteforce(complete_bipartite(3, 3), 2)
