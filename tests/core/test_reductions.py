"""Tests for the executable L-reductions (Theorems 4.3 and 4.4)."""

import pytest

from repro.errors import ReductionError
from repro.graphs.generators import random_tsp12_graph
from repro.graphs.simple import Graph
from repro.core.reductions import (
    Tsp12Instance,
    forward_tour,
    measure_diamond_reduction,
    measure_incidence_reduction,
    pebble_scheme_to_tsp_tour,
    reverse_tour,
    tsp3_to_pebble,
    tsp4_to_tsp3,
    tsp_tour_to_pebble_tour,
)
from repro.core.scheme import PebblingScheme
from repro.core.solvers.exact import solve_exact


def _cycle(n: int) -> Graph:
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


class TestTsp12Instance:
    def test_tour_cost(self):
        inst = Tsp12Instance(_cycle(4))
        assert inst.tour_cost([0, 1, 2, 3]) == 3
        assert inst.tour_cost([0, 2, 1, 3]) == 5  # bad, good, bad

    def test_tour_must_cover(self):
        inst = Tsp12Instance(_cycle(4))
        with pytest.raises(ReductionError):
            inst.tour_cost([0, 1, 2])
        with pytest.raises(ReductionError):
            inst.tour_cost([0, 1, 2, 2])

    def test_optimal_tour_on_cycle(self):
        inst = Tsp12Instance(_cycle(5))
        tour, cost = inst.optimal_tour()
        assert cost == 4
        assert inst.tour_cost(tour) == 4

    def test_optimal_tour_on_disconnected(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        inst = Tsp12Instance(g)
        _tour, cost = inst.optimal_tour()
        assert cost == 3 + 1  # 3 steps, one of them bad


class TestDiamondReduction:
    def _degree4_instance(self) -> Tsp12Instance:
        # A wheel-ish graph with one degree-4 hub.
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)])
        assert g.degree(0) == 4
        return Tsp12Instance(g)

    def test_target_degree_bounded(self):
        reduction = tsp4_to_tsp3(self._degree4_instance())
        assert reduction.target.max_good_degree <= 3

    def test_node_count_bound(self):
        # |H| <= gadget_size * n (the paper's "at most 11n").
        instance = self._degree4_instance()
        reduction = tsp4_to_tsp3(instance)
        gadget_size = reduction.gadget.num_nodes
        assert reduction.target.num_nodes <= gadget_size * instance.num_nodes

    def test_light_nodes_kept(self):
        reduction = tsp4_to_tsp3(self._degree4_instance())
        assert reduction.target.graph.has_vertex(1)
        assert not reduction.target.graph.has_vertex(0)

    def test_rejects_degree_5(self):
        g = Graph(edges=[(0, i) for i in range(1, 6)])
        with pytest.raises(ReductionError):
            tsp4_to_tsp3(Tsp12Instance(g))

    def test_forward_tour_visits_everything(self):
        instance = self._degree4_instance()
        reduction = tsp4_to_tsp3(instance)
        src_tour, _ = instance.optimal_tour()
        lifted = forward_tour(reduction, src_tour)
        assert sorted(map(repr, lifted)) == sorted(
            map(repr, reduction.target.graph.vertices)
        )

    def test_reverse_tour_round_trip(self):
        instance = self._degree4_instance()
        reduction = tsp4_to_tsp3(instance)
        src_tour, _ = instance.optimal_tour()
        lifted = forward_tour(reduction, src_tour)
        back = reverse_tour(reduction, lifted)
        assert set(back) == set(instance.graph.vertices)
        # Recovering from the lifted optimum loses nothing.
        src_cost = instance.tour_cost(src_tour)
        assert instance.tour_cost(back) == src_cost

    def test_measured_constants_within_bounds(self):
        instance = self._degree4_instance()
        reduction = tsp4_to_tsp3(instance)
        report = measure_diamond_reduction(reduction)
        gadget_size = reduction.gadget.num_nodes
        assert report.alpha_observed <= gadget_size + 1
        assert report.beta_observed <= 1.0 + 1e-9
        assert report.satisfies(alpha=gadget_size + 1, beta=1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        g = random_tsp12_graph(5, max_degree=4, seed=seed, edge_factor=1.8)
        reduction = tsp4_to_tsp3(Tsp12Instance(g))
        assert reduction.target.max_good_degree <= 3
        src_tour, src_cost = reduction.source.optimal_tour()
        lifted = forward_tour(reduction, src_tour)
        lifted_cost = reduction.target.tour_cost(lifted)
        # The lift is a feasible target tour, so it bounds OPT(target).
        _t, opt_target = reduction.target.optimal_tour()
        assert opt_target <= lifted_cost


class TestIncidenceReduction:
    def test_join_graph_shape(self):
        inst = Tsp12Instance(_cycle(4))
        reduction = tsp3_to_pebble(inst)
        b = reduction.join_graph
        assert len(b.left) == 4  # vertices
        assert len(b.right) == 4  # edges
        assert b.num_edges == 8  # 2 incidences per edge

    def test_rejects_degree_4(self):
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        with pytest.raises(ReductionError):
            tsp3_to_pebble(Tsp12Instance(g))

    def test_rejects_isolated_nodes(self):
        g = Graph(vertices=["iso"], edges=[(0, 1)])
        with pytest.raises(ReductionError):
            tsp3_to_pebble(Tsp12Instance(g))

    def test_tour_to_pebble_order_is_valid_scheme(self):
        inst = Tsp12Instance(_cycle(5))
        reduction = tsp3_to_pebble(inst)
        tour, _cost = inst.optimal_tour()
        order = tsp_tour_to_pebble_tour(reduction, tour)
        scheme = PebblingScheme.from_edge_order(reduction.join_graph, order)
        scheme.validate(reduction.join_graph)

    def test_good_tour_gives_cheap_scheme(self):
        # A zero-jump source tour lifts to a perfect or near-perfect scheme.
        inst = Tsp12Instance(_cycle(6))
        reduction = tsp3_to_pebble(inst)
        tour, cost = inst.optimal_tour()
        assert cost == 5  # Hamiltonian path along the cycle
        order = tsp_tour_to_pebble_tour(reduction, tour)
        scheme = PebblingScheme.from_edge_order(reduction.join_graph, order)
        m = reduction.join_graph.num_edges
        assert scheme.effective_cost(reduction.join_graph) <= m + 1

    def test_scheme_to_tour_covers_vertices(self):
        inst = Tsp12Instance(_cycle(5))
        reduction = tsp3_to_pebble(inst)
        scheme = solve_exact(reduction.join_graph).scheme
        tour = pebble_scheme_to_tsp_tour(reduction, scheme)
        assert set(tour) == set(inst.graph.vertices)

    def test_measured_beta_at_most_one(self):
        inst = Tsp12Instance(_cycle(5))
        reduction = tsp3_to_pebble(inst)
        report = measure_incidence_reduction(reduction)
        assert report.beta_observed <= 1.0 + 1e-9
