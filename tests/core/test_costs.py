"""Tests for the cost bounds of §2.1."""

from repro.graphs.components import disjoint_union
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
    union_of_bicliques,
)
from repro.core.costs import (
    effective_cost_bounds,
    effective_cost_of_edge_order,
    is_perfect_scheme,
    matching_raw_cost,
    naive_cost_bounds,
    perfect_cost,
    raw_cost_bounds,
)
from repro.core.scheme import PebblingScheme
from repro.core.solvers.equijoin import solve_equijoin


class TestBounds:
    def test_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert effective_cost_bounds(BipartiteGraph()) == (0, 0)
        assert naive_cost_bounds(BipartiteGraph()) == (0, 0)

    def test_connected_bounds(self, k23):
        lower, upper = effective_cost_bounds(k23)
        assert lower == 6
        assert upper == 7  # floor(1.25 * 6)

    def test_naive_bounds(self, k23):
        assert naive_cost_bounds(k23) == (6, 11)

    def test_bounds_sum_over_components(self):
        g = union_of_bicliques([(2, 2), (2, 2)])
        lower, upper = effective_cost_bounds(g)
        assert lower == 8
        assert upper == 10  # 5 + 5

    def test_raw_bounds_shift_by_betti(self):
        g = matching_graph(3)
        lower, upper = raw_cost_bounds(g)
        eff_lower, eff_upper = effective_cost_bounds(g)
        assert lower == eff_lower + 3
        assert upper == eff_upper + 3

    def test_matching_raw_cost(self):
        assert matching_raw_cost(7) == 14


class TestPerfect:
    def test_perfect_cost_is_m(self, k23):
        assert perfect_cost(k23) == 6

    def test_equijoin_scheme_is_perfect(self, k23):
        scheme = solve_equijoin(k23)
        assert is_perfect_scheme(k23, scheme)

    def test_matching_scheme_is_perfect(self):
        # A matching's pi equals m (all cost is start-up, subtracted by β0).
        g = matching_graph(3)
        scheme = PebblingScheme.from_edge_order(g, g.edges())
        assert is_perfect_scheme(g, scheme)

    def test_invalid_scheme_not_perfect(self, k23):
        scheme = PebblingScheme(k23.edges()[:-1])
        assert not is_perfect_scheme(k23, scheme)


class TestEdgeOrderCost:
    def test_connected_identity(self):
        g = path_graph(3)
        from tests.core.test_scheme import _path_order

        order = _path_order(g)
        assert effective_cost_of_edge_order(order) == 3  # m + 0 jumps

    def test_jumpy_order(self):
        g = matching_graph(3)
        order = g.edges()
        # beta0 = 3: pi = m + 1 + J - beta0 = 3 + 1 + 2 - 3 = 3.
        assert effective_cost_of_edge_order(order, beta0=3) == 3

    def test_empty(self):
        assert effective_cost_of_edge_order([]) == 0

    def test_agrees_with_scheme_cost(self, cycle6):
        from repro.core.solvers.exact import solve_exact

        result = solve_exact(cycle6)
        order = [cycle6.orient_edge(*c) for c in result.scheme.configurations]
        assert (
            effective_cost_of_edge_order(order)
            == result.scheme.effective_cost(cycle6)
        )
