"""Tests for the linear-time equijoin pebbler (Lemma 3.2, Thms 3.2/4.1)."""

import time

import pytest

from repro.errors import SolverError
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    union_of_bicliques,
)
from repro.core.solvers.equijoin import (
    biclique_tour,
    is_union_of_bicliques,
    solve_equijoin,
)
from repro.core.families import worst_case_family


class TestStructureCheck:
    def test_biclique_union_accepted(self):
        assert is_union_of_bicliques(union_of_bicliques([(2, 3), (1, 1), (4, 2)]))

    def test_matching_is_biclique_union(self):
        assert is_union_of_bicliques(matching_graph(5))

    def test_cycle_rejected(self):
        assert not is_union_of_bicliques(cycle_graph(6))

    def test_worst_case_family_rejected(self):
        # Fig 1 graphs cannot be equijoin graphs (paper §3.2).
        assert not is_union_of_bicliques(worst_case_family(4))

    def test_isolated_vertices_ignored(self):
        g = complete_bipartite(2, 2)
        g.add_left_vertex("iso")
        assert is_union_of_bicliques(g)


class TestBoustrophedon:
    @pytest.mark.parametrize("k,l", [(1, 1), (1, 5), (3, 1), (2, 3), (4, 4)])
    def test_tour_has_no_jumps(self, k, l):
        tour = biclique_tour(complete_bipartite(k, l))
        for e1, e2 in zip(tour, tour[1:]):
            assert set(e1) & set(e2), f"jump between {e1} and {e2}"

    def test_tour_covers_all_edges_once(self):
        g = complete_bipartite(3, 4)
        tour = biclique_tour(g)
        assert len(tour) == 12
        assert len(set(tour)) == 12


class TestSolve:
    def test_perfect_on_biclique_union(self):
        g = union_of_bicliques([(2, 2), (3, 1), (1, 4)])
        scheme = solve_equijoin(g)
        scheme.validate(g)
        assert scheme.effective_cost(g) == g.num_edges

    def test_rejects_non_equijoin_graph(self):
        with pytest.raises(SolverError):
            solve_equijoin(cycle_graph(6))

    def test_rejects_worst_case_family(self):
        with pytest.raises(SolverError):
            solve_equijoin(worst_case_family(3))

    def test_scaling_is_roughly_linear(self):
        # Thm 4.1: linear time.  We check that 4x the edges costs well under
        # the ~16x a quadratic algorithm would take (generous slack for
        # timing noise).
        small = union_of_bicliques([(4, 4)] * 25)  # m = 400
        large = union_of_bicliques([(4, 4)] * 100)  # m = 1600

        def timed(graph):
            start = time.perf_counter()
            solve_equijoin(graph)
            return time.perf_counter() - start

        timed(small)  # warm-up
        t_small = min(timed(small) for _ in range(3))
        t_large = min(timed(large) for _ in range(3))
        assert t_large < 10 * max(t_small, 1e-4)

    def test_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        scheme = solve_equijoin(BipartiteGraph())
        assert scheme.cost() == 0
