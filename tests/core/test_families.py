"""Tests for the worst-case family G_n (Theorem 3.3, Fig 1)."""

import pytest

from repro.errors import GraphError
from repro.graphs.components import is_connected
from repro.graphs.line_graph import line_graph
from repro.core.families import (
    corona_line_graph,
    is_corona_of_clique,
    jump_count_of_family,
    worst_case_effective_cost,
    worst_case_family,
    worst_case_scheme,
    worst_case_tour,
)
from repro.core.solvers.exact import solve_exact


class TestFamilyShape:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_edge_count(self, n):
        assert worst_case_family(n).num_edges == 2 * n

    def test_connected(self):
        assert is_connected(worst_case_family(5))

    def test_not_complete_bipartite(self):
        # The paper notes Fig 1 graphs cannot be equijoin graphs.
        from repro.core.solvers.equijoin import is_union_of_bicliques

        assert not is_union_of_bicliques(worst_case_family(3))

    def test_invalid_n(self):
        with pytest.raises(GraphError):
            worst_case_family(0)
        with pytest.raises(GraphError):
            worst_case_effective_cost(0)
        with pytest.raises(GraphError):
            worst_case_tour(0)


class TestLineGraphCorona:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_line_graph_is_corona(self, n):
        assert line_graph(worst_case_family(n)) == corona_line_graph(n)

    def test_corona_recognizer_accepts(self):
        assert is_corona_of_clique(corona_line_graph(5))

    def test_corona_recognizer_rejects_plain_clique(self):
        from repro.graphs.simple import Graph
        from itertools import combinations

        clique = Graph(edges=combinations(range(4), 2))
        assert not is_corona_of_clique(clique)

    def test_corona_recognizer_rejects_path(self):
        from repro.graphs.simple import Graph

        # A 2-path: pendants 'a','c' both attach to 'b' — not a corona.
        path = Graph(edges=[("a", "b"), ("b", "c")])
        assert not is_corona_of_clique(path)

    def test_corona_recognizer_rejects_double_pendant(self):
        from repro.graphs.simple import Graph
        from itertools import combinations

        g = Graph(edges=combinations(range(3), 2))
        g.add_edge(0, "p0")
        g.add_edge(0, "p1")
        g.add_edge(1, "p2")
        assert not is_corona_of_clique(g)


class TestOptimalCost:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_formula_matches_exact_solver(self, n):
        family = worst_case_family(n)
        assert solve_exact(family).effective_cost == worst_case_effective_cost(n)

    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_even_n_equals_paper_bound(self, n):
        # For even n the paper's 1.25m − 1 is exact.
        m = 2 * n
        assert worst_case_effective_cost(n) == 1.25 * m - 1

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_n_above_paper_proof_bound(self, n):
        # The proof of Thm 3.3 lower-bounds tour cost by 1.25m − 2, i.e.
        # pi >= 1.25m − 1; odd n sits half a unit above 1.25m − 1.
        m = 2 * n
        assert worst_case_effective_cost(n) >= 1.25 * m - 1

    @pytest.mark.parametrize("n", range(1, 9))
    def test_explicit_scheme_is_optimal(self, n):
        family = worst_case_family(n)
        scheme = worst_case_scheme(n)
        scheme.validate(family)
        assert scheme.effective_cost(family) == worst_case_effective_cost(n)

    @pytest.mark.parametrize("n", range(1, 9))
    def test_jump_count(self, n):
        scheme = worst_case_scheme(n)
        assert scheme.jumps() == jump_count_of_family(n)

    def test_ratio_tends_to_125(self):
        # pi / m -> 1.25 as n grows.
        n = 40
        ratio = worst_case_effective_cost(n) / (2 * n)
        assert ratio > 1.2
