"""Property-based tests (hypothesis) on the core invariants.

Strategies generate small random bipartite graphs; each property is one of
the paper's universally-quantified statements, checked on every draw with
the exact solver as ground truth where needed.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number, component_vertex_sets
from repro.graphs.hamiltonian import has_hamiltonian_path
from repro.graphs.line_graph import is_claw_free, line_graph
from repro.core.costs import effective_cost_bounds
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.scheme import PebblingScheme
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.greedy import solve_greedy
from repro.core.tsp import scheme_to_tour, tour_cost


@st.composite
def bipartite_graphs(draw, max_left=4, max_right=4, min_edges=1):
    """A random small bipartite graph with at least ``min_edges`` edges."""
    n_left = draw(st.integers(1, max_left))
    n_right = draw(st.integers(1, max_right))
    cells = [(i, j) for i in range(n_left) for j in range(n_right)]
    chosen = draw(
        st.lists(st.sampled_from(cells), min_size=min_edges, max_size=len(cells))
    )
    graph = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    for i, j in set(chosen):
        graph.add_edge(f"u{i}", f"v{j}")
    return graph.without_isolated_vertices()


COMMON = settings(max_examples=60, deadline=None)


@COMMON
@given(bipartite_graphs())
def test_lemma_2_3_bounds(graph):
    """m <= pi(G) <= 2m − 1 on every instance."""
    m = graph.num_edges
    pi = solve_exact(graph).effective_cost
    assert m <= pi <= 2 * m - 1


@COMMON
@given(bipartite_graphs())
def test_theorem_3_1_upper_bound(graph):
    """pi(G) <= sum over components of floor(1.25 m_c)."""
    pi = solve_exact(graph).effective_cost
    _, upper = effective_cost_bounds(graph)
    assert pi <= upper


@COMMON
@given(bipartite_graphs())
def test_dfs_approx_guarantee(graph):
    """The Theorem 3.1 algorithm never exceeds its certificate."""
    result = solve_dfs_approx(graph)
    result.scheme.validate(graph)
    assert result.effective_cost <= result.guarantee


@COMMON
@given(bipartite_graphs())
def test_line_graph_claw_free(graph):
    """Line graphs of join graphs are always claw-free (Harary)."""
    assert is_claw_free(line_graph(graph))


@COMMON
@given(bipartite_graphs())
def test_deficiency_lower_bound_sound(graph):
    """The generalized Theorem 3.3 bound never exceeds the optimum."""
    assert effective_cost_lower_bound(graph) <= solve_exact(graph).effective_cost


@COMMON
@given(bipartite_graphs())
def test_proposition_2_1(graph):
    """On connected graphs: pi = m iff L(G) is traceable."""
    if len(component_vertex_sets(graph)) != 1:
        return
    pi = solve_exact(graph).effective_cost
    assert (pi == graph.num_edges) == has_hamiltonian_path(line_graph(graph))


@COMMON
@given(bipartite_graphs())
def test_proposition_2_2(graph):
    """Optimal scheme's tour cost equals pi + beta0 − 2 (Prop 2.2 with
    components)."""
    result = solve_exact(graph)
    tour = scheme_to_tour(graph, result.scheme)
    beta = betti_number(graph)
    assert tour_cost(tour) == result.effective_cost + beta - 2


@COMMON
@given(bipartite_graphs())
def test_greedy_schemes_always_valid(graph):
    """Every heuristic output is a valid scheme within the naive bounds."""
    result = solve_greedy(graph)
    result.scheme.validate(graph)
    m = graph.num_edges
    assert m <= result.effective_cost <= 2 * m - 1


@COMMON
@given(bipartite_graphs())
def test_scheme_cost_equals_game_replay(graph):
    """Scheme cost accounting agrees with the move-by-move game."""
    from repro.core.game import PebbleGame

    scheme = solve_exact(graph).scheme
    game = PebbleGame(graph)
    assert game.replay(scheme) == scheme.cost()
    assert game.is_won()


@COMMON
@given(bipartite_graphs(), bipartite_graphs())
def test_lemma_2_2_additivity(first, second):
    """pi(G ⊎ H) = pi(G) + pi(H)."""
    from repro.graphs.components import disjoint_union

    union = disjoint_union(first, second)
    assert (
        solve_exact(union).effective_cost
        == solve_exact(first).effective_cost + solve_exact(second).effective_cost
    )


@COMMON
@given(bipartite_graphs())
def test_edge_orders_are_permutations(graph):
    """Solver outputs visit each edge exactly once."""
    scheme = solve_exact(graph).scheme
    seen = {frozenset(c) for c in scheme.configurations}
    assert seen == {frozenset(e) for e in graph.edges()}
    assert len(scheme) == graph.num_edges
