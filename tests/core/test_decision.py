"""Tests for PEBBLE(D), the explicit decision problem (Def 4.1)."""

import pytest

from repro.graphs.generators import (
    complete_bipartite,
    random_bipartite_gnm,
    union_of_bicliques,
)
from repro.core.decision import PebbleDecision, decide_pebble, decide_per_component
from repro.core.families import worst_case_effective_cost, worst_case_family
from repro.core.solvers.exact import solve_exact


class TestDecide:
    def test_yes_at_optimum(self):
        g = worst_case_family(4)
        opt = worst_case_effective_cost(4)
        decision = decide_pebble(g, opt)
        assert decision.answer
        assert decision.verify(g)

    def test_no_below_optimum(self):
        g = worst_case_family(4)
        opt = worst_case_effective_cost(4)
        decision = decide_pebble(g, opt - 1)
        assert not decision.answer
        assert decision.verify(g)
        assert decision.lower_bound == opt or decision.lower_bound > opt - 1

    def test_fast_no_via_deficiency_bound(self):
        # K below even the deficiency bound: answered without search.
        g = worst_case_family(6)
        decision = decide_pebble(g, g.num_edges)  # optimum is m + 2
        assert not decision.answer
        assert "deficiency" in decision.reason

    def test_fast_yes_via_dfs_bound(self):
        g = complete_bipartite(3, 3)
        decision = decide_pebble(g, 2 * g.num_edges)
        assert decision.answer
        assert decision.verify(g)

    def test_boundary_consistency_sweep(self):
        # The decision flips exactly at the optimum, for many instances.
        for seed in range(6):
            g = random_bipartite_gnm(3, 4, 7, seed=seed).without_isolated_vertices()
            if g.num_edges == 0:
                continue
            opt = solve_exact(g).effective_cost
            assert decide_pebble(g, opt).answer
            assert not decide_pebble(g, opt - 1).answer

    def test_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert decide_pebble(BipartiteGraph(), 0).answer
        assert not decide_pebble(BipartiteGraph(), -1).answer

    def test_certificates_verify(self):
        for seed in range(4):
            g = random_bipartite_gnm(4, 4, 8, seed=seed).without_isolated_vertices()
            if g.num_edges == 0:
                continue
            opt = solve_exact(g).effective_cost
            for threshold in (opt - 1, opt, opt + 2):
                decision = decide_pebble(g, threshold)
                assert decision.verify(g), (seed, threshold)

    def test_tampered_certificate_fails_verification(self):
        g = complete_bipartite(2, 2)
        decision = decide_pebble(g, 10)
        assert decision.answer
        tampered = PebbleDecision(
            answer=True,
            threshold=2,  # below m: no valid scheme can witness this
            reason="tampered",
            scheme=decision.scheme,
            lower_bound=None,
        )
        assert not tampered.verify(g)


class TestPerComponent:
    def test_component_report(self):
        g = union_of_bicliques([(2, 2), (1, 3)])
        report = decide_per_component(g, threshold=0)
        assert len(report) == 2
        assert sum(entry["pi"] for entry in report) == g.num_edges

    def test_component_report_on_hard_family(self):
        g = worst_case_family(3)
        report = decide_per_component(g, threshold=0)
        assert report[0]["jumps"] == 1
