"""Tests for the deficiency lower bounds (generalizing Theorem 3.3)."""

from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
    random_connected_bipartite,
    star_graph,
)
from repro.graphs.line_graph import line_graph
from repro.core.families import (
    jump_count_of_family,
    worst_case_family,
)
from repro.core.lower_bounds import (
    component_deficiency_report,
    effective_cost_lower_bound,
    isolated_line_nodes_bound,
    jump_lower_bound,
    path_partition_lower_bound,
)
from repro.core.solvers.exact import solve_exact


class TestPathPartitionBound:
    def test_path_line_graph_needs_one_path(self):
        assert path_partition_lower_bound(line_graph(path_graph(5))) == 1

    def test_matching_line_graph_needs_m_paths(self):
        line = line_graph(matching_graph(4))
        assert path_partition_lower_bound(line) == 4

    def test_empty(self):
        from repro.graphs.simple import Graph

        assert path_partition_lower_bound(Graph()) == 0

    def test_corona_bound_matches_theorem_3_3(self):
        # Thm 3.3's counting: for G_n, J >= ceil(n/2) - 1.
        for n in range(2, 9):
            line = line_graph(worst_case_family(n))
            expected_paths = jump_count_of_family(n) + 1
            assert path_partition_lower_bound(line) == expected_paths


class TestJumpBound:
    def test_perfect_graphs_have_zero_bound(self, k23):
        assert jump_lower_bound(k23) == 0

    def test_family_bound_tight(self):
        for n in range(1, 8):
            family = worst_case_family(n)
            assert jump_lower_bound(family) == jump_count_of_family(n)

    def test_bound_is_sound(self):
        # The bound never exceeds the true optimum (checked exactly).
        for seed in range(6):
            g = random_connected_bipartite(4, 4, extra_edges=2, seed=seed)
            lb = effective_cost_lower_bound(g)
            assert lb <= solve_exact(g).effective_cost

    def test_bound_at_least_m(self, tiny_zoo):
        for g in tiny_zoo:
            assert effective_cost_lower_bound(g) >= g.num_edges


class TestReports:
    def test_report_shape(self):
        report = component_deficiency_report(worst_case_family(4))
        assert len(report) == 1
        entry = report[0]
        assert entry["edges"] == 8
        assert entry["line_nodes"] == 8
        assert entry["line_degree_one_nodes"] == 4
        assert entry["effective_cost_lb"] == entry["edges"] + entry["jump_lb"]

    def test_report_skips_empty_components(self):
        from repro.graphs.bipartite import BipartiteGraph

        g = BipartiteGraph(left=["iso"])
        assert component_deficiency_report(g) == []

    def test_isolated_line_nodes_bound(self):
        line = line_graph(matching_graph(3))
        assert isolated_line_nodes_bound(line) == 3
        line2 = line_graph(star_graph(3))
        assert isolated_line_nodes_bound(line2) == 1
