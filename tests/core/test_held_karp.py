"""Cross-validation: Held–Karp DP vs the path-partition exact solver."""

import pytest

from repro.errors import InstanceTooLargeError
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
)
from repro.graphs.line_graph import line_graph
from repro.core.families import worst_case_family
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.held_karp import (
    held_karp_effective_cost,
    held_karp_min_jumps,
)


class TestAgreementWithPrimarySolver:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs(self, seed):
        g = random_bipartite_gnm(4, 4, 10, seed=seed).without_isolated_vertices()
        assert held_karp_effective_cost(g) == solve_exact(g).effective_cost

    @pytest.mark.parametrize("n", range(1, 8))
    def test_worst_case_family(self, n):
        g = worst_case_family(n)
        assert held_karp_effective_cost(g) == solve_exact(g).effective_cost

    def test_structured_instances(self):
        for g in (
            path_graph(8),
            cycle_graph(8),
            complete_bipartite(3, 4),
            matching_graph(5),
        ):
            assert held_karp_effective_cost(g) == solve_exact(g).effective_cost


class TestJumpCounts:
    def test_traceable_line_graph_zero_jumps(self):
        assert held_karp_min_jumps(line_graph(path_graph(6))) == 0

    def test_matching_all_jumps(self):
        line = line_graph(matching_graph(4))
        assert held_karp_min_jumps(line) == 3

    def test_corona_jumps(self):
        from repro.core.families import jump_count_of_family

        for n in (3, 4, 5):
            line = line_graph(worst_case_family(n))
            assert held_karp_min_jumps(line) == jump_count_of_family(n)

    def test_empty(self):
        from repro.graphs.simple import Graph

        assert held_karp_min_jumps(Graph()) == 0

    def test_size_limit(self):
        g = matching_graph(19)
        with pytest.raises(InstanceTooLargeError):
            held_karp_effective_cost(g)
