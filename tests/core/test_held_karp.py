"""Cross-validation: Held–Karp DP vs the path-partition exact solver."""

import pytest

from repro.errors import InstanceTooLargeError
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
)
from repro.graphs.line_graph import line_graph
from repro.core.families import worst_case_family
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.held_karp import (
    held_karp_effective_cost,
    held_karp_min_jumps,
)


class TestAgreementWithPrimarySolver:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs(self, seed):
        g = random_bipartite_gnm(4, 4, 10, seed=seed).without_isolated_vertices()
        assert held_karp_effective_cost(g) == solve_exact(g).effective_cost

    @pytest.mark.parametrize("n", range(1, 8))
    def test_worst_case_family(self, n):
        g = worst_case_family(n)
        assert held_karp_effective_cost(g) == solve_exact(g).effective_cost

    def test_structured_instances(self):
        for g in (
            path_graph(8),
            cycle_graph(8),
            complete_bipartite(3, 4),
            matching_graph(5),
        ):
            assert held_karp_effective_cost(g) == solve_exact(g).effective_cost


class TestJumpCounts:
    def test_traceable_line_graph_zero_jumps(self):
        assert held_karp_min_jumps(line_graph(path_graph(6))) == 0

    def test_matching_all_jumps(self):
        line = line_graph(matching_graph(4))
        assert held_karp_min_jumps(line) == 3

    def test_corona_jumps(self):
        from repro.core.families import jump_count_of_family

        for n in (3, 4, 5):
            line = line_graph(worst_case_family(n))
            assert held_karp_min_jumps(line) == jump_count_of_family(n)

    def test_empty(self):
        from repro.graphs.simple import Graph

        assert held_karp_min_jumps(Graph()) == 0

    def test_size_limit(self):
        g = matching_graph(19)
        with pytest.raises(InstanceTooLargeError):
            held_karp_effective_cost(g)


class TestProcessBoundary:
    """Regression: the DP once compared against the module's infinity
    *by identity* (`current is _INFINITY`), which only holds by CPython
    object-sharing accident and breaks as soon as state crosses a pickle
    boundary (the parallel solve service ships graphs to workers)."""

    def test_distinct_inf_objects_compare_equal(self):
        import math
        import pickle

        from repro.core.solvers import held_karp as hk

        foreign_inf = pickle.loads(pickle.dumps(float("inf")))
        assert foreign_inf is not hk._INFINITY
        assert math.isinf(foreign_inf)
        assert foreign_inf == hk._INFINITY

    def test_pickled_graph_round_trip(self):
        import pickle

        g = worst_case_family(4)
        clone = pickle.loads(pickle.dumps(g))
        assert held_karp_effective_cost(clone) == held_karp_effective_cost(g)
        line = line_graph(g)
        line_clone = pickle.loads(pickle.dumps(line))
        assert held_karp_min_jumps(line_clone) == held_karp_min_jumps(line)

    def test_solves_in_worker_process(self):
        """The scenario that motivated the fix: the exact DP running in a
        pool worker must agree with the in-process answer."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.parallel.pool import preferred_start_method
        import multiprocessing

        g = worst_case_family(3)
        expected = held_karp_effective_cost(g)
        context = multiprocessing.get_context(preferred_start_method())
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            assert pool.submit(held_karp_effective_cost, g).result() == expected
