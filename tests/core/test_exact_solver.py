"""Tests for the exact PEBBLE solver (ground truth for everything else)."""

import pytest

from repro.errors import InstanceTooLargeError
from repro.graphs.components import disjoint_union
from repro.graphs.generators import (
    all_small_bipartite_graphs,
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
    star_graph,
    union_of_bicliques,
)
from repro.graphs.line_graph import line_graph
from repro.core.families import worst_case_effective_cost, worst_case_family
from repro.core.solvers.exact import (
    minimum_path_partition,
    optimal_effective_cost_bruteforce,
    solve_exact,
)


class TestKnownOptima:
    def test_path(self):
        g = path_graph(5)
        assert solve_exact(g).effective_cost == 5

    def test_cycle(self):
        g = cycle_graph(6)
        assert solve_exact(g).effective_cost == 6

    def test_star(self):
        assert solve_exact(star_graph(5)).effective_cost == 5

    def test_complete_bipartite(self):
        assert solve_exact(complete_bipartite(3, 3)).effective_cost == 9

    def test_matching(self):
        result = solve_exact(matching_graph(4))
        assert result.effective_cost == 4
        assert result.scheme.cost() == 8  # pi_hat = 2m (Lemma 2.4)

    @pytest.mark.parametrize("n", range(1, 8))
    def test_worst_case_family_formula(self, n):
        family = worst_case_family(n)
        assert solve_exact(family).effective_cost == worst_case_effective_cost(n)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        g = random_bipartite_gnm(3, 3, 6, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        assert (
            solve_exact(g).effective_cost
            == optimal_effective_cost_bruteforce(g)
        )

    def test_exhaustive_2x3(self):
        # Every bipartite graph on a 2x3 grid with 3..6 edges.
        for g in all_small_bipartite_graphs(2, 3, min_edges=3):
            working = g.without_isolated_vertices()
            assert (
                solve_exact(working).effective_cost
                == optimal_effective_cost_bruteforce(working)
            )

    def test_bruteforce_size_cap(self):
        with pytest.raises(InstanceTooLargeError):
            optimal_effective_cost_bruteforce(complete_bipartite(3, 3))


class TestSchemeValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_returned_scheme_valid_and_costed(self, seed):
        g = random_bipartite_gnm(4, 4, 9, seed=seed).without_isolated_vertices()
        result = solve_exact(g)
        result.scheme.validate(g)
        assert result.scheme.effective_cost(g) == result.effective_cost
        assert result.jumps == result.scheme.jumps()

    def test_additivity_over_components(self):
        g1 = cycle_graph(4)
        g2 = worst_case_family(3)
        union = disjoint_union(g1, g2)
        assert (
            solve_exact(union).effective_cost
            == solve_exact(g1).effective_cost + solve_exact(g2).effective_cost
        )

    def test_biclique_fast_path_used(self):
        # Large biclique would be hopeless for search; the closed form
        # answers instantly with zero search nodes.
        g = complete_bipartite(10, 10)
        result = solve_exact(g)
        assert result.effective_cost == 100
        assert result.search_nodes == 0

    def test_isolated_vertices_ignored(self):
        g = path_graph(3)
        g.add_left_vertex("iso")
        result = solve_exact(g)
        assert result.effective_cost == 3


class TestPathPartition:
    def test_partition_covers_all_nodes(self):
        line = line_graph(worst_case_family(4))
        partition = minimum_path_partition(line)
        covered = [node for path in partition for node in path]
        assert sorted(map(repr, covered)) == sorted(map(repr, line.vertices))

    def test_partition_paths_are_paths(self):
        line = line_graph(worst_case_family(4))
        for path in minimum_path_partition(line):
            for a, b in zip(path, path[1:]):
                assert line.has_edge(a, b)

    def test_partition_minimality_on_corona(self):
        from repro.core.families import jump_count_of_family

        for n in (3, 4, 5):
            line = line_graph(worst_case_family(n))
            partition = minimum_path_partition(line)
            assert len(partition) == jump_count_of_family(n) + 1

    def test_empty_graph(self):
        from repro.graphs.simple import Graph

        assert minimum_path_partition(Graph()) == []

    def test_node_budget_enforced(self):
        g = worst_case_family(8)
        with pytest.raises(InstanceTooLargeError):
            solve_exact(g, node_budget=10)

    def test_deficiency_certificate_on_tight_families(self):
        # The corona family's deficiency bound is tight: the result should
        # carry the succinct optimality certificate.
        assert solve_exact(worst_case_family(5)).deficiency_tight
        assert solve_exact(complete_bipartite(3, 3)).deficiency_tight

    def test_deficiency_certificate_absent_when_bound_gaps(self):
        # Tree-plus-chords instances where the bound says "perfect might
        # exist" but the optimum has a jump: no succinct certificate.
        from repro.graphs.generators import random_connected_bipartite

        g = random_connected_bipartite(10, 10, extra_edges=2, seed=1)
        result = solve_exact(g)
        assert result.effective_cost == g.num_edges + 1
        assert not result.deficiency_tight

    def test_ordering_heuristic_never_changes_the_answer(self):
        from repro.core.solvers.exact import exact_search_effort

        # Both arms of the ablation must terminate (same optimum either
        # way; only the effort differs).
        g = worst_case_family(5)
        ordered = exact_search_effort(g, use_ordering=True)
        raw = exact_search_effort(g, use_ordering=False, node_budget=2_000_000)
        assert ordered > 0 and raw > 0
        assert ordered <= raw
