"""Tests for greedy, matching-stitch, and local-search solvers."""

import pytest

from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
    random_connected_bipartite,
)
from repro.core.costs import naive_cost_bounds
from repro.core.families import worst_case_family
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.greedy import solve_greedy
from repro.core.solvers.local_search import improve_tour, polish_scheme
from repro.core.solvers.matching_stitch import solve_matching_stitch
from repro.core.tsp import tour_cost


class TestGreedy:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_and_within_naive_bounds(self, seed):
        g = random_bipartite_gnm(5, 5, 11, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        result = solve_greedy(g)
        result.scheme.validate(g)
        lower, upper = naive_cost_bounds(g)
        assert lower <= result.effective_cost <= upper

    def test_greedy_perfect_on_biclique(self):
        g = complete_bipartite(3, 3)
        assert solve_greedy(g).effective_cost == 9

    def test_greedy_perfect_on_path(self):
        assert solve_greedy(path_graph(7)).effective_cost == 7

    def test_greedy_on_matching(self):
        g = matching_graph(4)
        assert solve_greedy(g).effective_cost == 4


class TestMatchingStitch:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_and_within_naive_bounds(self, seed):
        g = random_bipartite_gnm(5, 5, 11, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        result = solve_matching_stitch(g)
        result.scheme.validate(g)
        lower, upper = naive_cost_bounds(g)
        assert lower <= result.effective_cost <= upper

    def test_fragments_shrink(self):
        g = worst_case_family(5)
        result = solve_matching_stitch(g)
        assert result.fragments_final <= result.fragments_initial

    def test_on_cycle(self):
        g = cycle_graph(8)
        result = solve_matching_stitch(g)
        result.scheme.validate(g)
        assert result.effective_cost <= 10


class TestLocalSearch:
    def test_improve_tour_never_worse(self):
        g = worst_case_family(5)
        edges = g.edges()
        improved = improve_tour(edges)
        assert tour_cost(improved) <= tour_cost(edges)

    def test_improve_tour_preserves_multiset(self):
        g = worst_case_family(4)
        improved = improve_tour(g.edges())
        assert sorted(map(repr, improved)) == sorted(map(repr, g.edges()))

    def test_polish_never_worse(self):
        for seed in range(6):
            g = random_connected_bipartite(5, 5, extra_edges=3, seed=seed)
            base = solve_greedy(g)
            polished = polish_scheme(g, base.scheme)
            polished.scheme.validate(g)
            assert polished.effective_cost <= base.effective_cost
            assert polished.improvement >= 0

    def test_polish_reaches_optimum_on_easy_graph(self):
        g = complete_bipartite(2, 4)
        base = solve_greedy(g)
        polished = polish_scheme(g, base.scheme)
        assert polished.effective_cost == solve_exact(g).effective_cost

    def test_two_opt_fixes_bad_order(self):
        # Deliberately bad order of a path's edges; 2-opt should recover a
        # much better tour.
        g = path_graph(6)
        edges = g.edges()
        shuffled = edges[::2] + edges[1::2]
        improved = improve_tour(shuffled)
        assert tour_cost(improved) <= tour_cost(shuffled)
