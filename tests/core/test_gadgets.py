"""Tests for the diamond gadget (Fig 2) and its certification."""

import itertools

import pytest

from repro.errors import GadgetError
from repro.graphs.hamiltonian import enumerate_hamiltonian_paths
from repro.graphs.simple import Graph
from repro.core.gadgets import DiamondGadget, default_gadget


class TestDefaultGadgetCertificate:
    def test_degree_bound(self):
        gadget = default_gadget()
        cert = gadget.certify()
        assert cert.degree_ok
        for corner in gadget.corners:
            assert gadget.graph.degree(corner) == 2
        for central in gadget.central_nodes():
            assert gadget.graph.degree(central) <= 3

    def test_endpoint_property(self):
        # Every Hamiltonian path of the gadget ends at two corners.
        gadget = default_gadget()
        assert gadget.certify().endpoints_ok

    def test_endpoint_property_by_full_enumeration(self):
        # Independent re-verification via explicit path enumeration.
        gadget = default_gadget()
        corner_set = set(gadget.corners)
        found = 0
        for path in enumerate_hamiltonian_paths(gadget.graph):
            found += 1
            assert path[0] in corner_set and path[-1] in corner_set
        assert found > 0

    def test_corner_connectivity_five_of_six(self):
        # The shipped gadget's documented certificate: exactly one corner
        # pair lacks a Hamiltonian path (and no <=14-node gadget can have
        # all six: see repro.core.gadget_search).
        gadget = default_gadget()
        assert len(gadget.missing_pairs()) == 1

    def test_corner_paths_are_hamiltonian(self):
        gadget = default_gadget()
        for c1, c2 in itertools.combinations(gadget.corners, 2):
            path = gadget.hamiltonian_corner_path(c1, c2)
            if path is None:
                continue
            assert path[0] == c1 and path[-1] == c2
            assert len(path) == gadget.num_nodes
            for a, b in zip(path, path[1:]):
                assert gadget.graph.has_edge(a, b)

    def test_reversed_corner_path_cached(self):
        gadget = default_gadget()
        c1, c2 = gadget.corners[0], gadget.corners[1]
        forward = gadget.hamiltonian_corner_path(c1, c2)
        backward = gadget.hamiltonian_corner_path(c2, c1)
        assert backward == list(reversed(forward))


class TestPickCornerPair:
    def test_pinned_pair_with_path(self):
        gadget = default_gadget()
        for c1, c2 in itertools.combinations(gadget.corners, 2):
            if gadget.hamiltonian_corner_path(c1, c2) is not None:
                assert gadget.pick_corner_pair(c1, c2) == (c1, c2)
                break

    def test_missing_pair_releases_exit(self):
        gadget = default_gadget()
        (c1, c2) = gadget.missing_pairs()[0]
        picked = gadget.pick_corner_pair(c1, c2)
        assert picked[0] == c1
        assert gadget.hamiltonian_corner_path(*picked) is not None

    def test_free_traversal(self):
        gadget = default_gadget()
        c1, c2 = gadget.pick_corner_pair(None, None)
        assert gadget.hamiltonian_corner_path(c1, c2) is not None

    def test_same_corner_both_sides(self):
        gadget = default_gadget()
        corner = gadget.corners[0]
        c1, c2 = gadget.pick_corner_pair(corner, corner)
        assert c1 == corner and c2 != corner

    def test_non_corner_rejected(self):
        gadget = default_gadget()
        central = gadget.central_nodes()[0]
        with pytest.raises(GadgetError):
            gadget.pick_corner_pair(central, None)


class TestConstruction:
    def test_needs_four_corners(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        with pytest.raises(GadgetError):
            DiamondGadget(g, (0, 1, 2))

    def test_corners_must_exist(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        with pytest.raises(GadgetError):
            DiamondGadget(g, (0, 1, 2, 99))

    def test_graph_is_copied(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        gadget = DiamondGadget(g, (0, 1, 2, 3))
        g.add_edge(0, 4)
        assert not gadget.graph.has_edge(0, 4)

    def test_failed_certificate_on_bad_gadget(self):
        # A plain path: corners 0 and 4 connect, but interior "corners"
        # kill most pairs.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        gadget = DiamondGadget(g, (0, 1, 3, 4))
        cert = gadget.certify()
        assert not cert.corner_pairs_ok
        assert not cert.full
