"""Tests for relation file parsing/serialization."""

import pytest

from repro.errors import RelationError
from repro.geometry.interval import Interval
from repro.geometry.primitives import Rectangle
from repro.relations.domains import Domain
from repro.relations.io import dump_relation, format_value, load_relation, parse_value
from repro.relations.relation import Relation


class TestParseValue:
    def test_integers_and_floats(self):
        assert parse_value("42") == 42
        assert isinstance(parse_value("42"), int)
        assert parse_value("3.5") == 3.5
        assert parse_value("-7") == -7

    def test_interval(self):
        assert parse_value("1.5..4") == Interval(1.5, 4.0)
        assert parse_value("-2..3") == Interval(-2.0, 3.0)

    def test_rectangle(self):
        assert parse_value("0,0..4,2.5") == Rectangle(0, 0, 4, 2.5)

    def test_set(self):
        assert parse_value("{a|b|c}") == frozenset({"a", "b", "c"})
        assert parse_value("{}") == frozenset()
        assert parse_value("{ x | y }") == frozenset({"x", "y"})

    def test_string_fallback(self):
        assert parse_value("hello world") == "hello world"

    def test_quoted_string_stays_string(self):
        assert parse_value('"42"') == "42"
        assert parse_value('"1..2"') == "1..2"


class TestFormatRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            42,
            -3.25,
            "plain text",
            "42",  # numeric-looking string must survive
            Interval(0.0, 2.5),
            Rectangle(0.0, 1.0, 3.0, 4.0),
            frozenset({"a", "b"}),
            frozenset(),
        ],
    )
    def test_value_round_trip(self, value):
        assert parse_value(format_value(value)) == value


class TestRelationFiles:
    def test_load_numeric(self):
        relation = load_relation("R", "# comment\n1\n2\n\n3\n")
        assert relation.values == [1, 2, 3]
        assert relation.domain == Domain.NUMERIC

    def test_load_sets(self):
        relation = load_relation("R", "{1|2}\n{2}\n")
        assert relation.domain == Domain.SET

    def test_domain_mismatch_reports_line(self):
        with pytest.raises(RelationError) as excinfo:
            load_relation("R", "1\n{a}\n")
        assert "line 2" in str(excinfo.value)

    def test_dump_load_round_trip(self):
        relation = Relation("R", [Interval(0, 1), Interval(2, 3.5)])
        restored = load_relation("R", dump_relation(relation))
        assert restored.values == relation.values

    def test_dump_header_mentions_domain(self):
        text = dump_relation(Relation("R", [{1, 2}]))
        assert "(set)" in text.splitlines()[0]


class TestCliJoin:
    def test_join_command(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "r.txt"
        right = tmp_path / "s.txt"
        left.write_text("1\n2\n2\n")
        right.write_text("2\n3\n")
        assert main(["join", str(left), str(right)]) == 0
        out = capsys.readouterr().out
        assert "pebbling pi" in out
        assert out.count("2\t2") == 2

    def test_join_intervals(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "r.txt"
        right = tmp_path / "s.txt"
        left.write_text("0..5\n10..12\n")
        right.write_text("4..6\n")
        assert main(["join", str(left), str(right), "--predicate", "overlap"]) == 0
        out = capsys.readouterr().out
        assert "interval-merge" in out
        assert "0.0..5.0\t4.0..6.0" in out

    def test_join_band_with_limit(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "r.txt"
        right = tmp_path / "s.txt"
        left.write_text("1\n2\n3\n")
        right.write_text("1.2\n2.2\n3.2\n")
        assert main(
            ["join", str(left), str(right), "--predicate", "band",
             "--band-width", "0.5", "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "more rows" in out
