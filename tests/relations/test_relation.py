"""Tests for Relation, TupleRef, and domains."""

import pytest

from repro.errors import PredicateError, RelationError
from repro.geometry.primitives import Polygon, Rectangle
from repro.relations.domains import Domain, common_domain, infer_domain
from repro.relations.relation import Relation, TupleRef


class TestDomainInference:
    def test_numeric(self):
        assert infer_domain(3) == Domain.NUMERIC
        assert infer_domain(2.5) == Domain.NUMERIC

    def test_bool_is_not_numeric(self):
        assert infer_domain(True) == Domain.OTHER

    def test_string(self):
        assert infer_domain("abc") == Domain.STRING

    def test_sets(self):
        assert infer_domain({1, 2}) == Domain.SET
        assert infer_domain(frozenset([1])) == Domain.SET

    def test_geometry(self):
        assert infer_domain(Rectangle(0, 0, 1, 1)) == Domain.RECTANGLE
        assert infer_domain(Polygon([(0, 0), (1, 0), (0, 1)])) == Domain.POLYGON

    def test_common_domain(self):
        assert common_domain([1, 2, 3]) == Domain.NUMERIC
        assert common_domain([]) == Domain.OTHER

    def test_mixed_column_rejected(self):
        with pytest.raises(PredicateError):
            common_domain([1, "a"])

    def test_capabilities(self):
        assert Domain.RECTANGLE.supports_overlap
        assert not Domain.NUMERIC.supports_overlap
        assert Domain.SET.supports_containment
        assert not Domain.STRING.supports_containment
        assert Domain.SET.supports_equality


class TestRelation:
    def test_basic(self):
        r = Relation("R", [1, 2, 2])
        assert len(r) == 3
        assert r.domain == Domain.NUMERIC
        assert r.values == [1, 2, 2]

    def test_name_required(self):
        with pytest.raises(RelationError):
            Relation("")

    def test_multiset_semantics(self):
        r = Relation("R", [5, 5, 5])
        assert len(r.refs()) == 3
        assert r.multiplicity(5) == 3

    def test_refs_and_values(self):
        r = Relation("R", ["a", "b"])
        refs = r.refs()
        assert refs == [TupleRef("R", 0), TupleRef("R", 1)]
        assert r.value(refs[1]) == "b"

    def test_value_wrong_relation(self):
        r = Relation("R", [1])
        with pytest.raises(RelationError):
            r.value(TupleRef("S", 0))

    def test_value_out_of_range(self):
        r = Relation("R", [1])
        with pytest.raises(RelationError):
            r.value(TupleRef("R", 5))

    def test_append_returns_ref(self):
        r = Relation("R", [1])
        ref = r.append(9)
        assert ref == TupleRef("R", 1)
        assert r.value(ref) == 9

    def test_append_domain_enforced(self):
        r = Relation("R", [1])
        with pytest.raises(RelationError):
            r.append("string")

    def test_append_to_empty_sets_domain(self):
        r = Relation("R")
        r.append({1})
        assert r.domain == Domain.SET

    def test_items_iteration(self):
        r = Relation("R", [10, 20])
        items = list(r.items())
        assert items[0] == (TupleRef("R", 0), 10)
        assert items[1] == (TupleRef("R", 1), 20)

    def test_distinct_values(self):
        r = Relation("R", [3, 1, 3, 2, 1])
        assert r.distinct_values() == [3, 1, 2]

    def test_tuple_ref_repr(self):
        assert repr(TupleRef("R", 3)) == "R[3]"

    def test_tuple_refs_order(self):
        assert TupleRef("R", 0) < TupleRef("R", 1)


class TestCatalog:
    def test_create_and_get(self):
        from repro.relations.catalog import Catalog

        cat = Catalog()
        cat.create("R", [1, 2])
        assert cat.get("R").values == [1, 2]
        assert "R" in cat
        assert len(cat) == 1

    def test_duplicate_rejected(self):
        from repro.relations.catalog import Catalog

        cat = Catalog()
        cat.create("R")
        with pytest.raises(RelationError):
            cat.create("R")
        with pytest.raises(RelationError):
            cat.register(Relation("R"))

    def test_drop(self):
        from repro.relations.catalog import Catalog

        cat = Catalog()
        cat.create("R")
        cat.drop("R")
        assert "R" not in cat
        with pytest.raises(RelationError):
            cat.drop("R")

    def test_missing_get(self):
        from repro.relations.catalog import Catalog

        with pytest.raises(RelationError):
            Catalog().get("ghost")

    def test_names_sorted(self):
        from repro.relations.catalog import Catalog

        cat = Catalog()
        cat.create("S")
        cat.create("R")
        assert cat.names() == ["R", "S"]
