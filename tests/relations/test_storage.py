"""Tests for the paged-storage simulator (the [6] page-fetch lineage)."""

import pytest

from repro.errors import RelationError
from repro.relations.relation import Relation, TupleRef
from repro.relations.storage import (
    PagedRelation,
    PageRef,
    page_connection_graph,
    page_fetches_of_scheme,
    schedule_report,
)
from repro.core.solvers.registry import solve


class TestPagedRelation:
    def test_page_count(self):
        r = Relation("R", list(range(10)))
        paged = PagedRelation(r, page_size=3)
        assert paged.num_pages == 4

    def test_page_of(self):
        r = Relation("R", list(range(10)))
        paged = PagedRelation(r, page_size=3)
        assert paged.page_of(TupleRef("R", 0)) == PageRef("R", 0)
        assert paged.page_of(TupleRef("R", 9)) == PageRef("R", 3)

    def test_page_of_wrong_relation(self):
        paged = PagedRelation(Relation("R", [1]), page_size=1)
        with pytest.raises(RelationError):
            paged.page_of(TupleRef("S", 0))

    def test_tuples_on_last_partial_page(self):
        r = Relation("R", list(range(7)))
        paged = PagedRelation(r, page_size=3)
        assert len(paged.tuples_on(PageRef("R", 2))) == 1

    def test_invalid_page_size(self):
        with pytest.raises(RelationError):
            PagedRelation(Relation("R", [1]), page_size=0)


class TestPageGraph:
    def test_equality_page_graph(self):
        # Keys arranged so page 0 of R joins only page 0 of S.
        r = Relation("R", [1, 1, 2, 2])
        s = Relation("S", [1, 1, 2, 2])
        graph = page_connection_graph(
            PagedRelation(r, 2), PagedRelation(s, 2), lambda a, b: a == b
        )
        assert graph.num_edges == 2
        assert graph.has_edge(PageRef("R", 0), PageRef("S", 0))
        assert not graph.has_edge(PageRef("R", 0), PageRef("S", 1))

    def test_dense_page_graph(self):
        r = Relation("R", [1, 1, 1, 1])
        s = Relation("S", [1, 1])
        graph = page_connection_graph(
            PagedRelation(r, 2), PagedRelation(s, 2), lambda a, b: a == b
        )
        assert graph.num_edges == 2  # 2 R-pages x 1 S-page

    def test_fetch_accounting(self):
        r = Relation("R", [1, 1, 2, 2])
        s = Relation("S", [1, 1, 2, 2])
        graph = page_connection_graph(
            PagedRelation(r, 2), PagedRelation(s, 2), lambda a, b: a == b
        )
        result = solve(graph)
        report = schedule_report(graph, result.scheme)
        assert report.page_pairs == 2
        assert report.fetches == page_fetches_of_scheme(result.scheme)
        # Two disjoint page pairs: 4 fetches (two cold starts).
        assert report.fetches == 4
        assert report.overhead == 2.0
