"""Shared fixtures: a zoo of small graphs used across the suite."""

from __future__ import annotations

import pytest

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def path4() -> BipartiteGraph:
    """A path with 4 edges."""
    return path_graph(4)


@pytest.fixture
def k23() -> BipartiteGraph:
    """The complete bipartite graph K_{2,3}."""
    return complete_bipartite(2, 3)


@pytest.fixture
def cycle6() -> BipartiteGraph:
    """A 6-edge cycle."""
    return cycle_graph(6)


@pytest.fixture
def matching5() -> BipartiteGraph:
    """A matching with 5 edges (5 components)."""
    return matching_graph(5)


@pytest.fixture
def star4() -> BipartiteGraph:
    """The star K_{1,4}."""
    return star_graph(4)


@pytest.fixture
def tiny_zoo(path4, k23, cycle6, matching5, star4) -> list[BipartiteGraph]:
    """A varied collection of small graphs for sweep-style tests."""
    return [path4, k23, cycle6, matching5, star4]
