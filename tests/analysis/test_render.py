"""Tests for ASCII rendering."""

from repro.analysis.render import (
    render_bipartite,
    render_graph,
    render_partitioning,
    render_scheme,
)
from repro.graphs.generators import complete_bipartite, path_graph, union_of_bicliques
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.joins.partitioning import hash_partitioning


class TestRenderBipartite:
    def test_complete_graph_all_hash(self):
        text = render_bipartite(complete_bipartite(2, 2))
        assert text.count("#") == 4
        assert "." not in text

    def test_sparse_graph_mixes_marks(self):
        g = path_graph(3)  # 2x2 grid with one missing edge
        text = render_bipartite(g)
        assert "#" in text and "." in text

    def test_wide_graph_truncated(self):
        g = complete_bipartite(1, 60)
        text = render_bipartite(g, max_width=30)
        assert "..." in text


class TestRenderGraph:
    def test_lists_degrees(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        text = render_graph(g)
        assert "b (deg 2)" in text
        assert "a (deg 1)" in text


class TestRenderScheme:
    def test_slide_and_totals(self):
        g = path_graph(2)
        s = PebblingScheme.from_edge_order(g, [("u0", "v0"), ("u1", "v0")])
        text = render_scheme(g, s)
        assert "place both" in text
        assert "slide (+1)" in text
        assert "pi_hat=3, jumps=0" in text

    def test_jump_annotated(self):
        from repro.graphs.generators import matching_graph

        g = matching_graph(2)
        s = PebblingScheme.from_edge_order(g, g.edges())
        text = render_scheme(g, s)
        assert "jump  (+2)" in text
        assert "jumps=1" in text


class TestRenderPartitioning:
    def test_grid_marks(self):
        g = union_of_bicliques([(2, 2), (1, 1)])
        part = hash_partitioning(g, 2, 2)
        text = render_partitioning(g, part)
        assert text.count("#") == part.cost(g)
        assert "active cells:" in text
