"""Tests for the SVG renderer (structure-level assertions)."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import join_graph_svg, spatial_instance_svg
from repro.geometry.realize import (
    realize_bipartite_with_combs,
    realize_worst_case_family,
)
from repro.graphs.generators import complete_bipartite, random_bipartite_gnm
from repro.core.families import worst_case_family
from repro.core.solvers.equijoin import solve_equijoin
from repro.relations.relation import Relation


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSpatialSvg:
    def test_rectangle_instance(self):
        left, right = realize_worst_case_family(4)
        svg = spatial_instance_svg(left, right)
        root = _parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # background + 5 left + 4 right rectangles
        assert len(rects) == 1 + len(left) + len(right)

    def test_comb_polygon_instance(self):
        target = random_bipartite_gnm(3, 3, 5, seed=1)
        left, right = realize_bipartite_with_combs(target)
        svg = spatial_instance_svg(left, right)
        root = _parse(svg)
        polygons = [e for e in root.iter() if e.tag.endswith("polygon")]
        assert len(polygons) == len(left) + len(right)

    def test_coordinates_within_canvas(self):
        left, right = realize_worst_case_family(3)
        svg = spatial_instance_svg(left, right, width=300.0)
        root = _parse(svg)
        width = float(root.attrib["width"])
        for rect in root.iter():
            if rect.tag.endswith("rect") and "x" in rect.attrib:
                assert 0 <= float(rect.attrib["x"]) <= width

    def test_rejects_non_spatial(self):
        with pytest.raises(TypeError):
            spatial_instance_svg(Relation("R", [1]), Relation("S", [2]))


class TestJoinGraphSvg:
    def test_vertices_and_edges_drawn(self):
        g = complete_bipartite(2, 3)
        root = _parse(join_graph_svg(g))
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        lines = [e for e in root.iter() if e.tag.endswith("line")]
        assert len(circles) == 5
        assert len(lines) == 6

    def test_scheme_annotations(self):
        g = complete_bipartite(2, 2)
        scheme = solve_equijoin(g)
        root = _parse(join_graph_svg(g, scheme))
        labels = [
            e.text for e in root.iter() if e.tag.endswith("text") and e.text.isdigit()
        ]
        assert sorted(int(t) for t in labels) == [1, 2, 3, 4]

    def test_worst_case_family_renders(self):
        g = worst_case_family(5)
        svg = join_graph_svg(g)
        assert svg.count("<line") == g.num_edges
