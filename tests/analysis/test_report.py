"""Tests for the report tables and the experiment drivers."""

import pytest

from repro.analysis.report import Table, format_series, ratio


class TestTable:
    def test_render_basic(self):
        t = Table(["a", "bb"])
        t.add_row([1, 2])
        text = t.render()
        assert "a" in text and "bb" in text
        assert "1" in text

    def test_title(self):
        t = Table(["x"], title="My title")
        t.add_row([5])
        assert t.render().splitlines()[0] == "My title"

    def test_column_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([1.23456789])
        assert "1.235" in t.render()

    def test_alignment(self):
        t = Table(["name", "v"])
        t.add_row(["x", 1])
        t.add_row(["longer", 2])
        lines = t.render().splitlines()
        assert len(lines[2]) >= len("longer")

    def test_len(self):
        t = Table(["a"])
        assert len(t) == 0
        t.add_row([1])
        assert len(t) == 1

    def test_render_latex(self):
        t = Table(["n", "pi_exact"], title="My table")
        t.add_row([3, 7])
        latex = t.render_latex()
        assert latex.startswith("% My table")
        assert "\\begin{tabular}{ll}" in latex
        assert "pi\\_exact" in latex  # underscore escaped
        assert "3 & 7 \\\\" in latex
        assert latex.endswith("\\end{tabular}")


class TestHelpers:
    def test_format_series(self):
        assert format_series("s", [(1, 2), (3, 4)]) == "s: 1->2 3->4"

    def test_ratio(self):
        assert ratio(4, 2) == 2.0
        assert ratio(0, 0) == 1.0
        assert ratio(1, 0) == float("inf")


class TestExperimentDrivers:
    """Smoke-level runs of every driver with tiny parameters."""

    def test_bounds(self):
        from repro.analysis.experiments import bounds_experiment

        table = bounds_experiment(seeds=3)
        assert len(table) == 3

    def test_worst_case(self):
        from repro.analysis.experiments import worst_case_experiment

        table = worst_case_experiment(max_n=4)
        assert len(table) == 4

    def test_equijoin(self):
        from repro.analysis.experiments import equijoin_perfect_experiment

        table = equijoin_perfect_experiment(block_counts=(2, 4))
        assert len(table) == 2

    def test_dfs(self):
        from repro.analysis.experiments import dfs_approx_experiment

        table = dfs_approx_experiment(seeds=2, size=4)
        assert len(table) == 2

    def test_hardness(self):
        from repro.analysis.experiments import hardness_scaling_experiment

        table = hardness_scaling_experiment(sizes=(5, 6), node_budget=50_000)
        assert len(table) == 2

    def test_perfect_iff_ham(self):
        from repro.analysis.experiments import perfect_iff_hamiltonian_experiment

        table = perfect_iff_hamiltonian_experiment(seeds=2)
        assert len(table) == 2

    def test_reductions(self):
        from repro.analysis.experiments import reduction_experiment

        diamond, incidence = reduction_experiment(seeds=2)
        assert len(diamond) == 2
        assert len(incidence) >= 1

    def test_approx_ladder(self):
        from repro.analysis.experiments import approx_ladder_experiment

        table = approx_ladder_experiment(seeds=2)
        assert len(table) == 2

    def test_join_algorithms(self):
        from repro.analysis.experiments import join_algorithm_experiment

        table = join_algorithm_experiment()
        assert len(table) >= 4
