"""Tests for line graphs, cross-checked against networkx as an oracle."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
    star_graph,
)
from repro.graphs.line_graph import (
    good_degree,
    is_claw_free,
    line_graph,
    tsp_weight,
)
from repro.graphs.simple import Graph


class TestLineGraphStructure:
    def test_path_line_graph_is_path(self):
        lg = line_graph(path_graph(4))
        assert lg.num_vertices == 4
        assert lg.num_edges == 3
        degrees = sorted(lg.degree(v) for v in lg.vertices)
        assert degrees == [1, 1, 2, 2]

    def test_star_line_graph_is_clique(self):
        lg = line_graph(star_graph(4))
        assert lg.num_vertices == 4
        assert lg.num_edges == 6  # K4

    def test_cycle_line_graph_is_cycle(self):
        lg = line_graph(cycle_graph(6))
        assert lg.num_vertices == 6
        assert all(lg.degree(v) == 2 for v in lg.vertices)

    def test_matching_line_graph_has_no_edges(self):
        lg = line_graph(matching_graph(4))
        assert lg.num_vertices == 4
        assert lg.num_edges == 0

    def test_complete_bipartite_line_graph_size(self):
        # L(K_{k,l}) has kl nodes; edges: kl(k+l-2)/2 (rook's graph).
        k, l = 3, 4
        lg = line_graph(complete_bipartite(k, l))
        assert lg.num_vertices == k * l
        assert lg.num_edges == k * l * (k + l - 2) // 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_line_graph(self, seed):
        g = random_bipartite_gnm(4, 4, 8, seed=seed)
        ours = line_graph(g)
        nx_graph = nx.Graph(g.edges())
        theirs = nx.line_graph(nx_graph)
        assert ours.num_vertices == theirs.number_of_nodes()
        assert ours.num_edges == theirs.number_of_edges()


class TestClawFree:
    @pytest.mark.parametrize("seed", range(8))
    def test_line_graphs_are_claw_free(self, seed):
        g = random_bipartite_gnm(4, 5, 10, seed=seed)
        assert is_claw_free(line_graph(g))

    def test_star_itself_is_not_claw_free(self):
        claw = Graph(edges=[("c", "a"), ("c", "b"), ("c", "d")])
        assert not is_claw_free(claw)

    def test_claw_with_extra_edge_is_claw_free(self):
        g = Graph(edges=[("c", "a"), ("c", "b"), ("c", "d"), ("a", "b")])
        # a,b adjacent; any 3 neighbors of c include an adjacent pair.
        assert is_claw_free(g)


class TestWeights:
    def test_tsp_weight_good_and_bad(self):
        g = path_graph(3)
        lg = line_graph(g)
        edges = g.edges()
        # Consecutive path edges share a vertex: weight 1.
        sharing = [
            (e1, e2)
            for e1 in edges
            for e2 in edges
            if e1 != e2 and set(e1) & set(e2)
        ]
        e1, e2 = sharing[0]
        assert tsp_weight(lg, e1, e2) == 1
        disjoint = [
            (e1, e2)
            for e1 in edges
            for e2 in edges
            if e1 != e2 and not set(e1) & set(e2)
        ]
        e1, e2 = disjoint[0]
        assert tsp_weight(lg, e1, e2) == 2

    def test_good_degree_equals_line_degree(self):
        g = star_graph(3)
        lg = line_graph(g)
        for node in lg.vertices:
            assert good_degree(lg, node) == lg.degree(node)
