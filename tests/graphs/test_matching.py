"""Tests for matchings: Hopcroft–Karp (vs networkx oracle) and greedy."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
)
from repro.graphs.line_graph import line_graph
from repro.graphs.matching import (
    greedy_maximal_matching,
    hopcroft_karp,
    improve_matching,
    maximum_matching_size,
)
from repro.graphs.simple import Graph


class TestHopcroftKarp:
    def test_perfect_matching_on_matching_graph(self):
        g = matching_graph(5)
        assert maximum_matching_size(g) == 5

    def test_complete_bipartite(self):
        assert maximum_matching_size(complete_bipartite(3, 5)) == 3

    def test_symmetric_result(self):
        g = complete_bipartite(2, 2)
        matching = hopcroft_karp(g)
        for u, v in matching.items():
            assert matching[v] == u

    def test_matching_edges_exist(self):
        g = random_bipartite_gnm(5, 5, 12, seed=1)
        matching = hopcroft_karp(g)
        for u, v in matching.items():
            assert g.has_edge(u, v)

    @pytest.mark.parametrize("seed", range(8))
    def test_size_matches_networkx(self, seed):
        g = random_bipartite_gnm(5, 6, 14, seed=seed)
        ours = maximum_matching_size(g)
        nx_graph = nx.Graph(g.edges())
        nx_graph.add_nodes_from(g.left + g.right)
        theirs = len(
            nx.bipartite.maximum_matching(nx_graph, top_nodes=g.left)
        ) // 2
        assert ours == theirs

    def test_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert hopcroft_karp(BipartiteGraph()) == {}


class TestGreedyMatching:
    def test_greedy_is_matching(self):
        g = line_graph(cycle_graph(8))
        matching = greedy_maximal_matching(g)
        used = [v for pair in matching for v in pair]
        assert len(used) == len(set(used))

    def test_greedy_is_maximal(self):
        g = line_graph(complete_bipartite(3, 3))
        matching = greedy_maximal_matching(g)
        matched = {v for pair in matching for v in pair}
        for u, v in g.edges():
            assert u in matched or v in matched

    def test_greedy_on_edgeless_graph(self):
        assert greedy_maximal_matching(Graph(vertices=["a", "b"])) == []


class TestImproveMatching:
    def test_never_shrinks(self):
        g = line_graph(path_graph(6))
        greedy = greedy_maximal_matching(g)
        improved = improve_matching(g, greedy)
        assert len(improved) >= len(greedy)

    def test_improved_still_a_matching(self):
        g = line_graph(random_bipartite_gnm(4, 4, 9, seed=3))
        improved = improve_matching(g, greedy_maximal_matching(g))
        used = [v for pair in improved for v in pair]
        assert len(used) == len(set(used))
        for u, v in improved:
            assert g.has_edge(u, v)

    @pytest.mark.parametrize("seed", range(5))
    def test_reaches_maximum_on_bipartite(self, seed):
        # Without blossoms the augmenting search is exact on bipartite graphs.
        g = random_bipartite_gnm(5, 5, 11, seed=seed)
        plain = g.to_graph()
        improved = improve_matching(plain, greedy_maximal_matching(plain))
        assert len(improved) == maximum_matching_size(g)
