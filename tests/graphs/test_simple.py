"""Tests for the general undirected Graph."""

import pytest

from repro.errors import EdgeError, GraphError, VertexError
from repro.graphs.simple import Graph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.edges() == []

    def test_vertices_and_edges_from_init(self):
        g = Graph(vertices=["a"], edges=[("b", "c")])
        assert set(g.vertices) == {"a", "b", "c"}
        assert g.num_edges == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("x", "y")
        assert g.has_vertex("x") and g.has_vertex("y")

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge("x", "y")
        g.add_edge("y", "x")
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(EdgeError):
            g.add_edge("x", "x")

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("v")
        g.add_vertex("v")
        assert g.num_vertices == 1


class TestRemoval:
    def test_remove_edge(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_edge("b", "c")

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(EdgeError):
            g.remove_edge("a", "c")

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        g.remove_vertex("b")
        assert g.num_edges == 1
        assert g.has_edge("c", "a")

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexError):
            Graph().remove_vertex("ghost")


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph(edges=[("a", "b"), ("a", "c")])
        assert g.degree("a") == 2
        assert g.neighbors("a") == {"b", "c"}
        assert g.degree("b") == 1

    def test_neighbors_returns_copy(self):
        g = Graph(edges=[("a", "b")])
        g.neighbors("a").add("zzz")
        assert g.neighbors("a") == {"b"}

    def test_degree_of_missing_vertex_raises(self):
        with pytest.raises(VertexError):
            Graph().degree("ghost")

    def test_max_degree(self):
        g = Graph(edges=[("a", "b"), ("a", "c"), ("a", "d")])
        assert g.max_degree() == 3
        assert Graph().max_degree() == 0

    def test_isolated_vertices(self):
        g = Graph(vertices=["lonely"], edges=[("a", "b")])
        assert g.isolated_vertices() == ["lonely"]

    def test_edges_canonical_and_sorted(self):
        g = Graph(edges=[("b", "a"), ("c", "a")])
        assert g.edges() == [("a", "b"), ("a", "c")]

    def test_contains_iter_len(self):
        g = Graph(edges=[("a", "b")])
        assert "a" in g
        assert sorted(g) == ["a", "b"]
        assert len(g) == 2


class TestDerived:
    def test_copy_is_independent(self):
        g = Graph(edges=[("a", "b")])
        clone = g.copy()
        clone.add_edge("b", "c")
        assert g.num_edges == 1
        assert clone.num_edges == 2

    def test_subgraph_induced(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        sub = g.subgraph(["a", "b"])
        assert sub.num_edges == 1
        assert sub.has_edge("a", "b")

    def test_subgraph_unknown_vertex_raises(self):
        with pytest.raises(VertexError):
            Graph(edges=[("a", "b")]).subgraph(["a", "ghost"])

    def test_without_isolated_vertices(self):
        g = Graph(vertices=["x"], edges=[("a", "b")])
        assert set(g.without_isolated_vertices().vertices) == {"a", "b"}

    def test_relabeled(self):
        g = Graph(edges=[("a", "b")])
        relabeled = g.relabeled({"a": 1, "b": 2})
        assert relabeled.has_edge(1, 2)

    def test_relabeled_requires_full_injective_mapping(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(GraphError):
            g.relabeled({"a": 1})
        with pytest.raises(GraphError):
            g.relabeled({"a": 1, "b": 1})

    def test_complement_weight(self):
        g = Graph(edges=[("a", "b")], vertices=["c"])
        assert g.complement_weight("a", "b") == 1
        assert g.complement_weight("a", "c") == 2

    def test_complement_weight_same_vertex_raises(self):
        g = Graph(vertices=["a"])
        with pytest.raises(EdgeError):
            g.complement_weight("a", "a")

    def test_equality_by_structure(self):
        g1 = Graph(edges=[("a", "b")])
        g2 = Graph(edges=[("b", "a")])
        assert g1 == g2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())


class TestNormalizeEdge:
    def test_orderable_labels(self):
        assert normalize_edge(2, 1) == (1, 2)

    def test_unorderable_labels_fall_back_to_repr(self):
        edge1 = normalize_edge("a", 1)
        edge2 = normalize_edge(1, "a")
        assert edge1 == edge2

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            normalize_edge("a", "a")
