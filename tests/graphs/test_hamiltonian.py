"""Tests for Hamiltonian-path search (DP and enumeration engines)."""

import itertools

import pytest

from repro.errors import InstanceTooLargeError
from repro.graphs.generators import complete_bipartite, path_graph, star_graph
from repro.graphs.line_graph import line_graph
from repro.graphs.hamiltonian import (
    enumerate_hamiltonian_paths,
    find_hamiltonian_path,
    hamiltonian_path_endpoints,
    has_hamiltonian_path,
)
from repro.graphs.simple import Graph


def _assert_valid_ham_path(graph: Graph, path):
    assert path is not None
    assert len(path) == graph.num_vertices
    assert len(set(path)) == len(path)
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b)


class TestFindHamiltonianPath:
    def test_path_graph(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        _assert_valid_ham_path(g, find_hamiltonian_path(g))

    def test_star_has_no_ham_path(self):
        g = star_graph(3).to_graph()  # K_{1,3}
        assert find_hamiltonian_path(g) is None
        assert not has_hamiltonian_path(g)

    def test_clique(self):
        g = Graph(edges=itertools.combinations(range(5), 2))
        _assert_valid_ham_path(g, find_hamiltonian_path(g))

    def test_pinned_start(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        path = find_hamiltonian_path(g, start="a")
        assert path == ["a", "b", "c"]

    def test_pinned_both_ends(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        assert find_hamiltonian_path(g, start="a", end="c") is not None
        assert find_hamiltonian_path(g, start="a", end="b") is None

    def test_pinned_unknown_vertex(self):
        g = Graph(edges=[("a", "b")])
        assert find_hamiltonian_path(g, start="ghost") is None

    def test_empty_and_singleton(self):
        assert find_hamiltonian_path(Graph()) == []
        g = Graph(vertices=["x"])
        assert find_hamiltonian_path(g) == ["x"]
        assert find_hamiltonian_path(g, start="x", end="x") == ["x"]

    def test_disconnected_has_none(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert find_hamiltonian_path(g) is None

    def test_size_limit(self):
        g = Graph(edges=[(i, i + 1) for i in range(25)])
        with pytest.raises(InstanceTooLargeError):
            find_hamiltonian_path(g)

    def test_line_graph_of_biclique_traceable(self):
        # Lemma 3.2: bicliques pebble perfectly, so L(K_{k,l}) is traceable.
        lg = line_graph(complete_bipartite(3, 3))
        _assert_valid_ham_path(lg, find_hamiltonian_path(lg))


class TestEndpoints:
    def test_path_graph_endpoints(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert hamiltonian_path_endpoints(g) == {"a", "d"}

    def test_cycle_every_vertex_is_endpoint(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert hamiltonian_path_endpoints(g) == {0, 1, 2, 3}

    def test_no_ham_path_empty_endpoints(self):
        assert hamiltonian_path_endpoints(star_graph(3).to_graph()) == set()

    def test_endpoints_consistent_with_enumeration(self):
        g = line_graph(path_graph(5))
        from_dp = hamiltonian_path_endpoints(g)
        from_enum = set()
        for path in enumerate_hamiltonian_paths(g):
            from_enum.add(path[0])
            from_enum.add(path[-1])
        assert from_dp == from_enum


class TestEnumeration:
    def test_counts_paths_on_k4(self):
        g = Graph(edges=itertools.combinations(range(4), 2))
        paths = list(enumerate_hamiltonian_paths(g))
        # K4 has 4!/2 = 12 undirected Hamiltonian paths.
        assert len(paths) == 12

    def test_each_enumerated_path_valid(self):
        g = line_graph(complete_bipartite(2, 2))
        for path in enumerate_hamiltonian_paths(g):
            _assert_valid_ham_path(g, path)

    def test_pinned_start_enumeration(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        paths = list(enumerate_hamiltonian_paths(g, start="a"))
        assert all(p[0] == "a" for p in paths)
        assert len(paths) == 2
