"""Tests for the graph generators."""

import pytest

from repro.errors import GraphError
from repro.graphs.components import betti_number, is_connected
from repro.graphs.generators import (
    all_small_bipartite_graphs,
    complete_bipartite,
    cycle_graph,
    double_star,
    grid_graph,
    incidence_graph,
    matching_graph,
    path_graph,
    random_bipartite_gnm,
    random_bipartite_gnp,
    random_connected_bipartite,
    random_tsp12_graph,
    spider_graph,
    star_graph,
    union_of_bicliques,
)
from repro.graphs.simple import Graph


class TestDeterministicGenerators:
    def test_complete_bipartite_shape(self):
        g = complete_bipartite(3, 4)
        assert len(g.left) == 3 and len(g.right) == 4
        assert g.num_edges == 12
        assert g.is_complete_bipartite()

    def test_complete_bipartite_negative(self):
        with pytest.raises(GraphError):
            complete_bipartite(-1, 2)

    def test_matching(self):
        g = matching_graph(3)
        assert g.is_matching()
        assert betti_number(g) == 3

    def test_path_degrees(self):
        g = path_graph(5)
        degrees = sorted(g.degree(v) for v in list(g.left) + list(g.right))
        assert degrees == [1, 1, 2, 2, 2, 2]

    def test_path_needs_an_edge(self):
        with pytest.raises(GraphError):
            path_graph(0)

    def test_cycle_regular(self):
        g = cycle_graph(8)
        assert all(g.degree(v) == 2 for v in list(g.left) + list(g.right))
        assert g.num_edges == 8

    def test_cycle_rejects_odd(self):
        with pytest.raises(GraphError):
            cycle_graph(5)

    def test_star(self):
        g = star_graph(4)
        assert g.degree("u0") == 4
        assert g.num_edges == 4

    def test_double_star(self):
        g = double_star(2, 3)
        assert g.num_edges == 6
        assert is_connected(g)

    def test_union_of_bicliques(self):
        g = union_of_bicliques([(2, 2), (3, 1)])
        assert g.num_edges == 7
        assert betti_number(g) == 2

    def test_spider(self):
        g = spider_graph(4)
        assert g.num_edges == 8
        assert g.degree("v0") == 2  # star leaf + pendant

    def test_grid(self):
        g = grid_graph(3, 3)
        assert g.num_edges == 12
        assert is_connected(g)


class TestRandomGenerators:
    def test_gnm_exact_edge_count(self):
        g = random_bipartite_gnm(5, 5, 12, seed=0)
        assert g.num_edges == 12

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            random_bipartite_gnm(2, 2, 5)

    def test_gnm_deterministic(self):
        g1 = random_bipartite_gnm(4, 4, 7, seed=42)
        g2 = random_bipartite_gnm(4, 4, 7, seed=42)
        assert g1 == g2

    def test_gnp_bounds(self):
        g = random_bipartite_gnp(4, 4, 1.0, seed=0)
        assert g.num_edges == 16
        g = random_bipartite_gnp(4, 4, 0.0, seed=0)
        assert g.num_edges == 0

    def test_gnp_invalid_p(self):
        with pytest.raises(GraphError):
            random_bipartite_gnp(2, 2, 1.5)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_connected_is_connected(self, seed):
        g = random_connected_bipartite(5, 4, extra_edges=2, seed=seed)
        assert is_connected(g)
        assert g.num_edges >= 8  # spanning tree size

    def test_random_tsp12_degree_bound(self):
        g = random_tsp12_graph(20, max_degree=3, seed=1)
        assert g.max_degree() <= 3

    def test_random_tsp12_invalid_degree(self):
        with pytest.raises(GraphError):
            random_tsp12_graph(5, max_degree=0)


class TestIncidenceGraph:
    def test_incidence_structure(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        inc = incidence_graph(g)
        # Each source edge contributes 2 incidences.
        assert inc.num_edges == 4
        assert len(inc.right) == 2
        # Edge-vertices have degree exactly 2.
        for e in inc.right:
            assert inc.degree(e) == 2

    def test_incidence_vertex_degree_preserved(self):
        g = Graph(edges=[("a", "b"), ("a", "c"), ("a", "d")])
        inc = incidence_graph(g)
        assert inc.degree("a") == 3


class TestExhaustiveEnumeration:
    def test_counts(self):
        graphs = list(all_small_bipartite_graphs(2, 2, min_edges=0))
        assert len(graphs) == 16
        graphs = list(all_small_bipartite_graphs(2, 2, min_edges=1))
        assert len(graphs) == 15

    def test_each_has_declared_sides(self):
        for g in all_small_bipartite_graphs(2, 2, min_edges=3):
            assert len(g.left) == 2 and len(g.right) == 2
            assert g.num_edges >= 3
