"""Tests for components, Betti numbers, and disjoint unions."""

import pytest

from repro.errors import GraphError
from repro.graphs.bipartite import from_edges
from repro.graphs.components import (
    betti_number,
    component_vertex_sets,
    connected_components,
    disjoint_union,
    disjoint_union_many,
    is_connected,
)
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    path_graph,
    union_of_bicliques,
)
from repro.graphs.simple import Graph


class TestComponents:
    def test_single_component(self, path4):
        assert len(component_vertex_sets(path4)) == 1
        assert is_connected(path4)

    def test_matching_has_m_components(self):
        assert len(component_vertex_sets(matching_graph(5))) == 5

    def test_components_partition_vertices(self, k23):
        sets = component_vertex_sets(k23)
        assert set().union(*sets) == set(k23.left) | set(k23.right)

    def test_connected_components_are_subgraphs(self):
        g = union_of_bicliques([(2, 2), (1, 3)])
        comps = connected_components(g)
        assert sorted(c.num_edges for c in comps) == [3, 4]
        assert all(c.is_complete_bipartite() for c in comps)

    def test_works_on_plain_graph(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert len(component_vertex_sets(g)) == 2
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        assert is_connected(Graph())


class TestBettiNumber:
    def test_connected_graph(self, k23):
        assert betti_number(k23) == 1

    def test_matching(self):
        assert betti_number(matching_graph(4)) == 4

    def test_ignores_isolated_by_default(self):
        g = from_edges([("u", "v")])
        g.add_left_vertex("iso")
        assert betti_number(g) == 1
        assert betti_number(g, ignore_isolated=False) == 2


class TestDisjointUnion:
    def test_tags_vertices(self):
        u = disjoint_union(path_graph(2), path_graph(3))
        assert u.num_edges == 5
        assert betti_number(u) == 2

    def test_same_graph_twice(self):
        g = complete_bipartite(2, 2)
        u = disjoint_union(g, g)
        assert u.num_edges == 8
        assert betti_number(u) == 2

    def test_many(self):
        u = disjoint_union_many([path_graph(1)] * 3)
        assert u.num_edges == 3
        assert betti_number(u) == 3

    def test_many_empty_raises(self):
        with pytest.raises(GraphError):
            disjoint_union_many([])
