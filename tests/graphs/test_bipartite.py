"""Tests for BipartiteGraph (the join graph representation)."""

import pytest

from repro.errors import EdgeError, GraphError, VertexError
from repro.graphs.bipartite import BipartiteGraph, from_edges
from repro.graphs.generators import complete_bipartite, matching_graph


class TestConstruction:
    def test_empty(self):
        g = BipartiteGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_sides_disjoint(self):
        g = BipartiteGraph(left=["x"])
        with pytest.raises(GraphError):
            g.add_right_vertex("x")

    def test_add_edge_normalizes_orientation(self):
        g = BipartiteGraph(left=["u"], right=["v"])
        g.add_edge("v", "u")  # supplied backwards
        assert g.edges() == [("u", "v")]

    def test_add_edge_same_side_rejected(self):
        g = BipartiteGraph(left=["u1", "u2"])
        with pytest.raises(GraphError):
            g.add_edge("u1", "u2")

    def test_add_edge_creates_vertices(self):
        g = BipartiteGraph()
        g.add_edge("u", "v")
        assert g.side_of("u") == "left"
        assert g.side_of("v") == "right"

    def test_from_edges(self):
        g = from_edges([("u1", "v1"), ("u2", "v1")])
        assert g.num_edges == 2
        assert set(g.left) == {"u1", "u2"}

    def test_from_edges_side_conflict(self):
        with pytest.raises(GraphError):
            from_edges([("a", "b"), ("b", "a")])


class TestQueries:
    def test_neighbors_both_sides(self):
        g = from_edges([("u", "v"), ("u", "w")])
        assert g.neighbors("u") == {"v", "w"}
        assert g.neighbors("v") == {"u"}

    def test_degree(self):
        g = complete_bipartite(2, 3)
        assert g.degree("u0") == 3
        assert g.degree("v0") == 2

    def test_side_of_missing_raises(self):
        with pytest.raises(VertexError):
            BipartiteGraph().side_of("ghost")

    def test_has_edge_both_orientations(self):
        g = from_edges([("u", "v")])
        assert g.has_edge("u", "v")
        assert g.has_edge("v", "u")
        assert not g.has_edge("u", "ghost")

    def test_orient_edge(self):
        g = from_edges([("u", "v")])
        assert g.orient_edge("v", "u") == ("u", "v")
        with pytest.raises(EdgeError):
            g.orient_edge("u", "ghost")

    def test_isolated_vertices(self):
        g = BipartiteGraph(left=["u", "lonely"], right=["v"])
        g.add_edge("u", "v")
        assert g.isolated_vertices() == ["lonely"]

    def test_num_edges_counts_result_tuples(self):
        assert complete_bipartite(3, 4).num_edges == 12


class TestStructureTests:
    def test_complete_bipartite_true(self):
        assert complete_bipartite(2, 3).is_complete_bipartite()

    def test_complete_bipartite_false(self):
        g = complete_bipartite(2, 2)
        g.remove_edge("u0", "v1")
        assert not g.is_complete_bipartite()

    def test_is_matching(self):
        assert matching_graph(4).is_matching()
        assert not complete_bipartite(2, 2).is_matching()


class TestDerived:
    def test_subgraph_preserves_sides(self):
        g = complete_bipartite(2, 2)
        sub = g.subgraph(["u0", "v0", "v1"])
        assert set(sub.left) == {"u0"}
        assert set(sub.right) == {"v0", "v1"}
        assert sub.num_edges == 2

    def test_without_isolated(self):
        g = BipartiteGraph(left=["u", "iso"], right=["v"])
        g.add_edge("u", "v")
        out = g.without_isolated_vertices()
        assert not out.has_vertex("iso")

    def test_to_graph_forgets_sides(self):
        g = from_edges([("u", "v")])
        plain = g.to_graph()
        assert plain.has_edge("u", "v")
        assert plain.num_vertices == 2

    def test_copy_independent(self):
        g = from_edges([("u", "v")])
        clone = g.copy()
        clone.add_edge("u", "w")
        assert g.num_edges == 1

    def test_relabeled(self):
        g = from_edges([("u", "v")])
        out = g.relabeled({"u": "a", "v": "b"})
        assert out.has_edge("a", "b")
        assert out.side_of("a") == "left"

    def test_relabeled_validates(self):
        g = from_edges([("u", "v")])
        with pytest.raises(GraphError):
            g.relabeled({"u": "a"})

    def test_remove_edge(self):
        g = from_edges([("u", "v")])
        g.remove_edge("v", "u")
        assert g.num_edges == 0
        with pytest.raises(EdgeError):
            g.remove_edge("u", "v")

    def test_equality(self):
        assert from_edges([("u", "v")]) == from_edges([("u", "v")])
        assert from_edges([("u", "v")]) != from_edges([("u", "w")])

    def test_iter_and_contains(self):
        g = from_edges([("u", "v")])
        assert "u" in g and "v" in g
        assert set(g) == {"u", "v"}
