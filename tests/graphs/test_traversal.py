"""Tests for traversal, DFS trees, and bipartiteness checks."""

import pytest

from repro.errors import GraphError, NotBipartiteError, VertexError
from repro.graphs.generators import complete_bipartite, path_graph
from repro.graphs.simple import Graph
from repro.graphs.traversal import (
    RootedTree,
    as_bipartite,
    bfs_order,
    dfs_order,
    dfs_tree,
    two_coloring,
)


class TestOrders:
    def test_bfs_covers_component(self, path4):
        order = bfs_order(path4, "u0")
        assert len(order) == 5
        assert order[0] == "u0"

    def test_dfs_covers_component(self, path4):
        order = dfs_order(path4, "u0")
        assert len(order) == 5

    def test_bfs_respects_distance(self):
        g = Graph(edges=[("r", "a"), ("r", "b"), ("a", "x")])
        order = bfs_order(g, "r")
        assert order.index("x") > order.index("a")
        assert order.index("x") > order.index("b")

    def test_missing_start_raises(self):
        with pytest.raises(VertexError):
            bfs_order(Graph(), "ghost")
        with pytest.raises(VertexError):
            dfs_order(Graph(), "ghost")

    def test_only_reachable_vertices(self):
        g = Graph(edges=[("a", "b"), ("c", "d")])
        assert set(bfs_order(g, "a")) == {"a", "b"}


class TestDfsTree:
    def test_tree_spans_component(self, k23):
        tree = dfs_tree(k23, "u0")
        assert len(tree) == 5
        assert tree.root == "u0"

    def test_parent_child_consistency(self, k23):
        tree = dfs_tree(k23, "u0")
        for node in tree.nodes():
            for child in tree.children(node):
                assert tree.parent(child) == node

    def test_tree_edges_are_graph_edges(self, cycle6):
        tree = dfs_tree(cycle6, "u0")
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is not None:
                assert cycle6.has_edge(parent, node)

    def test_subtree_sizes(self):
        g = path_graph(3)
        tree = dfs_tree(g, "u0")
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == 4
        assert min(sizes.values()) == 1

    def test_depth(self):
        g = path_graph(3)
        tree = dfs_tree(g, "u0")
        depths = sorted(tree.depth(n) for n in tree.nodes())
        assert depths == [0, 1, 2, 3]


class TestRootedTreeSurgery:
    def _chain(self) -> RootedTree:
        tree = RootedTree("r")
        tree.add_child("r", "a")
        tree.add_child("a", "b")
        tree.add_child("r", "c")
        return tree

    def test_add_duplicate_child_raises(self):
        tree = self._chain()
        with pytest.raises(GraphError):
            tree.add_child("r", "a")

    def test_leaves(self):
        tree = self._chain()
        assert set(tree.leaves()) == {"b", "c"}

    def test_reattach_moves_subtree(self):
        tree = self._chain()
        tree.reattach("a", "c")
        assert tree.parent("a") == "c"
        assert set(tree.subtree_nodes("c")) == {"c", "a", "b"}

    def test_reattach_into_own_subtree_rejected(self):
        tree = self._chain()
        with pytest.raises(GraphError):
            tree.reattach("a", "b")

    def test_reattach_root_rejected(self):
        tree = self._chain()
        with pytest.raises(GraphError):
            tree.reattach("r", "a")

    def test_remove_subtree(self):
        tree = self._chain()
        removed = tree.remove_subtree("a")
        assert set(removed) == {"a", "b"}
        assert set(tree.nodes()) == {"r", "c"}

    def test_remove_root_clears(self):
        tree = self._chain()
        tree.remove_subtree("r")
        assert len(tree) == 0

    def test_max_children(self):
        assert self._chain().max_children() == 2


class TestTwoColoring:
    def test_bipartite_graph(self):
        g = complete_bipartite(2, 3).to_graph()
        left, right = two_coloring(g)
        assert len(left) + len(right) == 5
        for u, v in g.edges():
            assert (u in left) != (v in left)

    def test_odd_cycle_rejected(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(NotBipartiteError):
            two_coloring(g)

    def test_as_bipartite_round_trip(self):
        original = complete_bipartite(2, 2)
        recovered = as_bipartite(original.to_graph())
        assert recovered.num_edges == original.num_edges
        assert recovered.num_vertices == original.num_vertices
