"""Tests for graph serialization round trips."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators import complete_bipartite, random_bipartite_gnm
from repro.graphs.io import dump_bipartite, dump_graph, load_bipartite, load_graph
from repro.graphs.simple import Graph


class TestBipartiteRoundTrip:
    def test_round_trip(self):
        g = complete_bipartite(2, 3)
        restored = load_bipartite(dump_bipartite(g))
        assert set(restored.left) == set(g.left)
        assert set(restored.right) == set(g.right)
        assert set(restored.edges()) == set(g.edges())

    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip_random(self, seed):
        g = random_bipartite_gnm(4, 4, 8, seed=seed)
        restored = load_bipartite(dump_bipartite(g))
        assert restored == g

    def test_isolated_vertices_survive(self):
        from repro.graphs.bipartite import BipartiteGraph

        g = BipartiteGraph(left=["u", "iso"], right=["v"])
        g.add_edge("u", "v")
        restored = load_bipartite(dump_bipartite(g))
        assert restored.has_vertex("iso")

    def test_comments_and_blanks_ignored(self):
        text = "# hi\n\nL u\nR v\nE u v\n"
        g = load_bipartite(text)
        assert g.num_edges == 1

    def test_bad_tag_raises(self):
        with pytest.raises(GraphError):
            load_bipartite("X u v\n")

    def test_bad_edge_arity_raises(self):
        with pytest.raises(GraphError):
            load_bipartite("E u\n")

    def test_whitespace_names_rejected(self):
        from repro.graphs.bipartite import BipartiteGraph

        g = BipartiteGraph(left=[(0, "u0")], right=["v0"])
        g.add_edge((0, "u0"), "v0")
        with pytest.raises(GraphError):
            dump_bipartite(g)


class TestGraphRoundTrip:
    def test_round_trip(self):
        g = Graph(vertices=["iso"], edges=[("a", "b"), ("b", "c")])
        restored = load_graph(dump_graph(g))
        assert set(restored.vertices) == {"iso", "a", "b", "c"}
        assert restored.num_edges == 2

    def test_bad_tag(self):
        with pytest.raises(GraphError):
            load_graph("Q a\n")
