"""Fault-injection harness tests: deterministic, scoped, seed-replayable."""

import pytest

from repro.errors import InjectedFaultError
from repro.runtime import (
    Budget,
    FakeClock,
    FaultPlan,
    SkewedClock,
    active_plan,
    inject,
    maybe_fail,
)


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            plan = FaultPlan(seed=seed, rates={"*": 0.5})
            return [plan.should_fail("site.a") for _ in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_rate_zero_never_fails(self):
        plan = FaultPlan(seed=0, rates={"io.load_relation": 0.0})
        assert not any(plan.should_fail("io.load_relation") for _ in range(100))

    def test_rate_one_always_fails(self):
        plan = FaultPlan(seed=0, rates={"*": 1.0})
        assert all(plan.should_fail("storage.page_graph") for _ in range(10))

    def test_specific_site_overrides_wildcard(self):
        plan = FaultPlan(seed=0, rates={"*": 1.0, "io.dump_relation": 0.0})
        assert not plan.should_fail("io.dump_relation")
        assert plan.should_fail("io.load_relation")

    def test_unlisted_site_without_wildcard_never_fails(self):
        plan = FaultPlan(seed=0, rates={"io.load_relation": 1.0})
        assert not plan.should_fail("storage.schedule")

    def test_starve_divides_caps(self):
        plan = FaultPlan(seed=0, starvation=4)
        budget = plan.starve(Budget(node_budget=100, memo_cap=8))
        assert budget.node_budget == 25
        assert budget.memo_cap == 2

    def test_starve_floors_at_one(self):
        plan = FaultPlan(seed=0, starvation=1000)
        budget = plan.starve(Budget(node_budget=3))
        assert budget.node_budget == 1

    def test_skewed_clock_only_drifts_forward(self):
        plan = FaultPlan(seed=3, clock_skew=0.5)
        clock = plan.skewed(FakeClock(step=1.0))
        assert isinstance(clock, SkewedClock)
        readings = [clock.now() for _ in range(20)]
        assert readings == sorted(readings)
        # Drift is cumulative: later readings run ahead of the inner clock.
        assert readings[-1] >= 20.0


class TestInjection:
    def test_no_active_plan_is_noop(self):
        assert active_plan() is None
        maybe_fail("io.load_relation")  # must not raise

    def test_inject_scopes_the_plan(self):
        plan = FaultPlan(seed=0, rates={"*": 1.0})
        with inject(plan):
            assert active_plan() is plan
            with pytest.raises(InjectedFaultError) as exc:
                maybe_fail("storage.page_graph")
            assert "storage.page_graph" in str(exc.value)
            assert "seed=0" in str(exc.value)
        assert active_plan() is None
        maybe_fail("storage.page_graph")

    def test_injection_sites_fire_in_io(self):
        from repro.relations.io import dump_relation, load_relation
        from repro.relations.relation import Relation

        rel = Relation("r", [1, 2, 3])
        with inject(FaultPlan(seed=0, rates={"io.dump_relation": 1.0})):
            with pytest.raises(InjectedFaultError):
                dump_relation(rel)
        text = dump_relation(rel)
        with inject(FaultPlan(seed=0, rates={"io.load_relation": 1.0})):
            with pytest.raises(InjectedFaultError):
                load_relation("r", text)
        assert list(load_relation("r", text).values) == [1, 2, 3]
