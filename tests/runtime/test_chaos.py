"""Chaos suite: under injected faults the CLI surfaces clean errors
(never a raw traceback) and the bench harness records structured
failures in a valid v2 payload."""

import json
import pathlib
import sys

import pytest

from repro.cli import main
from repro.runtime import FaultPlan, inject

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

CHAOS_SEEDS = [0, 1, 2]

RELATION_A = "# relation R (numeric)\n1\n2\n3\n"
RELATION_B = "# relation S (numeric)\n2\n3\n4\n"


def _load_checker():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_bench_json
    finally:
        sys.path.pop(0)
    return check_bench_json


@pytest.fixture
def relation_files(tmp_path):
    left = tmp_path / "left.rel"
    right = tmp_path / "right.rel"
    left.write_text(RELATION_A)
    right.write_text(RELATION_B)
    return str(left), str(right)


class TestCliNeverTracebacks:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_join_under_total_io_failure(self, seed, relation_files, capsys):
        left, right = relation_files
        with inject(FaultPlan(seed=seed, rates={"*": 1.0})):
            code = main(["join", left, right])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_join_under_partial_faults_errors_cleanly_or_succeeds(
        self, seed, relation_files, capsys
    ):
        left, right = relation_files
        with inject(FaultPlan(seed=seed, rates={"*": 0.5})):
            code = main(["join", left, right])
        captured = capsys.readouterr()
        assert code in (0, 1)
        if code == 1:
            assert "error:" in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    def test_missing_file_is_a_clean_error(self, capsys):
        code = main(["join", "/nonexistent/left.rel", "/nonexistent/right.rel"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert "Traceback" not in captured.err


class TestBenchChaos:
    def test_bench_records_failures_and_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario",
                "storage-paging",
                "--runs-dir",
                str(tmp_path / "runs"),
                "--out-dir",
                str(tmp_path),
                "--fault-seed",
                "0",
                "--fault-rate",
                "1.0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "scenario(s) failed after retry" in captured.err
        assert "Traceback" not in captured.err

        (bench_path,) = tmp_path.glob("BENCH_*.json")
        payload = json.loads(bench_path.read_text())
        assert payload["schema"] == "repro-bench/v2"
        assert payload["failed"] == 1
        (scenario,) = payload["scenarios"]
        assert scenario["status"] == "failed"
        assert scenario["attempts"] == 2
        assert "InjectedFaultError" in scenario["error"]

        checker = _load_checker()
        assert checker.validate_file(bench_path) == []

    def test_bench_without_faults_is_unaffected_by_chaos_flags(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario",
                "storage-paging",
                "--runs-dir",
                str(tmp_path / "runs"),
                "--out-dir",
                str(tmp_path),
                "--fault-seed",
                "0",
                "--fault-rate",
                "0.0",
            ]
        )
        assert code == 0
        (bench_path,) = tmp_path.glob("BENCH_*.json")
        payload = json.loads(bench_path.read_text())
        assert payload["failed"] == 0
        (scenario,) = payload["scenarios"]
        assert scenario["status"] == "ok"
        assert scenario["error"] is None

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_bench_chaos_is_deterministic_per_seed(self, seed, tmp_path, capsys):
        def run(label):
            out = tmp_path / label
            out.mkdir()
            code = main(
                [
                    "bench",
                    "--smoke",
                    "--scenario",
                    "storage-paging",
                    "--runs-dir",
                    str(out / "runs"),
                    "--out-dir",
                    str(out),
                    "--fault-seed",
                    str(seed),
                    "--fault-rate",
                    "0.3",
                ]
            )
            capsys.readouterr()
            (bench_path,) = out.glob("BENCH_*.json")
            payload = json.loads(bench_path.read_text())
            (scenario,) = payload["scenarios"]
            return code, scenario["status"], scenario["attempts"]

        assert run("first") == run("second")
