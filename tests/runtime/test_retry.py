"""The shared retry policy and circuit breaker (docs/ROBUSTNESS.md)."""

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.runtime import Budget, CircuitBreaker, FakeClock, RetryPolicy, use_budget
from repro.runtime.retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    GIVE_UP_ATTEMPTS,
    GIVE_UP_DEADLINE,
)


class TestBackoffCurve:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert [policy.backoff(k) for k in range(4)] == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=1.0, jitter=0.5, seed=42
        )
        a = policy.controller("t", budget=None)
        b = policy.controller("t", budget=None)
        delays_a = [a.next_delay() for _ in range(5)]
        delays_b = [b.next_delay() for _ in range(5)]
        assert delays_a == delays_b  # same seed, same jitter draws
        for delay in delays_a:
            assert 0.1 <= delay <= 0.15  # within [base, base * (1+jitter)]

    def test_hint_is_a_floor_not_a_discount(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        controller = policy.controller("t", budget=None)
        assert controller.next_delay(hint_ms=250) == 0.25
        # A hint below the computed backoff leaves the backoff in charge.
        controller2 = RetryPolicy(base_delay=0.5, jitter=0.0).controller(
            "t", budget=None
        )
        assert controller2.next_delay(hint_ms=1) == 0.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestAttemptsBound:
    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        controller = policy.controller("t", budget=None)
        assert controller.next_delay() is not None
        assert controller.next_delay() is not None
        assert controller.next_delay() is None
        assert controller.gave_up == GIVE_UP_ATTEMPTS

    def test_max_attempts_one_never_retries(self):
        controller = RetryPolicy(max_attempts=1).controller("t", budget=None)
        assert controller.next_delay() is None


class TestBudgetIntegration:
    def test_gives_up_when_delay_outlives_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=0.05, clock=clock).start()
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, jitter=0.0)
        controller = policy.controller("t", budget=budget)
        assert controller.next_delay() is None  # 0.1s sleep > 0.05s left
        assert controller.gave_up == GIVE_UP_DEADLINE

    def test_retries_while_deadline_has_room(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, jitter=0.0)
        controller = policy.controller("t", budget=budget)
        assert controller.next_delay() == pytest.approx(0.1)

    def test_exhausted_budget_stops_retries_immediately(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock).start()
        clock.advance(2.0)
        controller = RetryPolicy(max_attempts=10).controller("t", budget=budget)
        assert controller.next_delay() is None
        assert controller.gave_up == GIVE_UP_DEADLINE

    def test_ambient_budget_is_picked_up(self):
        clock = FakeClock()
        budget = Budget(deadline=0.01, clock=clock).start()
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0)
        with use_budget(budget):
            controller = policy.controller("t")
        assert controller.budget is budget
        assert controller.next_delay() is None

    def test_no_budget_means_no_deadline_bound(self):
        controller = RetryPolicy(max_attempts=3, jitter=0.0).controller(
            "t", budget=None
        )
        assert controller.next_delay() is not None


class TestCallHelper:
    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        result = RetryPolicy(max_attempts=5, jitter=0.0).call(
            flaky,
            site="test.flaky",
            should_retry=lambda exc: isinstance(exc, OSError),
            budget=None,
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_non_retryable_raises_immediately(self):
        def bad():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(
                bad,
                site="test.bad",
                should_retry=lambda exc: isinstance(exc, OSError),
                budget=None,
                sleep=lambda _s: None,
            )

    def test_give_up_reraises_last_exception(self):
        def always():
            raise OSError("still down")

        with pytest.raises(OSError):
            RetryPolicy(max_attempts=2, jitter=0.0).call(
                always,
                site="test.down",
                should_retry=lambda exc: True,
                budget=None,
                sleep=lambda _s: None,
            )


class TestObservability:
    def setup_method(self):
        obs_events.reset()
        obs_events.enable()
        obs_metrics.reset()
        obs_metrics.enable()

    def teardown_method(self):
        obs_events.disable()
        obs_events.reset()
        obs_metrics.disable()
        obs_metrics.reset()

    def test_attempt_and_give_up_events(self):
        controller = RetryPolicy(max_attempts=2, jitter=0.0).controller(
            "test.site", budget=None
        )
        controller.next_delay(reason="boom")
        controller.next_delay(reason="boom")
        names = [e.name for e in obs_events.events()]
        assert names == ["retry.attempt", "retry.give_up"]
        attempt, give_up = obs_events.events()
        assert attempt.attrs["site"] == "test.site"
        assert attempt.attrs["attempt"] == 1
        assert give_up.attrs["why"] == GIVE_UP_ATTEMPTS
        assert obs_metrics.counter("runtime.retry.attempts") == 1
        assert obs_metrics.counter("runtime.retry.give_ups") == 1

    def test_breaker_open_counter(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert obs_metrics.counter("runtime.breaker.opens") == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # no second probe

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # failed probe: straight back to open
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_retry_in_counts_down_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=2.0, clock=clock)
        assert breaker.retry_in() == 0.0
        breaker.record_failure()
        assert breaker.retry_in() == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_in() == pytest.approx(0.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)
