"""Property-based anytime contract: every budgeted result is a valid,
replayable scheme whose effective cost respects the reported lower bound.

This is the universally-quantified form of the acceptance criterion:
random graph x random budget x any method -> the result validates,
replays to a won game, and never undercuts its own provenance bound.
"""

from hypothesis import given, settings, strategies as st

from repro.core.game import PebbleGame
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.solvers.registry import solve
from repro.graphs.bipartite import BipartiteGraph
from repro.runtime import Budget, FakeClock, STATUSES

# Methods that accept arbitrary bipartite graphs (equijoin requires
# complete-bipartite components, so it is exercised elsewhere).
GENERAL_METHODS = ("auto", "exact", "dfs+polish", "greedy", "anneal", "matching")


@st.composite
def bipartite_graphs(draw, max_left=4, max_right=4, min_edges=2):
    n_left = draw(st.integers(1, max_left))
    n_right = draw(st.integers(1, max_right))
    cells = [(i, j) for i in range(n_left) for j in range(n_right)]
    chosen = draw(
        st.lists(
            st.sampled_from(cells),
            min_size=min(min_edges, len(cells)),
            max_size=len(cells),
        )
    )
    graph = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    for i, j in set(chosen):
        graph.add_edge(f"u{i}", f"v{j}")
    return graph.without_isolated_vertices()


@st.composite
def budgets(draw):
    """Budgets ranging from starved to effectively unlimited."""
    node_budget = draw(st.one_of(st.none(), st.integers(1, 200)))
    deadline = draw(st.one_of(st.none(), st.floats(0.001, 0.2)))
    memo_cap = draw(st.one_of(st.none(), st.integers(1, 10_000)))
    step = draw(st.sampled_from([0.0, 0.001, 0.01]))
    return Budget(
        deadline=deadline,
        node_budget=node_budget,
        memo_cap=memo_cap,
        clock=FakeClock(step=step),
    )


COMMON = settings(max_examples=60, deadline=None)


@COMMON
@given(bipartite_graphs(), budgets(), st.sampled_from(GENERAL_METHODS))
def test_anytime_result_is_valid_and_bounded(graph, budget, method):
    if graph.num_edges == 0:
        return
    result = solve(graph, method, budget=budget)

    # 1. The scheme is a valid pebbling scheme for the instance.
    result.scheme.validate(graph)

    # 2. It replays to a won game with the advertised cost.
    game = PebbleGame(graph)
    game.replay(result.scheme)
    assert game.is_won()
    assert game.moves_used == result.raw_cost

    # 3. The status vocabulary is closed.
    assert result.status in STATUSES

    # 4. The effective cost never undercuts the reported lower bound.
    assert result.effective_cost >= effective_cost_lower_bound(graph)
    if result.provenance is not None and result.provenance.lower_bound is not None:
        assert result.effective_cost >= result.provenance.lower_bound


@COMMON
@given(bipartite_graphs(), budgets())
def test_anytime_result_is_replayable_deterministically(graph, budget):
    if graph.num_edges == 0:
        return
    first = solve(graph, "auto", budget=budget)
    rerun = Budget(
        deadline=budget.deadline,
        node_budget=budget.node_budget,
        memo_cap=budget.memo_cap,
        clock=FakeClock(step=budget.clock.step),
    )
    second = solve(graph, "auto", budget=rerun)
    assert first.scheme.configurations == second.scheme.configurations
    assert first.effective_cost == second.effective_cost
    assert first.status == second.status
