"""Budget/clock unit tests: the cooperative budget primitive itself."""

import pytest

from repro.errors import BudgetExhaustedError
from repro.runtime import (
    Budget,
    FakeClock,
    MonotonicClock,
    REASON_DEADLINE,
    REASON_MEMO,
    REASON_NODES,
    STATUS_BUDGET_EXHAUSTED,
    STATUS_TIMED_OUT,
    current_budget,
    use_budget,
)


class TestFakeClock:
    def test_auto_advances_by_step(self):
        clock = FakeClock(start=10.0, step=0.5)
        assert clock.now() == 10.5
        assert clock.now() == 11.0
        assert clock.calls == 2

    def test_manual_advance(self):
        clock = FakeClock()
        clock.advance(3.0)
        assert clock.now() == 3.0

    def test_monotonic_clock_is_monotonic(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


class TestBudget:
    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        with pytest.raises(ValueError):
            Budget(node_budget=-1)
        with pytest.raises(ValueError):
            Budget(memo_cap=-1)

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        for _ in range(1000):
            budget.checkpoint()
        assert not budget.exhausted
        assert budget.status() == "complete"

    def test_node_budget_trips_checkpoint(self):
        budget = Budget(node_budget=5)
        for _ in range(5):
            budget.checkpoint()
        with pytest.raises(BudgetExhaustedError) as exc:
            budget.checkpoint()
        assert exc.value.reason == REASON_NODES
        assert budget.status() == STATUS_BUDGET_EXHAUSTED

    def test_deadline_trips_via_fake_clock(self):
        budget = Budget(deadline=0.05, clock=FakeClock(step=0.02))
        with pytest.raises(BudgetExhaustedError) as exc:
            for _ in range(100):
                budget.checkpoint()
        assert exc.value.reason == REASON_DEADLINE
        assert budget.status() == STATUS_TIMED_OUT

    def test_exhaustion_is_sticky(self):
        budget = Budget(node_budget=1)
        budget.checkpoint()
        with pytest.raises(BudgetExhaustedError):
            budget.checkpoint()
        with pytest.raises(BudgetExhaustedError):
            budget.checkpoint()
        assert budget.exhausted

    def test_poll_returns_bool_instead_of_raising(self):
        budget = Budget(node_budget=2)
        assert budget.poll() is False
        assert budget.poll() is False
        assert budget.poll() is True
        assert budget.poll() is True

    def test_memo_cap(self):
        budget = Budget(memo_cap=100)
        budget.charge_memo(60)
        with pytest.raises(BudgetExhaustedError) as exc:
            budget.charge_memo(60)
        assert exc.value.reason == REASON_MEMO

    def test_check_interval_batches_clock_reads(self):
        clock = FakeClock(step=0.0)
        budget = Budget(deadline=10.0, clock=clock, check_interval=10)
        calls_at_start = clock.calls
        for _ in range(100):
            budget.checkpoint()
        # start() reads once; then one read per 10 charges.
        assert clock.calls - calls_at_start <= 12

    def test_elapsed_uses_injected_clock(self):
        clock = FakeClock(step=1.0)
        budget = Budget(deadline=100.0, clock=clock)
        budget.start()
        budget.checkpoint()
        assert budget.elapsed() >= 1.0

    def test_under_pressure(self):
        clock = FakeClock(step=0.0)
        budget = Budget(deadline=1.0, clock=clock, check_interval=1)
        budget.start()
        assert not budget.under_pressure()
        clock.advance(0.95)
        assert budget.under_pressure()


class TestAmbientBudget:
    def test_stack_scoping(self):
        assert current_budget() is None
        outer = Budget(node_budget=10)
        inner = Budget(node_budget=5)
        with use_budget(outer):
            assert current_budget() is outer
            with use_budget(inner):
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_none_is_transparent(self):
        outer = Budget()
        with use_budget(outer):
            with use_budget(None):
                assert current_budget() is outer

    def test_stack_unwinds_on_exception(self):
        budget = Budget()
        with pytest.raises(RuntimeError):
            with use_budget(budget):
                raise RuntimeError("boom")
        assert current_budget() is None
