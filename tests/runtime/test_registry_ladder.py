"""Degradation-ladder tests on the solve registry.

Covers the acceptance criteria: budgeted ``exact`` on the worst-case
spider family returns a valid anytime scheme within the approximation
bound; ``auto`` never leaks :class:`InstanceTooLargeError`; and
non-tripping budgets leave results bit-identical to unbudgeted runs.
"""

import pytest

from repro.core.families import worst_case_family
from repro.core.game import PebbleGame
from repro.core.solvers.registry import METHODS, solve
from repro.errors import InstanceTooLargeError
from repro.graphs.generators import random_bipartite_gnm, random_connected_bipartite
from repro.runtime import (
    Budget,
    FakeClock,
    STATUS_BUDGET_EXHAUSTED,
    STATUS_TIMED_OUT,
    use_budget,
)


class TestAcceptanceDeadline:
    def test_exact_on_g12_times_out_with_valid_scheme(self):
        """solve(G_12, "exact", deadline=0.05s) with a fake clock must
        come back within one checkpoint interval holding a valid scheme
        at most 1.25x the edge count."""
        g = worst_case_family(12)
        m = g.num_edges
        clock = FakeClock(step=0.01)
        result = solve(g, "exact", deadline=0.05, clock=clock)
        assert result.status == STATUS_TIMED_OUT
        assert not result.optimal
        result.scheme.validate(g)
        assert result.effective_cost <= (5 * m) // 4
        assert result.provenance is not None
        assert "exact->dfs+polish" in result.provenance.degradations

    def test_timed_out_scheme_replays(self):
        g = worst_case_family(12)
        result = solve(g, "exact", deadline=0.05, clock=FakeClock(step=0.01))
        game = PebbleGame(g)
        game.replay(result.scheme)
        assert game.is_won()


class TestAutoNeverLeaks:
    """Satellite regression: `auto` must not leak InstanceTooLargeError."""

    def test_preflight_routes_large_instances_to_heuristics(self):
        g = random_connected_bipartite(9, 9, extra_edges=3, seed=4)
        result = solve(g, "auto", node_budget=10)
        result.scheme.validate(g)
        assert result.method != "exact"

    def test_midsearch_exhaustion_degrades_instead_of_raising(self):
        # Force exact to be attempted (edge limit above m) with a budget
        # too small to finish: the ladder must hand back dfs+polish.
        g = random_connected_bipartite(6, 6, extra_edges=2, seed=0)
        result = solve(
            g, "auto", node_budget=10, exact_edge_limit=g.num_edges + 1
        )
        result.scheme.validate(g)
        assert result.method == "dfs+polish"
        assert result.status == STATUS_BUDGET_EXHAUSTED
        assert result.provenance is not None
        assert "exact->dfs+polish" in result.provenance.degradations

    def test_cooperative_node_budget_degrades_too(self):
        g = random_connected_bipartite(6, 6, extra_edges=2, seed=0)
        result = solve(
            g,
            "auto",
            budget=Budget(node_budget=10),
            exact_edge_limit=g.num_edges + 1,
        )
        result.scheme.validate(g)
        assert result.status == STATUS_BUDGET_EXHAUSTED

    @pytest.mark.parametrize("seed", range(6))
    def test_auto_with_tiny_budgets_always_returns(self, seed):
        g = random_bipartite_gnm(5, 5, 11, seed=seed).without_isolated_vertices()
        if g.num_edges < 2:
            pytest.skip("degenerate draw")
        try:
            result = solve(g, "auto", budget=Budget(node_budget=3))
        except InstanceTooLargeError:  # pragma: no cover - the regression
            pytest.fail("auto leaked InstanceTooLargeError")
        result.scheme.validate(g)

    def test_explicit_exact_without_budget_still_raises(self):
        """The legacy contract survives: an explicit unbudgeted exact call
        with a hard node limit raises rather than silently degrading."""
        g = random_connected_bipartite(8, 8, extra_edges=3, seed=2)
        with pytest.raises(InstanceTooLargeError):
            solve(g, "exact", node_budget=5)


class TestDeterminism:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_non_tripping_budget_changes_nothing(self, method):
        if method == "equijoin":
            from repro.graphs.generators import complete_bipartite

            g = complete_bipartite(3, 3)
        else:
            g = random_connected_bipartite(4, 4, extra_edges=1, seed=3)
        plain = solve(g, method)
        budgeted = solve(g, method, budget=Budget(deadline=1e9, node_budget=10**9))
        assert budgeted.scheme.configurations == plain.scheme.configurations
        assert budgeted.effective_cost == plain.effective_cost
        assert budgeted.status in ("optimal", "complete")

    def test_ambient_budget_is_picked_up(self):
        g = worst_case_family(8)
        with use_budget(Budget(deadline=0.05, clock=FakeClock(step=0.01))):
            result = solve(g, "exact")
        assert result.status == STATUS_TIMED_OUT
        result.scheme.validate(g)

    def test_same_seed_same_timed_out_result(self):
        g = worst_case_family(10)

        def run():
            return solve(g, "exact", deadline=0.05, clock=FakeClock(step=0.01))

        first, second = run(), run()
        assert first.scheme.configurations == second.scheme.configurations
        assert first.effective_cost == second.effective_cost
        assert first.status == second.status
