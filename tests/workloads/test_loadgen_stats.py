"""Degenerate-window statistics: quantiles and throughput stay total.

An all-error cold wave records zero latencies; a wave that dies before
the clock moves records zero elapsed time.  Every reducer on
:class:`~repro.workloads.loadgen.LoadResult` must return well-defined,
JSON-renderable values on those windows instead of raising — this module
pins that contract for the empty, one-sample, and all-error cases.
"""

import json
import math

import pytest

from repro.workloads.loadgen import LoadResult, _quantile


def _result(**overrides) -> LoadResult:
    base = dict(
        requests=0,
        ok=0,
        errors=0,
        rejected=0,
        degraded=0,
        elapsed_seconds=0.0,
    )
    base.update(overrides)
    return LoadResult(**base)


class TestQuantile:
    def test_empty_window_is_zero(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert _quantile([], q) == 0.0

    def test_one_sample_is_that_sample_for_every_q(self):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert _quantile([42.5], q) == 42.5

    def test_out_of_range_q_clamps_instead_of_indexing_out(self):
        samples = [10.0, 20.0, 30.0]
        assert _quantile(samples, -1.0) == 10.0
        assert _quantile(samples, 2.0) == 30.0

    def test_nan_q_clamps(self):
        assert _quantile([10.0, 20.0], math.nan) == 20.0

    def test_two_samples_median_is_lower(self):
        assert _quantile([10.0, 20.0], 0.5) == 10.0


class TestDegenerateWindows:
    def test_empty_result_all_stats_defined(self):
        result = _result()
        assert result.throughput_rps == 0.0
        assert result.latency_quantile(0.5) == 0.0
        assert result.per_op() == {}
        payload = result.as_dict()
        assert payload["p50_ms"] == 0.0
        assert payload["p99_ms"] == 0.0
        assert payload["throughput_rps"] == 0.0
        json.dumps(payload)  # must stay renderable

    def test_one_sample_window(self):
        result = _result(
            requests=1,
            ok=1,
            elapsed_seconds=2.0,
            latencies_ms=[7.0],
            op_latencies_ms={"solve": [7.0]},
        )
        assert result.throughput_rps == 0.5
        for q in (0.0, 0.5, 1.0):
            assert result.latency_quantile(q) == 7.0
        assert result.per_op()["solve"] == {
            "requests": 1,
            "p50_ms": 7.0,
            "p99_ms": 7.0,
        }

    def test_all_error_cold_wave(self):
        # Errors record no latencies: the latency stream is empty even
        # though requests were made and wall time passed.
        result = _result(
            requests=5,
            errors=5,
            elapsed_seconds=1.25,
            statuses={"error": 5},
            error_codes={"boom": 5},
        )
        payload = result.as_dict()
        assert result.throughput_rps == pytest.approx(4.0)
        assert payload["p50_ms"] == 0.0
        assert payload["p99_ms"] == 0.0
        assert payload["per_op"] == {}
        json.dumps(payload)

    def test_zero_elapsed_never_divides(self):
        result = _result(requests=3, ok=3, elapsed_seconds=0.0)
        assert result.throughput_rps == 0.0
        result = _result(requests=3, ok=3, elapsed_seconds=-1.0)
        assert result.throughput_rps == 0.0
