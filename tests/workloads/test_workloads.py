"""Tests for workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.relations.domains import Domain
from repro.workloads.equijoin import fk_pk_workload, zipf_equijoin_workload
from repro.workloads.sets import market_basket_workload, zipf_sets_workload
from repro.workloads.spatial import (
    clustered_rectangles_workload,
    map_overlay_workload,
    uniform_rectangles_workload,
)


class TestEquijoinWorkloads:
    def test_sizes_and_domain(self):
        r, s = zipf_equijoin_workload(20, 30, key_universe=10, seed=1)
        assert len(r) == 20 and len(s) == 30
        assert r.domain == Domain.NUMERIC

    def test_deterministic(self):
        a = zipf_equijoin_workload(10, 10, seed=7)[0].values
        b = zipf_equijoin_workload(10, 10, seed=7)[0].values
        assert a == b

    def test_skew_concentrates_keys(self):
        flat, _ = zipf_equijoin_workload(400, 1, key_universe=20, skew=0.0, seed=3)
        skewed, _ = zipf_equijoin_workload(400, 1, key_universe=20, skew=2.0, seed=3)
        top_flat = max(flat.multiplicity(k) for k in range(20))
        top_skewed = max(skewed.multiplicity(k) for k in range(20))
        assert top_skewed > top_flat

    def test_fk_pk_shape(self):
        fact, dim = fk_pk_workload(50, 8, seed=2)
        assert sorted(dim.values) == list(range(8))
        assert all(0 <= v < 8 for v in fact.values)

    def test_fk_pk_join_graph_is_stars(self):
        from repro.joins.join_graph import build_join_graph
        from repro.joins.predicates import Equality
        from repro.core.solvers.equijoin import is_union_of_bicliques

        fact, dim = fk_pk_workload(30, 5, seed=4)
        graph = build_join_graph(fact, dim, Equality())
        assert is_union_of_bicliques(graph)
        assert graph.num_edges == 30  # every FK matches exactly one PK

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            zipf_equijoin_workload(0, 5)
        with pytest.raises(WorkloadError):
            zipf_equijoin_workload(5, 5, skew=-1)
        with pytest.raises(WorkloadError):
            fk_pk_workload(0, 1)


class TestSpatialWorkloads:
    def test_uniform(self):
        r, s = uniform_rectangles_workload(15, 20, seed=0)
        assert len(r) == 15 and len(s) == 20
        assert r.domain == Domain.RECTANGLE

    def test_uniform_extent_respected(self):
        r, _ = uniform_rectangles_workload(30, 1, extent=50.0, seed=1)
        for rect in r.values:
            assert 0 <= rect.x_min and rect.x_max <= 50

    def test_clustered_denser_than_uniform(self):
        from repro.joins.join_graph import build_join_graph
        from repro.joins.predicates import SpatialOverlap

        uni = build_join_graph(*uniform_rectangles_workload(40, 40, seed=5), SpatialOverlap())
        clu = build_join_graph(
            *clustered_rectangles_workload(40, 40, clusters=3, seed=5), SpatialOverlap()
        )
        assert clu.num_edges > uni.num_edges

    def test_map_overlay_tile_counts(self):
        r, s = map_overlay_workload(tiles_left=4, tiles_right=6, seed=2)
        assert len(r) == 16 and len(s) == 36

    def test_map_overlay_joins_are_dense(self):
        from repro.joins.join_graph import build_join_graph
        from repro.joins.predicates import SpatialOverlap

        r, s = map_overlay_workload(tiles_left=3, tiles_right=4, seed=1)
        graph = build_join_graph(r, s, SpatialOverlap())
        # Each R-cell overlaps at least one S-cell (tilings cover the extent).
        assert all(graph.degree(v) >= 1 for v in graph.left)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            uniform_rectangles_workload(0, 1)
        with pytest.raises(WorkloadError):
            clustered_rectangles_workload(5, 5, clusters=0)
        with pytest.raises(WorkloadError):
            map_overlay_workload(tiles_left=0)


class TestSetWorkloads:
    def test_zipf_sets_shapes(self):
        r, s = zipf_sets_workload(10, 12, universe=15, left_size=2, right_size=5, seed=0)
        assert len(r) == 10 and len(s) == 12
        assert r.domain == Domain.SET
        assert all(len(v) <= 2 for v in r.values)

    def test_market_basket_hits(self):
        patterns, baskets = market_basket_workload(
            20, 10, catalog=40, hit_fraction=1.0, seed=1
        )
        hits = sum(
            1
            for p in patterns.values
            if any(p <= b for b in baskets.values)
        )
        assert hits == 20

    def test_market_basket_no_hits_fraction(self):
        patterns, baskets = market_basket_workload(
            30, 10, catalog=200, basket_size=5, pattern_size=4,
            hit_fraction=0.0, seed=2,
        )
        hits = sum(
            1
            for p in patterns.values
            if any(p <= b for b in baskets.values)
        )
        # Random 4-of-200 patterns almost never fit a 5-item basket.
        assert hits <= 2

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            zipf_sets_workload(0, 1)
        with pytest.raises(WorkloadError):
            zipf_sets_workload(1, 1, universe=3, right_size=5)
        with pytest.raises(WorkloadError):
            market_basket_workload(1, 1, hit_fraction=2.0)
