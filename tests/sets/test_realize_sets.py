"""Tests for Lemma 3.3: set-containment universality."""

import pytest

from repro.graphs.generators import (
    all_small_bipartite_graphs,
    random_bipartite_gnm,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SetContainment
from repro.core.families import worst_case_family
from repro.relations.relation import TupleRef
from repro.sets.realize import (
    realize_bipartite_as_containment,
    realize_worst_case_containment,
)


def _matches_target(join_graph, target) -> bool:
    left_map = {TupleRef("R", i): v for i, v in enumerate(target.left)}
    right_map = {TupleRef("S", j): v for j, v in enumerate(target.right)}
    got = {(left_map[u], right_map[v]) for u, v in join_graph.edges()}
    return got == set(target.edges())


class TestLemma33:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_realized_exactly(self, seed):
        target = random_bipartite_gnm(4, 4, 8, seed=seed)
        left, right = realize_bipartite_as_containment(target)
        join_graph = build_join_graph(left, right, SetContainment())
        assert _matches_target(join_graph, target)

    def test_exhaustive_small_graphs(self):
        # Universality verified over every bipartite graph on 2x2 sides.
        for target in all_small_bipartite_graphs(2, 2, min_edges=0):
            left, right = realize_bipartite_as_containment(target)
            join_graph = build_join_graph(left, right, SetContainment())
            assert _matches_target(join_graph, target)

    def test_left_values_are_singletons(self):
        target = random_bipartite_gnm(3, 3, 5, seed=0)
        left, _right = realize_bipartite_as_containment(target)
        assert all(len(v) == 1 for v in left.values)

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_worst_case_containment(self, n):
        left, right = realize_worst_case_containment(n)
        join_graph = build_join_graph(left, right, SetContainment())
        assert _matches_target(join_graph, worst_case_family(n))

    def test_worst_case_cost_through_realization(self):
        # End to end: realize G_4 as sets, extract join graph, solve, and
        # observe pi = 1.25m − 1 (Thm 3.3 through the Lemma 3.3 pipeline).
        from repro.core.solvers.exact import solve_exact

        left, right = realize_worst_case_containment(4)
        join_graph = build_join_graph(left, right, SetContainment())
        assert solve_exact(join_graph).effective_cost == 9  # 1.25*8 - 1
