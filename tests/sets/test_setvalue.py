"""Tests for set-value predicates, signatures, and the inverted index."""

import pytest

from repro.errors import PredicateError
from repro.sets.inverted import InvertedIndex
from repro.sets.setvalue import containment_stats, contains, overlaps, universe_of
from repro.sets.signatures import SignatureScheme


class TestPredicates:
    def test_contains(self):
        assert contains({1}, {1, 2})
        assert contains(set(), {1})
        assert contains({1, 2}, {1, 2})
        assert not contains({1, 3}, {1, 2})

    def test_contains_type_checked(self):
        with pytest.raises(PredicateError):
            contains([1], {1})
        with pytest.raises(PredicateError):
            contains({1}, "12")

    def test_overlaps(self):
        assert overlaps({1, 2}, {2, 3})
        assert not overlaps({1}, {2})
        assert not overlaps(set(), {1})

    def test_universe(self):
        assert universe_of([{1, 2}, {2, 3}]) == frozenset({1, 2, 3})
        assert universe_of([]) == frozenset()

    def test_containment_stats(self):
        stats = containment_stats([{1}, {9}], [{1, 2}, {3}])
        assert stats["pairs"] == 4
        assert stats["matches"] == 1
        assert stats["selectivity"] == 0.25


class TestSignatures:
    def test_no_false_negatives(self):
        # The defining property: A ⊆ B implies the signature test passes.
        scheme = SignatureScheme(width=32, probes=2)
        import random

        rng = random.Random(4)
        for _ in range(100):
            b = frozenset(rng.sample(range(40), 8))
            a = frozenset(rng.sample(sorted(b), 3))
            assert scheme.may_contain(scheme.signature(a), scheme.signature(b))

    def test_definitive_negatives_are_correct(self):
        scheme = SignatureScheme(width=64, probes=2)
        import random

        rng = random.Random(7)
        for _ in range(100):
            a = frozenset(rng.sample(range(60), 4))
            b = frozenset(rng.sample(range(60), 6))
            if not scheme.may_contain(scheme.signature(a), scheme.signature(b)):
                assert not a <= b

    def test_deterministic(self):
        s1 = SignatureScheme(width=64, probes=2).signature({1, 2, 3})
        s2 = SignatureScheme(width=64, probes=2).signature({3, 2, 1})
        assert s1 == s2

    def test_width_mismatch_rejected(self):
        a = SignatureScheme(width=32).signature({1})
        b = SignatureScheme(width=64).signature({1})
        with pytest.raises(PredicateError):
            SignatureScheme(width=32).may_contain(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(PredicateError):
            SignatureScheme(width=0)
        with pytest.raises(PredicateError):
            SignatureScheme(probes=0)

    def test_non_set_rejected(self):
        with pytest.raises(PredicateError):
            SignatureScheme().signature([1, 2])

    def test_fp_probability_monotone(self):
        scheme = SignatureScheme(width=64, probes=2)
        # Bigger left sets are harder to spuriously contain.
        assert scheme.false_positive_probability(1, 8) > scheme.false_positive_probability(4, 8)
        # Bigger right sets are easier to spuriously contain into.
        assert scheme.false_positive_probability(2, 16) > scheme.false_positive_probability(2, 4)

    def test_covers_relation(self):
        scheme = SignatureScheme(width=64, probes=2)
        small = scheme.signature({1})
        big = scheme.signature({1, 2, 3})
        assert big.covers(small)


class TestInvertedIndex:
    def test_basic_candidates(self):
        idx = InvertedIndex([("s0", {1, 2}), ("s1", {2, 3}), ("s2", {1, 2, 3})])
        assert set(idx.superset_candidates({2})) == {"s0", "s1", "s2"}
        assert set(idx.superset_candidates({1, 3})) == {"s2"}
        assert idx.superset_candidates({9}) == []

    def test_empty_query_matches_all(self):
        idx = InvertedIndex([("a", {1}), ("b", set())])
        assert set(idx.superset_candidates(set())) == {"a", "b"}

    def test_exactness_vs_brute_force(self):
        import random

        rng = random.Random(13)
        entries = [
            (f"s{i}", frozenset(rng.sample(range(12), rng.randint(1, 6))))
            for i in range(30)
        ]
        idx = InvertedIndex(entries)
        for _ in range(25):
            query = frozenset(rng.sample(range(12), rng.randint(0, 3)))
            expected = {p for p, v in entries if query <= v}
            assert set(idx.superset_candidates(query)) == expected

    def test_counts(self):
        idx = InvertedIndex([("a", {1, 2}), ("b", {2})])
        assert idx.num_entries == 2
        assert idx.num_elements == 2
        assert idx.postings(2) == {"a", "b"}

    def test_type_checks(self):
        with pytest.raises(PredicateError):
            InvertedIndex([("a", [1])])
        with pytest.raises(PredicateError):
            InvertedIndex().superset_candidates([1])
