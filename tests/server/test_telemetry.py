"""End-to-end request tracing and live telemetry of the solve server.

The acceptance contract of docs/OBSERVABILITY.md: a traced solve
produces one span tree per request — dispatch spans on the server side,
solver spans shipped home from worker processes — all sharing one
trace_id, assemblable into a validated Chrome trace; and the ``metrics``
op answers Prometheus text format with per-op latency histograms.
"""

import pytest

from repro.graphs.generators import path_graph, random_connected_bipartite
from repro.graphs.io import dump_bipartite
from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs import telemetry as obs_telemetry
from repro.obs.context import TraceContext, derived_trace_id
from repro.server.client import ServeClient
from repro.server.journal import JOURNAL_NAME, RequestJournal, load_records
from repro.server.protocol import encode_request
from repro.server.server import RUNTIME_STAT_COUNTERS, SolveServer, serve_background

PATH6 = dump_bipartite(path_graph(6))


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Global collectors start and end disabled+clean around every test."""

    def _reset():
        obs_trace.disable()
        obs_metrics.disable()
        obs_events.disable()
        obs_trace.reset()
        obs_metrics.reset()
        obs_events.reset()

    _reset()
    yield
    _reset()


def _server(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", tmp_path / "serve.sock")
    kwargs.setdefault("jobs", 1)
    return SolveServer(**kwargs)


def _fresh_graph(seed):
    return dump_bipartite(random_connected_bipartite(4, 4, 12, seed=seed))


def _span_tree(spans):
    """(name, parent-name) pairs; the logical parent is ``parent_index``
    when resolved locally, ``remote_parent`` when still metadata — the
    jobs=1 inline path keeps the latter, adoption resolves the former,
    and both must describe the same tree."""
    by_index = {span.index: span for span in spans}
    tree = []
    for span in spans:
        parent = (
            span.parent_index
            if span.parent_index is not None
            else span.remote_parent
        )
        parent_name = by_index[parent].name if parent in by_index else None
        tree.append((span.name, parent_name))
    return sorted(tree)


class TestTracePropagation:
    def test_server_mints_trace_id_when_client_sends_none(self, tmp_path):
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                result = client.solve(PATH6)["result"]
        assert obs_context.is_trace_id(result["trace_id"])

    def test_client_supplied_trace_id_is_echoed(self, tmp_path):
        ctx = TraceContext(derived_trace_id(5, 0))
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                response = client.request("solve", PATH6, trace=ctx)
        assert response["result"]["trace_id"] == ctx.trace_id

    def _traced_solve(self, tmp_path, jobs, seed):
        tmp_path.mkdir(parents=True, exist_ok=True)
        obs_trace.enable()
        ctx = TraceContext(derived_trace_id(99, seed))
        with serve_background(_server(tmp_path, jobs=jobs)) as live:
            with ServeClient(unix_path=live.address) as client:
                response = client.request(
                    "solve", _fresh_graph(seed), trace=ctx
                )
        assert response["ok"] is True
        spans = obs_trace.spans()
        obs_trace.disable()
        obs_trace.reset()
        return ctx, spans

    def test_identical_span_trees_across_the_pickle_boundary(self, tmp_path):
        # The acceptance bar: jobs=1 (inline, no pool) and jobs=4
        # (solver spans recorded in worker processes, shipped home,
        # adopted) must yield the same logical span tree for the same
        # request — one trace_id, same parent/child names.
        ctx1, spans1 = self._traced_solve(tmp_path / "j1", jobs=1, seed=31)
        ctx4, spans4 = self._traced_solve(tmp_path / "j4", jobs=4, seed=31)
        assert _span_tree(spans1) == _span_tree(spans4)
        for ctx, spans in ((ctx1, spans1), (ctx4, spans4)):
            assert {span.trace_id for span in spans} == {ctx.trace_id}
        # Only the jobs=4 run crossed a process boundary.
        origins4 = {span.attrs.get("origin") for span in spans4}
        assert "worker" in origins4
        assert all(
            span.attrs.get("origin") is None for span in spans1
        )
        # Worker spans hang off the dispatch span like inline ones do.
        solver_roots = [
            span for span in spans4 if span.name == "solver.solve"
        ]
        assert solver_roots
        dispatch = next(s for s in spans4 if s.name == "server.dispatch")
        assert all(s.parent_index == dispatch.index for s in solver_roots)

    def test_request_trace_assembles_one_valid_chrome_trace(self, tmp_path):
        obs_trace.enable()
        with serve_background(_server(tmp_path, jobs=4)) as live:
            with ServeClient(unix_path=live.address) as client:
                rid = client.send("solve", _fresh_graph(47), request_id="req-47")
                assert client.recv(rid)["ok"] is True
        records = obs_trace.as_dicts()
        document = obs_export.request_trace(records, "req-47")
        assert obs_export.validate_chrome_trace(document) == []
        pids = {event["pid"] for event in document["traceEvents"]}
        assert pids == {1, 2}  # server-side and worker-side spans
        assert len(document["otherData"]["trace_ids"]) == 1

    def test_request_trace_unknown_id_raises(self):
        with pytest.raises(ValueError):
            obs_export.request_trace([], "nope")

    def test_spans_adopted_counter_increments(self, tmp_path):
        obs_trace.enable()
        obs_metrics.enable()
        with serve_background(_server(tmp_path, jobs=4)) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.solve(_fresh_graph(53))["ok"] is True
        assert obs_metrics.counter("parallel.pool.spans_adopted") > 0


class TestDisabledNeutrality:
    def test_disabled_collectors_record_nothing(self, tmp_path):
        with serve_background(_server(tmp_path, jobs=4)) as live:
            with ServeClient(unix_path=live.address) as client:
                result = client.solve(_fresh_graph(61))["result"]
        assert obs_trace.spans() == []
        assert obs_metrics.snapshot()["counters"] == {}
        # The request still gets a trace identity (clients may correlate
        # responses even when the server keeps no spans).
        assert obs_context.is_trace_id(result["trace_id"])

    def test_results_identical_with_and_without_tracing(self, tmp_path):
        graph = _fresh_graph(67)
        (tmp_path / "off").mkdir()
        (tmp_path / "on").mkdir()
        with serve_background(_server(tmp_path / "off", jobs=1)) as live:
            with ServeClient(unix_path=live.address) as client:
                untraced = client.solve(graph)["result"]
        obs_trace.enable()
        with serve_background(_server(tmp_path / "on", jobs=1)) as live:
            with ServeClient(unix_path=live.address) as client:
                traced = client.solve(graph)["result"]
        untraced.pop("trace_id")
        traced.pop("trace_id")
        assert untraced == traced


class TestJournalTracePreservation:
    def test_journal_records_the_served_trace(self, tmp_path):
        journal_dir = tmp_path / "journal"
        ctx = TraceContext(derived_trace_id(7, 0))
        server = _server(tmp_path, journal_dir=journal_dir)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.request("solve", PATH6, trace=ctx)["ok"] is True
        records = load_records(journal_dir / JOURNAL_NAME)
        admitted = [r for r in records if r["kind"] == "admitted"]
        assert admitted[0]["trace"] == ctx.as_wire()

    def test_recovery_replays_under_the_original_trace_id(self, tmp_path):
        journal_dir = tmp_path / "journal"
        ctx = TraceContext(derived_trace_id(7, 1))
        # A predecessor that died mid-request, trace recorded alongside.
        with RequestJournal(journal_dir) as journal:
            journal.record_admitted(
                encode_request("r1", "solve", PATH6, trace=ctx).strip(),
                trace=ctx.as_wire(),
            )
        obs_trace.enable()
        server = _server(tmp_path, journal_dir=journal_dir, recover=True)
        with serve_background(server):
            pass
        replayed = [
            span
            for span in obs_trace.spans()
            if span.name == "server.request" and span.attrs.get("recovered")
        ]
        assert len(replayed) == 1
        assert replayed[0].trace_id == ctx.trace_id

    def test_recovery_without_journaled_trace_mints_one(self, tmp_path):
        journal_dir = tmp_path / "journal"
        # A journal written before tracing existed: no trace key at all.
        with RequestJournal(journal_dir) as journal:
            journal.record_admitted(encode_request("r1", "solve", PATH6).strip())
        obs_trace.enable()
        server = _server(tmp_path, journal_dir=journal_dir, recover=True)
        with serve_background(server):
            pass
        replayed = [
            span
            for span in obs_trace.spans()
            if span.name == "server.request" and span.attrs.get("recovered")
        ]
        assert len(replayed) == 1
        assert obs_context.is_trace_id(replayed[0].trace_id)


class TestStatsRuntimeCounters:
    def test_stats_expose_runtime_counters(self, tmp_path):
        obs_metrics.enable()
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.solve(PATH6)["ok"] is True
                runtime = client.stats()["result"]["runtime"]
        assert set(runtime) == set(RUNTIME_STAT_COUNTERS)
        assert all(
            isinstance(value, int) and value >= 0 for value in runtime.values()
        )

    def test_stats_runtime_counters_zero_when_metrics_disabled(self, tmp_path):
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                runtime = client.stats()["result"]["runtime"]
        assert all(value == 0 for value in runtime.values())


class TestMetricsOp:
    REQUIRED = {
        "repro_server_requests_total": "counter",
        "repro_server_request_outcomes_total": "counter",
        "repro_server_request_latency_ms": "histogram",
        "repro_server_window_rps": "gauge",
        "repro_server_uptime_seconds": "gauge",
        "repro_server_admitted_total": "counter",
        "repro_server_admission_rejected_total": "counter",
    }

    def test_metrics_op_answers_valid_exposition(self, tmp_path):
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.solve(PATH6)["ok"] is True
                assert client.plan(PATH6)["ok"] is True
                result = client.metrics()["result"]
        assert result["content_type"] == obs_telemetry.CONTENT_TYPE
        text = result["text"]
        assert obs_telemetry.validate_exposition(text, required=self.REQUIRED) == []
        families, _problems = obs_telemetry.parse_exposition(text)
        requests = {
            sample.labels["op"]: sample.value
            for sample in families["repro_server_requests_total"].samples
        }
        assert requests["solve"] == 1
        assert requests["plan"] == 1
        latency_ops = {
            sample.labels["op"]
            for sample in families["repro_server_request_latency_ms"].samples
        }
        assert {"solve", "plan"} <= latency_ops

    def test_metrics_op_works_on_a_fresh_server(self, tmp_path):
        # Zero requests served (a request's own telemetry is recorded
        # after its response is built, so the first metrics call sees an
        # untouched window): per-op families are legitimately empty and
        # the latency histogram family is omitted rather than rendered
        # invalid — the document must still be structurally valid with
        # the request-independent families present.
        required = {
            "repro_server_uptime_seconds": "gauge",
            "repro_server_admitted_total": "counter",
            "repro_server_admission_rejected_total": "counter",
        }
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                text = client.metrics()["result"]["text"]
        assert obs_telemetry.validate_exposition(text, required=required) == []

    def test_error_outcomes_are_counted(self, tmp_path):
        with serve_background(_server(tmp_path)) as live:
            with ServeClient(unix_path=live.address) as client:
                bad = client.request("solve", "not a graph at all")
                assert bad["ok"] is False
                text = client.metrics()["result"]["text"]
        families, _problems = obs_telemetry.parse_exposition(text)
        errors = {
            (s.labels["op"], s.labels["code"]): s.value
            for s in families["repro_server_errors_total"].samples
        }
        assert errors[("solve", "invalid_graph")] == 1
        outcomes = {
            (s.labels["op"], s.labels["outcome"]): s.value
            for s in families["repro_server_request_outcomes_total"].samples
        }
        assert outcomes[("solve", "error")] == 1


class TestTopCLI:
    def test_top_once_renders_the_per_op_table(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = obs_telemetry.TelemetryWindow(window_seconds=30)
        with serve_background(_server(tmp_path, telemetry=telemetry)) as live:
            with ServeClient(unix_path=live.address) as client:
                client.solve(PATH6)
                client.request("plan", PATH6)
            assert main(["top", "--unix", str(live.address), "--once"]) == 0
        out = capsys.readouterr().out
        # Pipe-friendly: no ANSI clear in --once mode.
        assert "\x1b[" not in out
        assert "uptime" in out and "jobs 1" in out
        for column in ("op", "requests", "rps", "err%", "p50 ms", "p99 ms"):
            assert column in out
        assert "solve" in out and "plan" in out

    def test_top_without_address_exits_2(self, capsys):
        from repro.cli import main

        assert main(["top", "--once"]) == 2
        assert "--port or --unix" in capsys.readouterr().err
