"""The write-ahead request journal and ``--recover`` replay."""

import json

import pytest

from repro.graphs.io import dump_bipartite
from repro.graphs.generators import complete_bipartite, path_graph
from repro.obs import events as obs_events
from repro.parallel.cache import SolveCache
from repro.server.client import ServeClient
from repro.server.journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    RequestJournal,
    incomplete_entries,
    load_records,
    validate_records,
)
from repro.server.protocol import encode_request
from repro.server.server import SolveServer, serve_background

PATH6 = dump_bipartite(path_graph(6))
K23 = dump_bipartite(complete_bipartite(2, 3))


class TestRequestJournal:
    def test_roundtrip_and_incomplete(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            first = journal.record_admitted('{"id": "r1"}')
            second = journal.record_admitted('{"id": "r2"}')
            journal.record_complete(first)
        records = load_records(tmp_path / JOURNAL_NAME)
        assert validate_records(records) == []
        pending = incomplete_entries(records)
        assert [entry.entry_id for entry in pending] == [second]
        assert pending[0].request_line == '{"id": "r2"}'

    def test_entry_ids_continue_across_reopen(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            assert journal.record_admitted("a") == 1
            assert journal.record_admitted("b") == 2
        with RequestJournal(tmp_path) as journal:
            # The successor picks up the unfinished entries AND keeps
            # numbering where the predecessor died.
            assert [e.entry_id for e in journal.incomplete()] == [1, 2]
            assert journal.record_admitted("c") == 3

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.record_admitted("a")
        path = tmp_path / JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-journal/v1", "kind": "adm')
        records = load_records(path)
        assert validate_records(records) == []
        assert len(records) == 1
        # And a journal reopened over the torn file appends cleanly.
        with RequestJournal(tmp_path) as journal:
            assert [e.entry_id for e in journal.incomplete()] == [1]

    def test_defective_interior_line_is_flagged(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        good = json.dumps(
            {
                "schema": JOURNAL_SCHEMA,
                "kind": "admitted",
                "entry": 1,
                "request": "x",
            }
        )
        path.write_text("not json\n" + good + "\n")
        problems = validate_records(load_records(path))
        assert any("interior" in problem for problem in problems)

    def test_validate_catches_orphan_completes(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.record_complete(99)
        problems = validate_records(load_records(tmp_path / JOURNAL_NAME))
        assert any("unknown entry" in problem for problem in problems)


def _server(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", tmp_path / "serve.sock")
    kwargs.setdefault("jobs", 1)
    return SolveServer(**kwargs)


class TestServerJournaling:
    def test_requires_journal_for_recover(self, tmp_path):
        with pytest.raises(ValueError):
            _server(tmp_path, recover=True)

    def test_answered_requests_are_admitted_then_completed(self, tmp_path):
        journal_dir = tmp_path / "journal"
        server = _server(tmp_path, journal_dir=journal_dir)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.solve(PATH6)["ok"] is True
                assert client.plan(K23)["ok"] is True
                # Control ops never touch the journal.
                assert client.ping()["ok"] is True
                stats = client.stats()["result"]
                assert stats["recovered_total"] == 0
        records = load_records(journal_dir / JOURNAL_NAME)
        assert validate_records(records) == []
        kinds = [record["kind"] for record in records]
        assert kinds == ["admitted", "complete", "admitted", "complete"]
        assert incomplete_entries(records) == []

    def test_recover_replays_incomplete_entries(self, tmp_path):
        journal_dir = tmp_path / "journal"
        # A predecessor that died mid-request: admitted, never completed.
        with RequestJournal(journal_dir) as journal:
            journal.record_admitted(
                encode_request("r1", "solve", PATH6).strip()
            )
        obs_events.reset()
        obs_events.enable()
        try:
            cache = SolveCache()
            server = _server(
                tmp_path, journal_dir=journal_dir, recover=True, cache=cache
            )
            with serve_background(server) as live:
                with ServeClient(unix_path=live.address) as client:
                    stats = client.stats()["result"]
                    assert stats["recovered_total"] == 1
                    # The replay warmed the cache: the original client's
                    # retry of the same graph is served from it.
                    retried = client.solve(PATH6)
                    assert retried["ok"] is True
                    assert retried["result"]["cached_components"] == 1
            names = [e.name for e in obs_events.events()]
            assert "server.recover" in names
        finally:
            obs_events.disable()
            obs_events.reset()
        records = load_records(journal_dir / JOURNAL_NAME)
        assert validate_records(records) == []
        assert incomplete_entries(records) == []
        completes = [r for r in records if r["kind"] == "complete"]
        assert completes[0]["recovered"] is True

    def test_unparseable_journaled_request_is_drained(self, tmp_path):
        journal_dir = tmp_path / "journal"
        with RequestJournal(journal_dir) as journal:
            journal.record_admitted("this is not a request")
        server = _server(tmp_path, journal_dir=journal_dir, recover=True)
        with serve_background(server):
            pass
        assert incomplete_entries(load_records(journal_dir / JOURNAL_NAME)) == []
