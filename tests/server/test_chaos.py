"""Chaos: short deadlines, injected faults, and starvation at the server.

The contract under test (the PR's acceptance bar): requests with
deliberately short deadlines come back as *ok responses with degraded
anytime statuses* — they never kill the server, never poison the shared
cache with degraded results, and the next unhurried request on the same
graphs solves cleanly.
"""

import json

import pytest

from repro.core.families import worst_case_family
from repro.graphs.generators import random_connected_bipartite
from repro.graphs.io import dump_bipartite
from repro.obs import events as obs_events
from repro.parallel.cache import SolveCache
from repro.runtime import FaultPlan, inject
from repro.runtime.anytime import DEGRADED_STATUSES
from repro.server.client import ServeClient
from repro.server.server import SolveServer, serve_background

# Graphs that genuinely need search: zero-deadline solves must degrade.
HARD = [
    dump_bipartite(worst_case_family(4)),
    dump_bipartite(worst_case_family(5)),
    dump_bipartite(random_connected_bipartite(4, 4, 12, seed=9)),
]


class TestShortDeadlines:
    def test_zero_deadline_degrades_without_killing_the_server(self, tmp_path):
        cache = SolveCache()
        server = SolveServer(unix_path=tmp_path / "s.sock", cache=cache)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                for graph_text in HARD:
                    response = client.solve(graph_text, deadline=0.0)
                    assert response["ok"] is True
                    assert response["result"]["status"] in DEGRADED_STATUSES
                    # Degraded ≠ useless: the anytime scheme is present.
                    assert response["result"]["scheme"]
                # The server is still fully alive.
                assert client.ping()["ok"] is True

    def test_degraded_results_never_poison_the_shared_cache(self, tmp_path):
        cache = SolveCache()
        server = SolveServer(unix_path=tmp_path / "s.sock", cache=cache)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                hurried = client.solve(HARD[0], deadline=0.0)["result"]
                assert hurried["status"] in DEGRADED_STATUSES
                # Only clean results are cached, so the unhurried retry
                # must MISS (solve afresh), not inherit the degraded one.
                unhurried = client.solve(HARD[0])["result"]
                assert unhurried["cached_components"] == 0
                assert unhurried["status"] in ("optimal", "complete")
                # ... and the clean result IS cached for the next caller.
                third = client.solve(HARD[0])["result"]
                assert third["cached_components"] == 1
                assert third["status"] == unhurried["status"]
        assert cache.stats.stores == 1

    def test_default_deadline_applies_when_request_sets_none(self, tmp_path):
        server = SolveServer(
            unix_path=tmp_path / "s.sock", default_deadline=0.0
        )
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                response = client.solve(HARD[0])
                assert response["result"]["status"] in DEGRADED_STATUSES
                # An explicit generous deadline overrides the default.
                clean = client.solve(HARD[0], deadline=120.0)
                assert clean["result"]["status"] in ("optimal", "complete")

    def test_mixed_deadline_burst_all_terminal(self, tmp_path):
        """Pipelined hurried + unhurried requests all reach terminal
        statuses; no request hangs, errors, or takes down a neighbour."""
        server = SolveServer(unix_path=tmp_path / "s.sock", cache=SolveCache())
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                ids = []
                for index, graph_text in enumerate(HARD * 2):
                    deadline = 0.0 if index % 2 == 0 else None
                    ids.append(client.send("solve", graph_text, deadline=deadline))
                responses = [client.recv(rid) for rid in ids]
        assert all(r["ok"] for r in responses)
        statuses = {r["result"]["status"] for r in responses}
        allowed = set(DEGRADED_STATUSES) | {"optimal", "complete"}
        assert statuses <= allowed
        assert statuses & set(DEGRADED_STATUSES)  # the hurried half tripped


class TestInjectedFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dispatch_faults_answer_internal_and_server_survives(
        self, tmp_path, seed
    ):
        server = SolveServer(unix_path=tmp_path / "s.sock")
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                with inject(
                    FaultPlan(seed=seed, rates={"server.dispatch": 1.0})
                ):
                    response = client.solve(HARD[0])
                assert response["ok"] is False
                assert response["error"]["code"] == "internal"
                assert "injected fault" in response["error"]["message"]
                # Plan lifted: the same request now succeeds.
                recovered = client.solve(HARD[0])
                assert recovered["ok"] is True

    def test_partial_fault_rate_mixes_errors_and_answers(self, tmp_path):
        server = SolveServer(unix_path=tmp_path / "s.sock", cache=SolveCache())
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                with inject(
                    FaultPlan(seed=7, rates={"server.dispatch": 0.5})
                ):
                    responses = [
                        client.solve(HARD[index % len(HARD)])
                        for index in range(10)
                    ]
                assert client.ping()["ok"] is True
        internal = [
            r for r in responses if not r["ok"] and r["error"]["code"] == "internal"
        ]
        ok = [r for r in responses if r["ok"]]
        assert len(internal) + len(ok) == 10
        assert internal and ok  # rate 0.5 over 10 draws hits both sides

    def test_starvation_shrinks_request_deadlines(self, tmp_path):
        """FaultPlan.starve models a machine k× slower than the deadline
        was sized for: a nominally generous per-request deadline starves
        to ~nothing and the solve degrades through the ladder."""
        server = SolveServer(unix_path=tmp_path / "s.sock")
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                with inject(FaultPlan(seed=0, starvation=10**9)):
                    starved = client.solve(HARD[0], deadline=60.0)
                assert starved["ok"] is True
                assert starved["result"]["status"] in DEGRADED_STATUSES
                # Without the plan the same deadline is plenty.
                unstarved = client.solve(HARD[0], deadline=60.0)
                assert unstarved["result"]["status"] in ("optimal", "complete")


class TestChaosArtifacts:
    def test_events_jsonl_stays_valid_under_chaos(self, tmp_path):
        obs_events.reset()
        obs_events.enable()
        try:
            run_dir = tmp_path / "run"
            server = SolveServer(
                unix_path=tmp_path / "s.sock",
                cache=SolveCache(),
                run_dir=run_dir,
            )
            with serve_background(server) as live:
                with ServeClient(unix_path=live.address) as client:
                    with inject(
                        FaultPlan(seed=3, rates={"server.dispatch": 0.4})
                    ):
                        for index in range(8):
                            client.solve(
                                HARD[index % len(HARD)],
                                deadline=0.0 if index % 2 else None,
                            )
            text = (run_dir / "events.jsonl").read_text()
            assert obs_events.validate_jsonl(text) == []
            names = {json.loads(line)["name"] for line in text.splitlines()}
            assert "server.request_end" in names
        finally:
            obs_events.disable()
            obs_events.reset()
