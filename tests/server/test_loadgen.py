"""The async load generator: deterministic mixes, quantiles, live runs."""

import collections

import pytest

from repro.server.client import ServeClient
from repro.server.protocol import OP_PLAN, OP_SOLVE
from repro.server.server import SolveServer, serve_background
from repro.obs.context import derived_trace_id, is_trace_id
from repro.workloads.loadgen import (
    LoadResult,
    LoadSpec,
    build_graph_pool,
    run_load,
    sample_mix,
)


class TestMix:
    def test_same_seed_same_mix(self):
        spec = LoadSpec(requests=40, seed=13)
        assert sample_mix(spec) == sample_mix(spec)

    def test_different_seed_different_mix(self):
        assert sample_mix(LoadSpec(seed=1)) != sample_mix(LoadSpec(seed=2))

    def test_zipf_skew_is_head_heavy(self):
        # Rank-0 of the universe must be sampled strictly more often
        # than the tail rank under a skewed mix — that head-heaviness
        # is what makes warm cache hits representative.
        spec = LoadSpec(requests=400, universe=10, skew=1.2, seed=5)
        pool = build_graph_pool(spec)
        counts = collections.Counter(g for _, g in sample_mix(spec))
        assert counts[pool[0]] > counts[pool[-1]]

    def test_plan_fraction_controls_op_mix(self):
        spec = LoadSpec(requests=300, plan_fraction=0.5, seed=3)
        ops = collections.Counter(op for op, _ in sample_mix(spec))
        assert ops[OP_SOLVE] > 0 and ops[OP_PLAN] > 0
        all_solve = LoadSpec(requests=50, plan_fraction=0.0, seed=3)
        assert {op for op, _ in sample_mix(all_solve)} == {OP_SOLVE}

    def test_graph_pool_size_and_determinism(self):
        spec = LoadSpec(universe=7, seed=11)
        pool = build_graph_pool(spec)
        assert len(pool) == 7
        assert pool == build_graph_pool(spec)
        assert len(set(pool)) > 1  # not one graph repeated


class TestLoadResult:
    def test_latency_quantiles_on_known_values(self):
        result = LoadResult(
            requests=5,
            ok=5,
            errors=0,
            rejected=0,
            degraded=0,
            elapsed_seconds=2.0,
            latencies_ms=[10.0, 20.0, 30.0, 40.0, 50.0],
        )
        assert result.latency_quantile(0.0) == 10.0
        assert result.latency_quantile(0.5) == 30.0
        assert result.latency_quantile(1.0) == 50.0
        assert result.throughput_rps == 2.5

    def test_as_dict_shape(self):
        result = LoadResult(
            requests=2,
            ok=2,
            errors=0,
            rejected=0,
            degraded=1,
            elapsed_seconds=1.0,
            latencies_ms=[1.0, 3.0],
        )
        payload = result.as_dict()
        assert payload["requests"] == 2
        assert payload["degraded"] == 1
        assert payload["p50_ms"] == pytest.approx(1.0)
        assert payload["p99_ms"] >= payload["p50_ms"]
        assert payload["throughput_rps"] == pytest.approx(2.0)

    def test_empty_latencies_quantile(self):
        result = LoadResult(
            requests=0,
            ok=0,
            errors=0,
            rejected=0,
            degraded=0,
            elapsed_seconds=0.0,
            latencies_ms=[],
        )
        assert result.latency_quantile(0.5) == 0.0
        assert result.throughput_rps == 0.0

    def test_per_op_breakdown(self):
        result = LoadResult(
            requests=5,
            ok=5,
            errors=0,
            rejected=0,
            degraded=0,
            elapsed_seconds=1.0,
            latencies_ms=[10.0, 20.0, 30.0, 1.0, 2.0],
            op_latencies_ms={
                "solve": [10.0, 20.0, 30.0],
                "plan": [1.0, 2.0],
            },
        )
        per_op = result.per_op()
        assert list(per_op) == ["plan", "solve"]  # sorted, deterministic
        assert per_op["solve"] == {
            "requests": 3,
            "p50_ms": 20.0,
            "p99_ms": 30.0,
        }
        assert per_op["plan"]["requests"] == 2
        assert result.as_dict()["per_op"] == per_op


class TestDerivedTraceIds:
    def test_load_trace_ids_are_addressable_offline(self):
        # Anyone holding (seed, request index) can reconstruct the exact
        # trace id the generator stamped on that request — no shared
        # state, no side channel.
        assert derived_trace_id(3, 0) == derived_trace_id(3, 0)
        for index in range(5):
            assert is_trace_id(derived_trace_id(3, index))
        assert len({derived_trace_id(3, i) for i in range(100)}) == 100


class TestLiveLoad:
    def test_run_load_against_background_server(self, tmp_path):
        spec = LoadSpec(
            requests=24, concurrency=4, universe=5, edges=10, seed=4
        )
        server = SolveServer(unix_path=tmp_path / "load.sock")
        with serve_background(server) as live:
            result = run_load(spec, unix_path=live.address)
            # Every request reached a terminal outcome; none were
            # dropped, and nothing errored under nominal conditions.
            assert result.requests == spec.requests
            assert result.ok + result.rejected + result.errors == spec.requests
            assert result.errors == 0
            assert result.ok > 0
            assert len(result.latencies_ms) == result.ok + result.rejected
            assert result.elapsed_seconds > 0
            # The per-op breakdown accounts for every timed request.
            per_op = result.per_op()
            assert sum(v["requests"] for v in per_op.values()) == len(
                result.latencies_ms
            )
            for view in per_op.values():
                assert view["p99_ms"] >= view["p50_ms"] >= 0.0
            # The server outlives the load.
            with ServeClient(unix_path=live.address) as client:
                assert client.ping()["ok"] is True

    def test_warm_wave_hits_cache(self, tmp_path):
        from repro.parallel.cache import SolveCache

        cache = SolveCache()
        spec = LoadSpec(requests=20, concurrency=2, universe=4, seed=8)
        server = SolveServer(unix_path=tmp_path / "warm.sock", cache=cache)
        with serve_background(server) as live:
            run_load(spec, unix_path=live.address)
            warm = run_load(spec, unix_path=live.address)
        assert warm.errors == 0
        assert cache.stats.hits > 0
