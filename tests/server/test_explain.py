"""The server's ``explain`` op: wire validation and end-to-end plans.

The op carries two relation texts (one value per line) instead of a
graph; the payload it answers with is byte-for-byte the document
``repro explain --json`` emits locally — one source of truth for both
surfaces.
"""

import json

import pytest

from repro.obs.planquality import PLAN_SCHEMA, validate_records
from repro.server.client import ServeClient
from repro.server.protocol import (
    ERROR_BAD_REQUEST,
    EXPLAIN_PREDICATES,
    OP_EXPLAIN,
    PROTOCOL_SCHEMA,
    ProtocolError,
    encode_request,
    parse_request,
)
from repro.server.server import SolveServer, serve_background

LEFT = "1\n2\n3\n"
RIGHT = "2\n3\n4\n"


def _server(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", tmp_path / "serve.sock")
    kwargs.setdefault("jobs", 1)
    return SolveServer(**kwargs)


def _line(**overrides):
    payload = {
        "schema": PROTOCOL_SCHEMA,
        "id": "r1",
        "op": "explain",
        "left": LEFT,
        "right": RIGHT,
        "predicate": "equality",
    }
    payload.update(overrides)
    return json.dumps({k: v for k, v in payload.items() if v is not None})


class TestParseExplainRequest:
    def test_minimal(self):
        request = parse_request(_line())
        assert request.op == OP_EXPLAIN
        assert request.left_text == LEFT
        assert request.right_text == RIGHT
        assert request.predicate == "equality"
        assert request.band_width == 0.0
        assert request.graph_text is None

    @pytest.mark.parametrize("missing", ["left", "right"])
    def test_missing_relation_rejected(self, missing):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(_line(**{missing: None}))
        assert excinfo.value.code == ERROR_BAD_REQUEST
        assert missing in str(excinfo.value)

    @pytest.mark.parametrize("bad", ["", "   \n", 7])
    def test_defective_relation_rejected(self, bad):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(_line(left=bad))
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(_line(predicate="theta"))
        assert excinfo.value.code == ERROR_BAD_REQUEST
        for name in EXPLAIN_PREDICATES:
            assert name in str(excinfo.value)

    def test_band_width_must_be_a_number(self):
        for bad in ("0.5", True, [1]):
            with pytest.raises(ProtocolError):
                parse_request(_line(predicate="band", band_width=bad))
        request = parse_request(_line(predicate="band", band_width=2))
        assert request.band_width == 2.0

    def test_non_explain_ops_null_the_fields(self):
        # The relation fields ride as extra top-level keys; any other op
        # ignores them (forward compatibility with older servers).
        request = parse_request(_line(op="ping"))
        assert request.left_text is None
        assert request.right_text is None
        assert request.predicate is None
        assert request.band_width == 0.0

    def test_encode_request_merges_extra_fields(self):
        line = encode_request(
            "r1",
            OP_EXPLAIN,
            extra={"left": LEFT, "right": RIGHT, "predicate": "equality"},
        )
        request = parse_request(line)
        assert request.left_text == LEFT
        assert request.predicate == "equality"

    def test_extra_cannot_override_named_fields(self):
        line = encode_request("r1", "ping", extra={"op": "shutdown"})
        assert parse_request(line).op == "ping"


class TestExplainEndToEnd:
    def test_plan_only(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                answer = client.explain(LEFT, RIGHT)
                assert answer["ok"] is True
                result = answer["result"]
                assert result["schema"] == PLAN_SCHEMA
                assert result["algorithm"] == "hash"
                assert result["explain"].startswith("R(3 tuples)")
                record = result["record"]
                assert validate_records([record]) == []
                # Plan-only: no execution, so no actuals on the record.
                assert record["actual_output"] is None
                assert result["render"].splitlines()[0] == result["explain"]

    def test_analyze_with_shadow(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                result = client.explain(
                    LEFT, RIGHT, analyze=True, shadow=True
                )["result"]
                record = result["record"]
                assert validate_records([record]) == []
                assert record["actual_output"] == 2
                assert record["q_error"] >= 1.0
                assert record["shadow_checked"] is True
                assert record["regret"] >= 0
                assert "actual m = 2" in result["explain"]
                assert "a-posteriori best:" in result["render"]

    def test_band_predicate(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                result = client.explain(
                    "1.0\n2.0\n", "1.2\n9.0\n", predicate="band",
                    band_width=0.5, analyze=True,
                )["result"]
                assert result["algorithm"] == "block-NL"
                assert result["record"]["actual_output"] == 1

    def test_bad_predicate_name_is_bad_request(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                answer = client.explain(LEFT, RIGHT, predicate="theta")
                assert answer["ok"] is False
                assert answer["error"]["code"] == "bad_request"

    def test_defective_relation_is_invalid_graph(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                answer = client.explain("1\nnot-a-number {\n", RIGHT)
                assert answer["ok"] is False
                assert answer["error"]["code"] == "invalid_graph"

    def test_domain_mismatch_is_invalid_graph(self, tmp_path):
        # Numeric left vs string right: the query constructor rejects
        # the pairing — a client input defect, not an internal error.
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                answer = client.explain(LEFT, "x y z\n")
                assert answer["ok"] is False
                assert answer["error"]["code"] == "invalid_graph"

    def test_solve_still_works_alongside_explain(self, tmp_path):
        graph = "# bipartite\nL a\nR b\nE a b\n"
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                assert client.explain(LEFT, RIGHT)["ok"] is True
                solved = client.solve(graph)
                assert solved["ok"] is True
                assert solved["result"]["effective_cost"] == 1
