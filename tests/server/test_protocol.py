"""The wire protocol: strict-but-total parsing, versioning, round trips."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.obs.context import TraceContext, derived_trace_id
from repro.server import protocol
from repro.server.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_UNKNOWN_OP,
    ERROR_UNSUPPORTED_SCHEMA,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_SCHEMA,
    ProtocolError,
    encode_request,
    error_response,
    ok_response,
    parse_request,
    parse_response,
)

GRAPH = "# bipartite\nL a\nR b\nE a b\n"


def _line(**overrides):
    payload = {"schema": PROTOCOL_SCHEMA, "id": "r1", "op": "solve", "graph": GRAPH}
    payload.update(overrides)
    return json.dumps({k: v for k, v in payload.items() if v is not ...})


class TestParseRequest:
    def test_minimal_solve(self):
        request = parse_request(_line())
        assert request.id == "r1"
        assert request.op == "solve"
        assert request.graph_text == GRAPH
        assert request.method == "auto"
        assert request.deadline is None
        assert request.options == {}
        assert request.nbytes == len(_line().encode())

    def test_schema_defaults_to_current(self):
        line = json.dumps({"id": "r1", "op": "ping"})
        assert parse_request(line).op == "ping"

    def test_bytes_input_accepted(self):
        request = parse_request(_line().encode("utf-8"))
        assert request.id == "r1"

    def test_all_fields(self):
        line = _line(method="exact", deadline=1.5, options={"seed": 3})
        request = parse_request(line)
        assert request.method == "exact"
        assert request.deadline == 1.5
        assert request.options == {"seed": 3}

    def test_negative_deadline_clamps_to_zero(self):
        # An already-overrun budget: the solve degrades instantly
        # instead of tripping the Budget constructor server-side.
        request = parse_request(_line(deadline=-3.0))
        assert request.deadline == 0.0

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2, 3]",
            '"a string"',
            json.dumps({"op": "solve", "graph": GRAPH}),  # no id
            json.dumps({"id": "", "op": "solve", "graph": GRAPH}),
            json.dumps({"id": "r", "op": ""}),
            json.dumps({"id": "r"}),  # no op
            json.dumps({"id": "r", "op": "solve"}),  # no graph
            json.dumps({"id": "r", "op": "solve", "graph": "  "}),
            json.dumps({"id": "r", "op": "solve", "graph": 7}),
            json.dumps({"id": "r", "op": "ping", "method": 9}),
            json.dumps({"id": "r", "op": "ping", "deadline": "soon"}),
            json.dumps({"id": "r", "op": "ping", "deadline": True}),
            json.dumps({"id": "r", "op": "ping", "options": [1]}),
        ],
    )
    def test_defective_lines_raise_bad_request(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps({"id": "r", "op": "frobnicate"}))
        assert excinfo.value.code == ERROR_UNKNOWN_OP

    def test_unsupported_schema_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(_line(schema="repro-serve/v99"))
        assert excinfo.value.code == ERROR_UNSUPPORTED_SCHEMA

    def test_oversized_line_rejected(self):
        huge = _line(graph="E a b\n" * (MAX_LINE_BYTES // 6))
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(huge)
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_non_utf8_bytes_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"\xff\xfe{}")
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_graph_ignored_for_non_solve_ops(self):
        request = parse_request(
            json.dumps({"id": "r", "op": "ping", "graph": GRAPH})
        )
        assert request.graph_text is None


class TestForwardCompat:
    """Unknown fields from newer clients are ignored, never rejected."""

    def test_unknown_top_level_fields_ignored(self):
        request = parse_request(
            _line(future_field="x", priority=9, hints={"a": 1})
        )
        assert request.id == "r1"
        assert request.op == "solve"
        assert request.trace is None

    def test_trace_context_round_trip(self):
        ctx = TraceContext(derived_trace_id(5, 11), parent_span_id=3)
        line = encode_request("r1", "solve", GRAPH, trace=ctx)
        assert parse_request(line.rstrip("\n")).trace == ctx

    def test_absent_trace_parses_to_none(self):
        assert parse_request(_line()).trace is None

    @pytest.mark.parametrize(
        "trace",
        [
            "not a dict",
            42,
            {},
            {"trace_id": "short"},
            {"trace_id": 17},
            {"trace_id": "Z" * 32},
        ],
    )
    def test_malformed_trace_degrades_to_untraced(self, trace):
        # A correlation hint must never cost a request: bad trace
        # payloads parse as None instead of raising bad_request.
        request = parse_request(_line(trace=trace))
        assert request.trace is None

    def test_trace_with_bad_parent_keeps_the_id(self):
        trace_id = derived_trace_id(0, 0)
        request = parse_request(
            _line(trace={"trace_id": trace_id, "parent_span_id": "x"})
        )
        assert request.trace == TraceContext(trace_id)


class TestRoundTrip:
    @pytest.mark.parametrize("op", OPS)
    def test_encode_then_parse(self, op):
        graph = GRAPH if op in protocol.SOLVE_OPS else None
        # explain carries relation texts instead of a graph (as extra
        # top-level fields any other op ignores).
        extra = (
            {"left": "1\n2\n", "right": "2\n3\n", "predicate": "equality"}
            if op == protocol.OP_EXPLAIN
            else None
        )
        line = encode_request("x7", op, graph, deadline=2.0, extra=extra)
        assert line.endswith("\n") and line.count("\n") == 1
        request = parse_request(line.rstrip("\n"))
        assert request.id == "x7"
        assert request.op == op
        assert request.deadline == 2.0
        assert request.graph_text == graph

    @given(
        st.text(min_size=1, max_size=20).filter(str.strip),
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
            max_size=4,
        ),
    )
    def test_options_survive_round_trip(self, request_id, options):
        line = encode_request(request_id, "solve", GRAPH, options=options)
        request = parse_request(line.rstrip("\n"))
        assert request.id == request_id
        assert request.options == options


class TestResponses:
    def test_ok_response_shape(self):
        payload = parse_response(ok_response("r1", "solve", {"pi": 4}))
        assert payload["ok"] is True
        assert payload["id"] == "r1"
        assert payload["schema"] == PROTOCOL_SCHEMA
        assert payload["result"] == {"pi": 4}

    def test_error_response_shape(self):
        line = error_response("r1", ERROR_BAD_REQUEST, "boom", retry_after_ms=50)
        payload = parse_response(line)
        assert payload["ok"] is False
        assert payload["error"]["code"] == ERROR_BAD_REQUEST
        assert payload["retry_after_ms"] == 50

    def test_error_response_without_id(self):
        payload = parse_response(error_response(None, ERROR_BAD_REQUEST, "x"))
        assert payload["id"] is None

    def test_responses_are_single_lines(self):
        for line in (
            ok_response("a", "ping", {}),
            error_response("a", ERROR_BAD_REQUEST, "multi\nline message"),
        ):
            assert line.endswith("\n")
            assert line.count("\n") == 1

    def test_malformed_response_raises(self):
        with pytest.raises(ProtocolError):
            parse_response("not json")
        with pytest.raises(ProtocolError):
            parse_response(json.dumps({"id": "r"}))  # no ok field
