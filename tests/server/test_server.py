"""End-to-end server tests over real sockets.

The server runs on a daemon thread (``serve_background``) while the test
drives it with the synchronous client — the same harness as
``tools/check_serve_smoke.py``, minus the subprocess.
"""

import json
import threading

import pytest

from repro.core.families import worst_case_family
from repro.graphs.generators import (
    complete_bipartite,
    path_graph,
    random_connected_bipartite,
)
from repro.graphs.io import dump_bipartite
from repro.obs import events as obs_events
from repro.parallel.cache import SolveCache
from repro.server.admission import AdmissionController
from repro.server.client import ServeClient
from repro.server.server import SolveServer, serve_background

PATH6 = dump_bipartite(path_graph(6))
K23 = dump_bipartite(complete_bipartite(2, 3))


def _server(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", tmp_path / "serve.sock")
    kwargs.setdefault("jobs", 1)
    return SolveServer(**kwargs)


class TestRequestOps:
    def test_ping_solve_plan_stats(self, tmp_path):
        cache = SolveCache()
        with serve_background(_server(tmp_path, cache=cache)) as server:
            with ServeClient(unix_path=server.address) as client:
                assert client.ping()["ok"] is True

                solved = client.solve(PATH6)
                assert solved["ok"] is True
                result = solved["result"]
                assert result["effective_cost"] == 6
                assert result["status"] == "optimal"
                assert result["components"] == 1
                # A solve response carries the full scheme as pairs,
                # one configuration per edge of the path.
                assert len(result["scheme"]) == 6

                planned = client.plan(K23)
                assert planned["ok"] is True
                assert "scheme" not in planned["result"]
                assert planned["result"]["effective_cost"] > 0

                stats = client.stats()["result"]
                assert stats["requests_total"] >= 3
                assert stats["admission"]["admitted_total"] == 2
                assert stats["cache"]["stores"] == 2

    def test_warm_requests_hit_the_shared_cache(self, tmp_path):
        cache = SolveCache()
        with serve_background(_server(tmp_path, cache=cache)) as server:
            with ServeClient(unix_path=server.address) as client:
                cold = client.solve(PATH6)["result"]
                warm = client.solve(PATH6)["result"]
        assert cold["cached_components"] == 0
        assert warm["cached_components"] == 1
        assert warm["effective_cost"] == cold["effective_cost"]
        assert cache.stats.hits >= 1

    def test_solve_equals_direct_registry_solve(self, tmp_path):
        from repro.core.solvers.registry import solve
        from repro.graphs.io import load_bipartite

        graph_text = dump_bipartite(random_connected_bipartite(4, 4, 10, seed=5))
        direct = solve(load_bipartite(graph_text))
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                served = client.solve(graph_text)["result"]
        assert served["effective_cost"] == direct.effective_cost
        assert served["raw_cost"] == direct.raw_cost
        assert served["status"] == direct.status

    def test_multi_component_graph_reassembles(self, tmp_path):
        from repro.graphs.components import disjoint_union_many

        union = disjoint_union_many(
            [worst_case_family(2), worst_case_family(3), worst_case_family(2)]
        )
        # Union labels are tuples; the text format needs flat names.
        union = union.relabeled(
            {v: f"{v[0]}_{v[1]}" for v in [*union.left, *union.right]}
        )
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                result = client.solve(dump_bipartite(union))["result"]
        assert result["components"] == 3
        # Structurally identical siblings dedupe: only 2 unique solves.
        assert result["solved_components"] == 2


class TestProtocolErrors:
    def test_defective_lines_answered_not_fatal(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                # Raw defective line straight down the socket.
                client._sock.sendall(b"this is not json\n")
                response = client.recv(None)
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                # The connection (and server) survives.
                assert client.ping()["ok"] is True

    def test_unknown_op_and_invalid_graph(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                bad_op = client.request("nope")
                assert bad_op["error"]["code"] == "unknown_op"
                bad_graph = client.solve("Z not a graph\n")
                assert bad_graph["error"]["code"] == "invalid_graph"
                assert client.ping()["ok"] is True

    def test_unsupported_schema_version(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                line = json.dumps(
                    {"schema": "repro-serve/v99", "id": "r1", "op": "ping"}
                )
                client._sock.sendall((line + "\n").encode())
                response = client.recv("r1")
                assert response["error"]["code"] == "unsupported_schema"


class TestConcurrency:
    def test_pipelined_requests_matched_by_id(self, tmp_path):
        with serve_background(_server(tmp_path)) as server:
            with ServeClient(unix_path=server.address) as client:
                first = client.send("solve", PATH6)
                second = client.send("solve", K23)
                third = client.send("ping")
                # Collect in reverse: out-of-order arrival is fine.
                assert client.recv(third)["ok"] is True
                k23 = client.recv(second)["result"]
                p6 = client.recv(first)["result"]
        assert p6["effective_cost"] == 6
        assert k23["effective_cost"] > 0

    def test_many_threads_one_server(self, tmp_path):
        graphs = [
            dump_bipartite(random_connected_bipartite(3, 3, 7, seed=s))
            for s in range(6)
        ]
        cache = SolveCache()
        outcomes: list[dict] = []
        failures: list[BaseException] = []
        lock = threading.Lock()
        with serve_background(_server(tmp_path, cache=cache)) as server:
            address = server.address

            def hammer(graph_text: str) -> None:
                try:
                    with ServeClient(unix_path=address) as client:
                        for _ in range(3):
                            response = client.solve(graph_text)
                            with lock:
                                outcomes.append(response)
                except BaseException as exc:  # surfaced below
                    with lock:
                        failures.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(g,)) for g in graphs
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not failures
        assert len(outcomes) == len(graphs) * 3
        assert all(o["ok"] for o in outcomes)
        # Each graph solved once, then served from the shared cache.
        assert cache.stats.hits >= len(graphs) * 2

    def test_admission_rejects_under_burst(self, tmp_path):
        admission = AdmissionController(max_queue_depth=1)
        graphs = [
            dump_bipartite(random_connected_bipartite(3, 3, 8, seed=100 + s))
            for s in range(8)
        ]
        with serve_background(_server(tmp_path, admission=admission)) as server:
            with ServeClient(unix_path=server.address) as client:
                ids = [client.send("solve", g) for g in graphs]
                responses = [client.recv(rid) for rid in ids]
        ok = [r for r in responses if r["ok"]]
        rejected = [
            r
            for r in responses
            if not r["ok"] and r["error"]["code"] == "overloaded"
        ]
        assert len(ok) + len(rejected) == len(graphs)
        assert ok, "at least the first burst request must be admitted"
        assert rejected, "a depth-1 queue must reject a pipelined burst"
        assert all(r["retry_after_ms"] > 0 for r in rejected)
        assert admission.depth == 0  # every ticket released


class TestWorkerPool:
    def test_pooled_server_solves_and_shares_cache(self, tmp_path):
        cache = SolveCache()
        server = _server(tmp_path, jobs=2, cache=cache)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                texts = [
                    dump_bipartite(worst_case_family(3)),
                    dump_bipartite(random_connected_bipartite(3, 3, 9, seed=2)),
                ]
                ids = [client.send("solve", t) for t in texts]
                cold = [client.recv(rid) for rid in ids]
                warm = [client.solve(t) for t in texts]
        assert all(r["ok"] for r in cold + warm)
        assert all(r["result"]["cached_components"] == 1 for r in warm)
        # The shared pool is shut down with the server.
        assert server.pool is not None
        assert server.pool._executor is None


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, tmp_path):
        server = _server(tmp_path)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.shutdown()["ok"] is True
        # Exiting serve_background joined the thread; a fresh connect fails.
        with pytest.raises(OSError):
            ServeClient(unix_path=server.address, timeout=0.5)

    def test_run_dir_artifacts_validate(self, tmp_path):
        obs_events.reset()
        obs_events.enable()
        try:
            run_dir = tmp_path / "run"
            server = _server(tmp_path, run_dir=run_dir)
            with serve_background(server) as live:
                with ServeClient(unix_path=live.address) as client:
                    client.solve(PATH6)
                    client.ping()
            events_path = run_dir / "events.jsonl"
            assert events_path.is_file()
            problems = obs_events.validate_jsonl(events_path.read_text())
            assert problems == []
            names = [
                json.loads(line)["name"]
                for line in events_path.read_text().splitlines()
            ]
            assert "server.start" in names
            assert "server.request_start" in names
            assert "server.request_end" in names
            assert "server.stop" in names
        finally:
            obs_events.disable()
            obs_events.reset()

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SolveServer()  # neither transport
        with pytest.raises(ValueError):
            SolveServer(port=0, unix_path=tmp_path / "x.sock")  # both
        with pytest.raises(ValueError):
            SolveServer(port=0, jobs=0)

    def test_tcp_transport(self, tmp_path):
        with serve_background(SolveServer(port=0)) as server:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                assert client.ping()["ok"] is True
