"""Chaos: killed workers, killed servers, and what must survive them.

Three crash stories from docs/ROBUSTNESS.md, each asserted end to end:

- a pooled server whose workers are killed mid-solve still answers, and
  answers *identically* to an undisturbed server;
- a journaled server restarted under live retrying load loses zero
  requests — every request in the mix eventually gets an ok response;
- a server whose startup fails after the bind leaves no socket file
  behind, so the address is immediately reusable.
"""

import threading
import time

import pytest

from repro.graphs.generators import matching_graph
from repro.graphs.io import dump_bipartite
from repro.parallel.cache import SolveCache
from repro.parallel.pool import CRASH_SITE, QUARANTINE_MARKER
from repro.runtime.faults import FaultPlan, inject
from repro.server.client import ServeClient
from repro.server.journal import (
    JOURNAL_NAME,
    incomplete_entries,
    load_records,
    validate_records,
)
from repro.server.server import SolveServer, serve_background

MATCHING3 = dump_bipartite(matching_graph(3))


class TestServerWorkerCrash:
    def test_pooled_server_survives_killed_workers(self, tmp_path):
        """Every worker dies on every dispatch; the answer is unchanged."""
        server = SolveServer(unix_path=tmp_path / "serve.sock", jobs=2)
        with serve_background(server) as live:
            with ServeClient(unix_path=live.address) as client:
                clean = client.solve(MATCHING3)
                assert clean["ok"] is True
                with inject(FaultPlan(seed=3, rates={CRASH_SITE: 1.0})):
                    stormy = client.solve(MATCHING3)
        assert stormy["ok"] is True
        for field in ("scheme", "effective_cost", "raw_cost", "jumps",
                      "optimal", "status"):
            assert stormy["result"][field] == clean["result"][field]
        # The degraded path is honest about itself.
        assert QUARANTINE_MARKER in stormy["result"]["degradations"]
        assert QUARANTINE_MARKER not in clean["result"].get("degradations", [])


class TestRestartRecovery:
    def test_restart_under_live_load_loses_nothing(self, tmp_path):
        """Kill the server mid-run; retrying clients land every request
        on the successor, and the journal closes with no orphans."""
        from repro.workloads.loadgen import LoadSpec, run_load

        journal_dir = tmp_path / "journal"
        sock = tmp_path / "serve.sock"
        spec = LoadSpec(
            requests=30,
            concurrency=3,
            universe=4,
            edges=10,
            plan_fraction=0.25,
            seed=5,
            retries=15,
        )
        box: dict[str, object] = {}

        def drive() -> None:
            box["result"] = run_load(spec, unix_path=sock)

        thread = threading.Thread(target=drive, daemon=True)
        first = SolveServer(
            unix_path=sock, jobs=1, journal_dir=journal_dir, cache=SolveCache()
        )
        with serve_background(first):
            thread.start()
            # Let a few requests land, then yank the server mid-mix.
            cutoff = time.monotonic() + 10.0
            while first.requests_total < 5 and time.monotonic() < cutoff:
                time.sleep(0.005)
            assert first.requests_total >= 5
        second = SolveServer(
            unix_path=sock,
            jobs=1,
            journal_dir=journal_dir,
            recover=True,
            cache=SolveCache(),
        )
        with serve_background(second):
            thread.join(timeout=60.0)
        assert not thread.is_alive()
        result = box["result"]
        assert result.ok == spec.requests
        assert result.errors == 0
        assert result.rejected == 0
        records = load_records(journal_dir / JOURNAL_NAME)
        assert validate_records(records) == []
        assert incomplete_entries(records) == []


class TestStartupFailureHygiene:
    def test_failed_startup_leaves_no_socket_behind(self, tmp_path, monkeypatch):
        """A post-bind startup failure must unlink the socket — the
        serve_background regression: the address stays bindable."""
        sock = tmp_path / "serve.sock"
        server = SolveServer(
            unix_path=sock, jobs=1, journal_dir=tmp_path / "journal",
            recover=True,
        )

        async def explode() -> None:
            raise RuntimeError("recovery exploded")

        monkeypatch.setattr(server, "_recover", explode)
        with pytest.raises(RuntimeError, match="recovery exploded"):
            with serve_background(server):
                pass  # pragma: no cover — never reached
        assert not sock.exists()
        # The address is immediately reusable by a replacement.
        replacement = SolveServer(unix_path=sock, jobs=1)
        with serve_background(replacement) as live:
            with ServeClient(unix_path=live.address) as client:
                assert client.ping()["ok"] is True
        assert not sock.exists()
