"""Admission control: both limits bind, releases balance, hints scale."""

import pytest

from repro.server.admission import (
    RETRY_AFTER_MAX_MS,
    AdmissionController,
    RejectedError,
)


class TestLimits:
    def test_queue_depth_limit(self):
        controller = AdmissionController(max_queue_depth=2, max_inflight_bytes=10**6)
        t1 = controller.admit(10)
        t2 = controller.admit(10)
        with pytest.raises(RejectedError) as excinfo:
            controller.admit(10)
        assert excinfo.value.reason == "queue_depth"
        assert excinfo.value.retry_after_ms > 0
        controller.release(t1)
        t3 = controller.admit(10)  # slot freed
        controller.release(t2)
        controller.release(t3)
        assert controller.depth == 0
        assert controller.inflight_bytes == 0

    def test_inflight_bytes_limit(self):
        controller = AdmissionController(max_queue_depth=100, max_inflight_bytes=100)
        ticket = controller.admit(80)
        with pytest.raises(RejectedError) as excinfo:
            controller.admit(30)
        assert excinfo.value.reason == "inflight_bytes"
        controller.admit(20)  # exactly fits
        controller.release(ticket)

    def test_rejection_leaves_state_unchanged(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit(5)
        before = (controller.depth, controller.inflight_bytes)
        with pytest.raises(RejectedError):
            controller.admit(5)
        assert (controller.depth, controller.inflight_bytes) == before
        assert controller.rejected_total == 1

    def test_release_is_idempotent_per_ticket(self):
        controller = AdmissionController()
        ticket = controller.admit(7)
        controller.release(ticket)
        controller.release(ticket)
        assert controller.depth == 0
        assert controller.inflight_bytes == 0

    def test_retry_after_grows_with_backlog(self):
        controller = AdmissionController(max_queue_depth=100)
        empty_hint = controller.retry_after_ms()
        for _ in range(10):
            controller.admit(1)
        assert controller.retry_after_ms() > empty_hint

    def test_retry_after_grows_with_rejection_streak(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit(1)
        hints = []
        for _ in range(3):
            with pytest.raises(RejectedError) as excinfo:
                controller.admit(1)
            hints.append(excinfo.value.retry_after_ms)
        assert hints == sorted(hints)
        assert hints[0] < hints[-1]

    def test_retry_after_is_capped(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit(1)
        hint = 0
        for _ in range(100):
            with pytest.raises(RejectedError) as excinfo:
                controller.admit(1)
            hint = excinfo.value.retry_after_ms
        assert hint == RETRY_AFTER_MAX_MS

    def test_retry_after_growth_resets_on_admit(self):
        controller = AdmissionController(max_queue_depth=2)
        t1 = controller.admit(1)
        t2 = controller.admit(1)
        for _ in range(50):
            with pytest.raises(RejectedError):
                controller.admit(1)
        controller.release(t1)
        controller.release(t2)
        controller.admit(1)  # success forgets the streak
        assert controller.consecutive_rejections == 0
        assert (
            controller.retry_after_ms()
            < RETRY_AFTER_MAX_MS
        )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight_bytes=0)

    def test_stats_payload(self):
        controller = AdmissionController(max_queue_depth=3, max_inflight_bytes=50)
        controller.admit(10)
        with pytest.raises(RejectedError):
            controller.admit(100)
        stats = controller.stats()
        assert stats["depth"] == 1
        assert stats["inflight_bytes"] == 10
        assert stats["admitted_total"] == 1
        assert stats["rejected_total"] == 1
        assert stats["max_queue_depth"] == 3


class TestObservability:
    def test_admit_and_reject_events(self):
        from repro.obs import events, metrics

        events.reset()
        events.enable()
        metrics.reset()
        metrics.enable()
        try:
            controller = AdmissionController(max_queue_depth=1)
            ticket = controller.admit(5)
            with pytest.raises(RejectedError):
                controller.admit(5)
            controller.release(ticket)
            names = [e.name for e in events.events()]
            assert names == ["server.admit", "server.reject"]
            reject = events.events()[1]
            assert reject.attrs["reason"] == "queue_depth"
            assert reject.attrs["retry_after_ms"] > 0
            assert metrics.counter("server.admitted") == 1
            assert metrics.counter("server.rejected") == 1
            assert metrics.counter("server.rejected.queue_depth") == 1
            assert metrics.METRICS.gauge("server.queue_depth") == 0
        finally:
            events.disable()
            events.reset()
            metrics.disable()
            metrics.reset()
