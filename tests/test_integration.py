"""End-to-end integration tests across the whole pipeline.

Each test runs relation construction → join-graph extraction → pebbling →
validation, mirroring how a downstream user would consume the library and
how the paper's claims compose across modules.
"""

import pytest

import repro
from repro import (
    Equality,
    PebbleGame,
    Relation,
    SetContainment,
    SpatialOverlap,
    build_join_graph,
    solve,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestEquijoinPipeline:
    def test_end_to_end_perfect_pebbling(self):
        r = Relation("orders", [10, 10, 20, 30, 30, 30])
        s = Relation("customers", [10, 20, 20, 40])
        graph = build_join_graph(r, s, Equality())
        result = solve(graph)
        assert result.optimal
        assert result.effective_cost == graph.num_edges
        game = PebbleGame(graph.without_isolated_vertices())
        game.replay(result.scheme)
        assert game.is_won()

    def test_paper_headline_separation(self):
        """The paper's central claim, end to end: an equijoin instance
        always pebbles at ratio 1.0 while a containment instance built on
        the worst-case family cannot beat ~1.25."""
        from repro.sets.realize import realize_worst_case_containment

        r = Relation("R", [1, 1, 2, 2, 3])
        s = Relation("S", [1, 2, 2, 3, 3])
        equi_graph = build_join_graph(r, s, Equality())
        equi = solve(equi_graph)
        assert equi.effective_cost / equi_graph.num_edges == 1.0

        cl, cr = realize_worst_case_containment(6)
        cont_graph = build_join_graph(cl, cr, SetContainment())
        cont = solve(cont_graph)
        assert cont.optimal
        ratio = cont.effective_cost / cont_graph.num_edges
        assert ratio > 1.15  # 14/12 for n=6


class TestSpatialPipeline:
    def test_spatial_realization_round_trip(self):
        from repro.geometry.realize import realize_worst_case_family

        left, right = realize_worst_case_family(5)
        graph = build_join_graph(left, right, SpatialOverlap())
        result = solve(graph)
        from repro.core.families import worst_case_effective_cost

        assert result.effective_cost == worst_case_effective_cost(5)

    def test_map_overlay_to_pebbling(self):
        from repro.workloads.spatial import map_overlay_workload

        r, s = map_overlay_workload(tiles_left=3, tiles_right=3, seed=0)
        graph = build_join_graph(r, s, SpatialOverlap())
        result = solve(graph, "dfs+polish")
        result.scheme.validate(graph.without_isolated_vertices())
        m = graph.num_edges
        assert m <= result.effective_cost <= 1.25 * m


class TestJoinAlgorithmBridge:
    def test_three_predicates_one_model(self):
        """Compute the same abstract pebbling quantity through all three
        predicate classes on instances realizing the same join graph."""
        from repro.geometry.realize import realize_bipartite_with_combs
        from repro.sets.realize import realize_bipartite_as_containment
        from repro.graphs.generators import random_connected_bipartite
        from repro.core.solvers.exact import solve_exact

        target = random_connected_bipartite(3, 3, extra_edges=2, seed=9)
        expected = solve_exact(target).effective_cost

        sl, sr = realize_bipartite_as_containment(target)
        set_graph = build_join_graph(sl, sr, SetContainment())
        assert solve_exact(set_graph).effective_cost == expected

        gl, gr = realize_bipartite_with_combs(target)
        geo_graph = build_join_graph(gl, gr, SpatialOverlap())
        assert solve_exact(geo_graph).effective_cost == expected

    def test_trace_reports_rank_algorithms(self):
        from repro.joins.algorithms import (
            index_nested_loops,
            sort_merge_join,
        )
        from repro.joins.trace import trace_report
        from repro.workloads.equijoin import zipf_equijoin_workload

        left, right = zipf_equijoin_workload(30, 30, key_universe=6, skew=1.0, seed=11)
        graph = build_join_graph(left, right, Equality())
        sm = trace_report(graph, sort_merge_join(left, right), "sm")
        inl = trace_report(graph, index_nested_loops(left, right), "inl")
        assert sm.effective_cost <= inl.effective_cost
        assert sm.cost_ratio == 1.0
