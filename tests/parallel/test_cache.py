"""The two-tier solve cache: hits must be indistinguishable from solves."""

import sqlite3

import pytest

from repro.core.families import worst_case_family
from repro.core.solvers.registry import solve
from repro.graphs.generators import (
    complete_bipartite,
    random_connected_bipartite,
)
from repro.parallel import cache as cache_mod
from repro.parallel.cache import (
    LOCKED_RETRY_POLICY,
    CacheEntry,
    LRUCache,
    SolveCache,
    SQLiteCacheTier,
    cache_key,
    current_cache,
    entry_from_result,
    options_digest,
    use_cache,
)
from repro.parallel.fingerprint import canonical_form
from repro.runtime.anytime import STATUS_BUDGET_EXHAUSTED
from repro.runtime.budget import Budget, use_budget
from repro.runtime.clock import FakeClock


def _result_fingerprint(result):
    return (
        result.scheme.configurations,
        result.effective_cost,
        result.raw_cost,
        result.jumps,
        result.optimal,
        result.status,
    )


class TestKeying:
    def test_options_fold_into_key(self):
        form = canonical_form(worst_case_family(2))
        assert cache_key(form, "anneal", {"seed": 1}) != cache_key(
            form, "anneal", {"seed": 2}
        )
        assert cache_key(form, "exact", {}) != cache_key(form, "auto", {})

    def test_digest_order_independent(self):
        assert options_digest({"a": 1, "b": 2}) == options_digest(
            {"b": 2, "a": 1}
        )


class TestLRU:
    def test_eviction_order(self):
        lru = LRUCache(capacity=2)
        entries = {
            name: CacheEntry(
                method="exact",
                optimal=True,
                status="optimal",
                raw_cost=0,
                jumps=0,
                scheme=(),
            )
            for name in "abc"
        }
        lru.put("a", entries["a"])
        lru.put("b", entries["b"])
        assert lru.get("a") is not None  # refresh a; b is now oldest
        lru.put("c", entries["c"])
        assert lru.get("b") is None
        assert lru.get("a") is not None
        assert lru.get("c") is not None


class TestMemoryTier:
    def test_hit_matches_cold_solve(self):
        cache = SolveCache()
        g = worst_case_family(3)
        cold, token = cache.consult(g, "auto", {})
        assert cold is None
        cache.store(token, solve(g, "auto"))
        warm, _ = cache.consult(g, "auto", {})
        assert warm is not None
        assert _result_fingerprint(warm) == _result_fingerprint(solve(g, "auto"))
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_hit_across_relabeling(self):
        """A structurally identical graph with different labels hits."""
        cache = SolveCache()
        a = complete_bipartite(2, 3)
        b = a  # same generator; also test a fresh instance
        _, token = cache.consult(a, "auto", {})
        cache.store(token, solve(a, "auto"))
        hit, _ = cache.consult(complete_bipartite(2, 3), "auto", {})
        assert hit is not None
        assert hit.effective_cost == solve(b, "auto").effective_cost

    def test_degraded_results_not_cached(self):
        cache = SolveCache()
        g = worst_case_family(3)
        _, token = cache.consult(g, "auto", {})
        degraded = solve(g, "auto")
        from dataclasses import replace

        assert not cache.store(
            token, replace(degraded, status=STATUS_BUDGET_EXHAUSTED)
        )
        still_miss, _ = cache.consult(g, "auto", {})
        assert still_miss is None


class TestPersistentTier:
    def test_survives_reopen(self, tmp_path):
        db = tmp_path / "solve-cache.db"
        g = random_connected_bipartite(3, 3, 7, seed=5)
        expected = solve(g, "auto")

        first = SolveCache(path=db)
        _, token = first.consult(g, "auto", {})
        first.store(token, expected)
        first.close()

        second = SolveCache(path=db)
        hit, _ = second.consult(g, "auto", {})
        second.close()
        assert hit is not None
        assert _result_fingerprint(hit) == _result_fingerprint(expected)
        assert second.stats.persistent_hits == 1

    def test_promotion_into_memory(self, tmp_path):
        db = tmp_path / "solve-cache.db"
        g = worst_case_family(2)
        seeder = SolveCache(path=db)
        _, token = seeder.consult(g, "auto", {})
        seeder.store(token, solve(g, "auto"))
        seeder.close()

        cache = SolveCache(path=db)
        cache.consult(g, "auto", {})  # persistent hit, promoted
        cache.consult(g, "auto", {})  # now a memory hit
        cache.close()
        assert cache.stats.persistent_hits == 1
        assert cache.stats.memory_hits == 1

    def test_corrupt_row_is_a_miss(self, tmp_path):
        db = tmp_path / "solve-cache.db"
        tier = SQLiteCacheTier(db)
        tier._conn.execute(
            "INSERT INTO solve_cache "
            "(key, fingerprint, method, payload, created_unix)"
            " VALUES ('k', 'f', 'auto', 'not json', 0)"
        )
        tier._conn.commit()
        assert tier.get("k") is None
        tier.close()


class TestLockedRetry:
    """The persistent tier under lock contention: shared-policy retries,
    bounded by the ambient budget, giving up into a miss — never an error."""

    def _tier(self):
        return SQLiteCacheTier(":memory:")

    def test_transient_lock_is_retried_through(self, monkeypatch):
        tier = self._tier()
        sleeps: list[float] = []
        monkeypatch.setattr(cache_mod.time, "sleep", sleeps.append)
        failures = iter([True, True, False])

        def flaky():
            if next(failures):
                raise sqlite3.OperationalError("database is locked")
            return "row"

        assert tier._with_locked_retry(flaky) == ("row", True)
        # jitter=0 in LOCKED_RETRY_POLICY, so the curve is exact.
        assert sleeps == [
            LOCKED_RETRY_POLICY.backoff(0),
            LOCKED_RETRY_POLICY.backoff(1),
        ]
        tier.close()

    def test_persistent_lock_degrades_to_miss(self, monkeypatch):
        tier = self._tier()
        monkeypatch.setattr(cache_mod.time, "sleep", lambda _s: None)

        class LockedConn:
            def execute(self, *args):
                raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(tier, "_conn", LockedConn())
        assert tier.get("k") is None  # a locked read is a miss
        entry = CacheEntry(
            method="exact", optimal=True, status="optimal",
            raw_cost=0, jumps=0, scheme=(),
        )
        tier.put("k", "f", entry)  # a locked write is dropped, not raised

    def test_non_lock_errors_propagate(self):
        tier = self._tier()

        def broken():
            raise sqlite3.OperationalError("no such table: solve_cache")

        with pytest.raises(sqlite3.OperationalError):
            tier._with_locked_retry(broken)
        tier.close()

    def test_exhausted_ambient_budget_gives_up_without_sleeping(
        self, monkeypatch
    ):
        """A request already past its deadline must not sleep on a locked
        cache: the controller binds the ambient budget and gives up."""
        tier = self._tier()
        sleeps: list[float] = []
        monkeypatch.setattr(cache_mod.time, "sleep", sleeps.append)

        def locked():
            raise sqlite3.OperationalError("database is locked")

        clock = FakeClock()
        budget = Budget(deadline=0.05, clock=clock).start()
        clock.advance(1.0)  # deadline long gone
        with use_budget(budget):
            assert tier._with_locked_retry(locked) == (None, False)
        assert sleeps == []
        tier.close()


class TestAmbientStack:
    def test_nested_masking(self):
        outer = SolveCache()
        assert current_cache() is None
        with use_cache(outer):
            assert current_cache() is outer
            with use_cache(None):
                assert current_cache() is None
            assert current_cache() is outer
        assert current_cache() is None


class TestRegistryIntegration:
    def test_solve_consults_ambient_cache(self):
        g = worst_case_family(3)
        baseline = solve(g, "auto")
        cache = SolveCache()
        with use_cache(cache):
            first = solve(g, "auto")
            second = solve(g, "auto")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert _result_fingerprint(first) == _result_fingerprint(baseline)
        assert _result_fingerprint(second) == _result_fingerprint(baseline)

    def test_no_cache_no_interference(self):
        g = worst_case_family(2)
        assert _result_fingerprint(solve(g, "auto")) == _result_fingerprint(
            solve(g, "auto")
        )


class TestUncacheableSchemes:
    def test_scheme_touching_isolated_vertices_not_cached(self):
        """consult() fingerprints the graph minus isolated vertices; a
        scheme is encoded against that form, so any configuration on a
        removed vertex makes the entry uncacheable, not wrong."""
        g = worst_case_family(2)
        cache = SolveCache()
        _, token = cache.consult(g, "auto", {})
        result = solve(g, "auto")
        assert cache.store(token, result)  # normal solves do cache
