"""Pool self-healing: killed workers never change answers.

The contract under test (docs/ROBUSTNESS.md): a worker killed mid-batch
— injected deterministically through the ``worker.crash`` fault site —
is an invisible performance event.  The pool rebuilds, lost tasks
re-dispatch, poison tasks quarantine to an in-parent solve, and the
batch's schemes, costs, and statuses are byte-identical to a fault-free
run.
"""

import pytest

from repro.core.families import worst_case_family
from repro.graphs.generators import (
    matching_graph,
    random_connected_bipartite,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.parallel import WorkerPool, solve_many
from repro.parallel.pool import (
    CRASH_SITE,
    QUARANTINE_MARKER,
    SolveTask,
    crash_draw,
    dispatch_resilient,
)
from repro.runtime.faults import FaultPlan, inject


def _batch():
    return [
        worst_case_family(2),
        worst_case_family(3),
        random_connected_bipartite(4, 4, 9, seed=11),
        matching_graph(3),
    ]


def _fingerprints(results):
    return [
        (
            r.scheme.configurations,
            r.effective_cost,
            r.raw_cost,
            r.jumps,
            r.optimal,
            r.status,
        )
        for r in results
    ]


class TestCrashDraw:
    def test_no_plan_never_fires(self):
        assert crash_draw() is False

    def test_wildcard_rate_does_not_reach_workers(self):
        # "*" exercises exception sites; process death must be opted
        # into by name, so existing chaos runs keep their meaning.
        with inject(FaultPlan(seed=0, rates={"*": 1.0})):
            assert crash_draw() is False

    def test_explicit_site_fires(self):
        with inject(FaultPlan(seed=0, rates={CRASH_SITE: 1.0})):
            assert crash_draw() is True


class TestHealGeneration:
    def test_heal_rebuilds_once_per_observed_crash(self):
        pool = WorkerPool(2)
        first = pool.executor
        generation = pool.generation
        pool.heal(generation)
        assert pool.generation == generation + 1
        # A second dispatcher that saw the same crash must not rebuild
        # the already-healed pool out from under the first.
        pool.heal(generation)
        assert pool.generation == generation + 1
        assert pool.executor is not first
        pool.close()

    def test_pool_usable_after_heal(self):
        with WorkerPool(2) as pool:
            pool.heal(pool.generation)
            outcome = pool.submit(
                SolveTask(graph=worst_case_family(2), method="auto")
            ).result()
            assert outcome.result.optimal


class TestSelfHealing:
    def test_every_dispatch_crashing_still_completes(self):
        # Rate 1.0: every dispatch kills its worker, so every task rides
        # the full ladder — batch crash, serial retries, quarantine —
        # and the answers still match the fault-free run exactly.
        graphs = _batch()
        clean = _fingerprints(solve_many(graphs, jobs=2))
        with WorkerPool(2) as pool:
            with inject(FaultPlan(seed=3, rates={CRASH_SITE: 1.0})):
                chaotic = solve_many(graphs, jobs=2, pool=pool)
        assert _fingerprints(chaotic) == clean

    def test_partial_crash_rate_is_deterministic_and_identical(self):
        graphs = _batch()
        clean = _fingerprints(solve_many(graphs, jobs=2))
        runs = []
        for _repeat in range(2):
            with WorkerPool(2) as pool:
                with inject(FaultPlan(seed=7, rates={CRASH_SITE: 0.5})):
                    runs.append(solve_many(graphs, jobs=2, pool=pool))
        assert _fingerprints(runs[0]) == clean
        assert _fingerprints(runs[1]) == clean

    def test_throwaway_pool_path_also_heals(self):
        graphs = [worst_case_family(2), worst_case_family(3)]
        clean = _fingerprints(solve_many(graphs, jobs=2))
        with inject(FaultPlan(seed=1, rates={CRASH_SITE: 1.0})):
            chaotic = solve_many(graphs, jobs=2)
        assert _fingerprints(chaotic) == clean

    def test_quarantine_is_recorded_in_provenance(self):
        # Two distinct components (single-task batches solve inline and
        # never reach the pool); at rate 1.0 both tasks exhaust their
        # failure budget and must carry the quarantine marker.
        with WorkerPool(2) as pool:
            with inject(FaultPlan(seed=5, rates={CRASH_SITE: 1.0})):
                results = solve_many(
                    [worst_case_family(2), worst_case_family(3)],
                    jobs=2,
                    pool=pool,
                )
        for result in results:
            assert result.provenance is not None
            assert QUARANTINE_MARKER in result.provenance.degradations

    def test_crash_trail_is_observable(self):
        obs_events.reset()
        obs_metrics.reset()
        obs_events.enable()
        obs_metrics.enable()
        try:
            with WorkerPool(2) as pool:
                with inject(FaultPlan(seed=3, rates={CRASH_SITE: 1.0})):
                    solve_many(_batch(), jobs=2, pool=pool)
            names = [e.name for e in obs_events.events()]
            assert "fault.injected" in names
            assert "pool.worker_crash" in names
            assert "pool.quarantine" in names
            counters = obs_metrics.snapshot()["counters"]
            assert counters["parallel.pool.worker_crashes"] >= 1
            assert counters["parallel.pool.quarantines"] >= 1
            # The trail validates against the closed vocabulary.
            assert obs_events.validate_jsonl(obs_events.to_jsonl()) == []
        finally:
            obs_events.disable()
            obs_events.reset()
            obs_metrics.disable()
            obs_metrics.reset()


class TestDispatchResilient:
    def test_happy_path_preserves_order(self):
        # Connected graphs: one component each, so a per-graph SolveTask
        # matches solve_many's per-component answer exactly.
        graphs = [
            worst_case_family(2),
            worst_case_family(3),
            random_connected_bipartite(3, 3, 7, seed=2),
        ]
        payloads = [SolveTask(graph=g, method="auto") for g in graphs]
        with WorkerPool(2) as pool:
            outcomes = dispatch_resilient(pool, payloads)
        direct = _fingerprints([o.result for o in outcomes])
        clean = _fingerprints([r for r in solve_many(graphs, jobs=1)])
        assert direct == clean

    def test_empty_batch(self):
        with WorkerPool(1) as pool:
            assert dispatch_resilient(pool, []) == []
