"""Canonical forms and fingerprints: the solve cache's notion of identity."""

import pytest

from repro.core.families import worst_case_family
from repro.core.scheme import PebblingScheme
from repro.core.solvers.registry import solve
from repro.errors import SchemeError
from repro.graphs.bipartite import from_edges
from repro.graphs.generators import (
    complete_bipartite,
    path_graph,
    random_connected_bipartite,
)
from repro.parallel.fingerprint import (
    canonical_form,
    decode_scheme,
    encode_scheme,
    fingerprint,
)


class TestCanonicalForm:
    def test_deterministic(self):
        g = random_connected_bipartite(4, 4, 9, seed=3)
        assert canonical_form(g) == canonical_form(g)
        assert fingerprint(g) == fingerprint(g)

    def test_left_size_recorded(self):
        form = canonical_form(complete_bipartite(2, 3))
        assert form.kind == "bipartite"
        assert form.left_size == 2
        assert len(form.vertices) == 5
        assert len(form.edges) == 6

    def test_edges_sorted_index_pairs(self):
        form = canonical_form(path_graph(4))
        assert list(form.edges) == sorted(form.edges)
        for u, v in form.edges:
            assert 0 <= u < form.left_size
            assert form.left_size <= v < len(form.vertices)

    def test_relabeling_preserves_fingerprint(self):
        # Same structure, different labels — but same repr-sort order.
        a = from_edges([("a1", "b1"), ("a1", "b2"), ("a2", "b2")])
        b = from_edges([("x1", "y1"), ("x1", "y2"), ("x2", "y2")])
        assert fingerprint(a) == fingerprint(b)

    def test_structure_changes_fingerprint(self):
        a = from_edges([("a1", "b1"), ("a1", "b2"), ("a2", "b2")])
        b = from_edges([("a1", "b1"), ("a1", "b2"), ("a2", "b1")])
        assert fingerprint(a) != fingerprint(b)

    def test_family_sizes_distinct(self):
        prints = {fingerprint(worst_case_family(n)) for n in range(1, 6)}
        assert len(prints) == 5


class TestSchemeCodec:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip(self, seed):
        g = random_connected_bipartite(3, 3, 7, seed=seed)
        form = canonical_form(g)
        scheme = solve(g).scheme
        encoded = encode_scheme(scheme, form)
        decoded = decode_scheme(encoded, form)
        assert decoded.configurations == scheme.configurations

    def test_cross_graph_rehydration(self):
        """A scheme recorded against one labeling transfers to another
        with the same structure, at identical cost — the property that
        makes fingerprint-keyed caching sound."""
        a = from_edges([("a1", "b1"), ("a1", "b2"), ("a2", "b2")])
        b = from_edges([("x1", "y1"), ("x1", "y2"), ("x2", "y2")])
        encoded = encode_scheme(solve(a).scheme, canonical_form(a))
        transferred = decode_scheme(encoded, canonical_form(b))
        assert transferred.effective_cost(b) == solve(b).effective_cost

    def test_foreign_vertices_rejected(self):
        g = path_graph(2)
        form = canonical_form(g)
        foreign = PebblingScheme([("nope", "also-nope")])
        with pytest.raises(SchemeError):
            encode_scheme(foreign, form)
