"""Cross-process determinism of the planner's sampling estimates.

``estimate_selectivity`` seeds its private generator via
:func:`repro.engine.stats.derive_seed`, a CRC-32 of the estimate's
content identity — never Python's per-process randomized ``hash()`` —
so ``--jobs 1`` and ``--jobs N`` workers draw identical samples and
produce identical plans.  These tests pin that contract: the derivation
itself (exact values, per-query independence) and the estimates' equality
across a real process boundary, alongside the jobs-invariance suite.
"""

import json
import subprocess
import sys
import zlib

from repro.engine.stats import (
    derive_seed,
    estimate_output_size,
    estimate_selectivity,
)
from repro.joins.predicates import Band, SpatialOverlap
from repro.relations.relation import Relation
from repro.workloads.spatial import uniform_rectangles_workload

# A sampled-path workload: 40x40 = 1600 pairs, far beyond the 64-pair
# sample budget, so the estimate genuinely depends on the seeded RNG.
_WORKLOAD = dict(n_left=40, n_right=40, seed=3)

_CHILD_SCRIPT = """\
import json, sys
from repro.engine.stats import estimate_output_size, estimate_selectivity
from repro.joins.predicates import SpatialOverlap
from repro.workloads.spatial import uniform_rectangles_workload

left, right = uniform_rectangles_workload(n_left=40, n_right=40, seed=3)
predicate = SpatialOverlap()
print(json.dumps({
    "selectivity": estimate_selectivity(left, right, predicate),
    "output_size": estimate_output_size(left, right, predicate),
}))
"""


class TestDeriveSeed:
    def test_matches_crc32_of_content_identity(self):
        left = Relation("R", [1, 2, 3])
        right = Relation("S", [4, 5])
        seed = derive_seed(left, right, Band(0.5), seed=7)
        assert seed == zlib.crc32(b"R|3|S|2|band|7")

    def test_stable_across_calls(self):
        left, right = uniform_rectangles_workload(**_WORKLOAD)
        predicate = SpatialOverlap()
        assert derive_seed(left, right, predicate) == derive_seed(
            left, right, predicate
        )

    def test_distinct_queries_get_distinct_seeds(self):
        # Per-query independence: renaming a relation, resizing it, or
        # changing the predicate or base seed all move the seed, so one
        # sample-index sequence cannot correlate across a workload.
        left = Relation("R", [1, 2, 3])
        right = Relation("S", [4, 5])
        base = derive_seed(left, right, Band(0.5))
        assert derive_seed(Relation("T", [1, 2, 3]), right, Band(0.5)) != base
        assert derive_seed(Relation("R", [1, 2]), right, Band(0.5)) != base
        assert derive_seed(left, right, SpatialOverlap()) != base
        assert derive_seed(left, right, Band(0.5), seed=1) != base


class TestCrossProcessEstimates:
    def test_sampled_estimates_identical_in_fresh_process(self):
        left, right = uniform_rectangles_workload(**_WORKLOAD)
        predicate = SpatialOverlap()
        parent = {
            "selectivity": estimate_selectivity(left, right, predicate),
            "output_size": estimate_output_size(left, right, predicate),
        }
        completed = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
        )
        child = json.loads(completed.stdout)
        # Exact equality, not approx: the sample is a pure function of
        # the content identity, byte-identical in every process.
        assert child == parent

    def test_repeated_estimates_identical_in_process(self):
        left, right = uniform_rectangles_workload(**_WORKLOAD)
        predicate = SpatialOverlap()
        first = estimate_output_size(left, right, predicate)
        assert all(
            estimate_output_size(left, right, predicate) == first
            for _ in range(3)
        )
