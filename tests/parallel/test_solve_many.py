"""``solve_many``: jobs-invariance, Lemma 2.2 reassembly, cache equivalence.

The contract under test: the job count and the cache are pure
*performance* knobs.  Costs, schemes, statuses, and optimality flags are
identical across ``jobs=1``, ``jobs=4``, cold cache, and warm cache —
and identical to a direct ``registry.solve`` on the same graph.
"""

import pytest

from repro.core.families import worst_case_family
from repro.core.solvers.registry import solve
from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import disjoint_union_many
from repro.graphs.generators import (
    complete_bipartite,
    matching_graph,
    random_connected_bipartite,
)
from repro.parallel import SolveCache, solve_many, split_deadline, use_cache


def _batch():
    return [
        worst_case_family(2),
        worst_case_family(3),
        random_connected_bipartite(4, 4, 9, seed=11),
        disjoint_union_many(
            [worst_case_family(2), worst_case_family(3), worst_case_family(2)]
        ),
        matching_graph(3),
        complete_bipartite(2, 3),
    ]


def _fingerprints(results):
    return [
        (
            r.scheme.configurations,
            r.effective_cost,
            r.raw_cost,
            r.jumps,
            r.optimal,
            r.status,
        )
        for r in results
    ]


class TestJobsInvariance:
    def test_jobs_1_vs_4_identical(self):
        graphs = _batch()
        assert _fingerprints(solve_many(graphs, jobs=1)) == _fingerprints(
            solve_many(graphs, jobs=4)
        )

    def test_matches_direct_solve_costs(self):
        graphs = _batch()
        results = solve_many(graphs, jobs=4)
        for graph, result in zip(graphs, results):
            direct = solve(graph, "auto")
            assert result.effective_cost == direct.effective_cost
            assert result.raw_cost == direct.raw_cost
            assert result.status == direct.status
            assert result.optimal == direct.optimal

    @pytest.mark.parametrize("method", ["exact", "dfs+polish"])
    def test_explicit_methods(self, method):
        graphs = [worst_case_family(2), worst_case_family(3)]
        assert _fingerprints(
            solve_many(graphs, method=method, jobs=1)
        ) == _fingerprints(solve_many(graphs, method=method, jobs=2))

    def test_schemes_are_valid(self):
        graphs = _batch()
        for graph, result in zip(graphs, solve_many(graphs, jobs=2)):
            working = graph.without_isolated_vertices()
            # The stitched scheme must delete every edge of the graph.
            assert result.scheme.is_valid(working)
            assert result.scheme.effective_cost(working) == result.effective_cost


class TestReassembly:
    def test_component_costs_add(self):
        """Lemma 2.2: pi of a disjoint union is the sum of component pis."""
        parts = [worst_case_family(2), worst_case_family(3), matching_graph(2)]
        union = disjoint_union_many(parts)
        [result] = solve_many([union], jobs=2)
        expected = sum(solve(p, "auto").effective_cost for p in parts)
        assert result.effective_cost == expected
        assert result.optimal

    def test_duplicate_components_solved_once(self):
        """Structurally identical components collapse into one task."""
        union = disjoint_union_many([worst_case_family(2)] * 4)
        [result] = solve_many([union], jobs=2)
        assert (
            result.effective_cost
            == 4 * solve(worst_case_family(2), "auto").effective_cost
        )

    def test_empty_graph(self):
        [result] = solve_many([BipartiteGraph()], jobs=2)
        assert result.effective_cost == 0
        assert result.raw_cost == 0
        assert result.optimal
        assert result.scheme.configurations == ()

    def test_results_in_input_order(self):
        graphs = [worst_case_family(3), worst_case_family(2), worst_case_family(4)]
        costs = [r.effective_cost for r in solve_many(graphs, jobs=2)]
        assert costs == [solve(g, "auto").effective_cost for g in graphs]


class TestCacheEquivalence:
    def test_warm_equals_cold(self):
        graphs = _batch()
        cache = SolveCache()
        with use_cache(cache):
            cold = solve_many(graphs, jobs=2)
            warm = solve_many(graphs, jobs=2)
        assert _fingerprints(cold) == _fingerprints(warm)
        assert cache.stats.hits > 0
        assert cache.stats.misses == cache.stats.stores

    def test_cache_arg_overrides_ambient(self):
        graphs = [worst_case_family(2)]
        explicit = SolveCache()
        ambient = SolveCache()
        with use_cache(ambient):
            solve_many(graphs, cache=explicit)
        assert explicit.stats.misses == 1
        assert ambient.stats.misses == 0

    def test_persistent_cache_across_calls(self, tmp_path):
        db = tmp_path / "cache.db"
        graphs = _batch()
        first_cache = SolveCache(path=db)
        cold = solve_many(graphs, jobs=2, cache=first_cache)
        first_cache.close()
        second_cache = SolveCache(path=db)
        warm = solve_many(graphs, jobs=2, cache=second_cache)
        second_cache.close()
        assert _fingerprints(cold) == _fingerprints(warm)
        assert second_cache.stats.persistent_hits > 0
        assert second_cache.stats.stores == 0


class TestBudgets:
    def test_split_deadline_waves(self):
        assert split_deadline(None, 10, 4) is None
        assert split_deadline(12.0, 0, 4) is None
        assert split_deadline(12.0, 8, 4) == 6.0  # 2 waves
        assert split_deadline(12.0, 3, 4) == 12.0  # 1 wave
        assert split_deadline(12.0, 9, 4) == 4.0  # 3 waves

    def test_generous_deadline_stays_optimal(self):
        graphs = [worst_case_family(2), worst_case_family(3)]
        results = solve_many(graphs, jobs=2, deadline=300.0)
        assert all(r.optimal for r in results)

    def test_split_deadline_zero_remaining_clamps_to_zero(self):
        # A request whose budget is already spent hands 0.0 downstream:
        # a valid share (instant cooperative trip), not None and never
        # a Budget constructor error.
        assert split_deadline(0.0, 8, 4) == 0.0
        assert split_deadline(0.0, 1, 1) == 0.0

    def test_split_deadline_negative_remaining_clamps_to_zero(self):
        # Negative "remaining" can reach the splitter when a deadline
        # overruns between measurement and dispatch; the share clamps.
        assert split_deadline(-2.5, 4, 2) == 0.0
        assert split_deadline(-0.001, 1, 8) == 0.0

    def test_split_deadline_more_waves_than_milliseconds(self):
        # 1 ms across 1000 single-job waves: shares collapse toward zero
        # but stay non-negative and Budget-constructible.
        share = split_deadline(0.001, 1000, 1)
        assert share is not None
        assert 0.0 <= share <= 0.001
        from repro.runtime.budget import Budget

        Budget(deadline=share)  # must not raise

    def test_split_deadline_share_never_negative_or_oversized(self):
        for deadline in (0.0, 0.5, 7.0):
            for tasks in (1, 3, 17):
                for jobs in (1, 2, 16):
                    share = split_deadline(deadline, tasks, jobs)
                    assert share is not None
                    assert 0.0 <= share <= deadline or deadline == 0.0

    def test_zero_deadline_degrades_with_budget_status_vocabulary(self):
        # Exhaustion mid-batch must surface through the anytime status
        # vocabulary — degraded statuses, answers for every graph, and
        # no exception out of solve_many.
        from repro.runtime.anytime import DEGRADED_STATUSES

        graphs = [worst_case_family(4), worst_case_family(5)]
        results = solve_many(graphs, jobs=1, deadline=0.0)
        assert len(results) == len(graphs)
        for result in results:
            assert result.status in DEGRADED_STATUSES
            assert result.scheme.configurations  # still a usable scheme
            assert not result.optimal

    def test_zero_deadline_degrades_identically_across_pool(self):
        # The zero-share path must hold through worker processes too.
        from repro.runtime.anytime import DEGRADED_STATUSES

        graphs = [worst_case_family(4), worst_case_family(5)]
        results = solve_many(graphs, jobs=2, deadline=0.0)
        assert all(r.status in DEGRADED_STATUSES for r in results)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(SolverError):
            solve_many([worst_case_family(2)], method="nope")

    def test_bad_jobs(self):
        with pytest.raises(SolverError):
            solve_many([worst_case_family(2)], jobs=0)

    def test_empty_batch(self):
        assert solve_many([], jobs=2) == []
