"""Behaviour-neutrality of the observability hooks.

The whole point of the obs subsystem is that it observes without
perturbing: every solver must return the identical scheme and cost with
collection enabled as with it disabled, the engine must emit the same
rows, and two same-seed runs must write byte-identical metrics.json.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvers.registry import METHODS, solve
from repro.engine import JoinQuery, execute
from repro.graphs.generators import random_connected_bipartite
from repro.joins.join_graph import build_join_graph_cached, clear_join_graph_cache
from repro.joins.predicates import Equality
from repro.obs import events, metrics, trace
from repro.workloads.equijoin import zipf_equijoin_workload

import pytest


def _solve_fingerprint(graph, method):
    result = solve(graph, method)
    return (
        result.scheme,
        result.effective_cost,
        result.raw_cost,
        result.jumps,
        result.optimal,
        result.method,
    )


def _graph_for(method, seed):
    if method == "equijoin":
        # The equijoin fast path only accepts union-of-biclique graphs.
        left, right = zipf_equijoin_workload(8, 8, key_universe=3, seed=seed)
        from repro.joins.join_graph import build_join_graph

        return build_join_graph(left, right, Equality())
    return random_connected_bipartite(4, 4, 10, seed=seed)


@pytest.mark.parametrize("method", METHODS)
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_solver_identical_with_and_without_collection(method, seed):
    graph = _graph_for(method, seed)

    trace.disable()
    metrics.disable()
    baseline = _solve_fingerprint(graph, method)

    trace.reset()
    metrics.reset()
    trace.enable()
    metrics.enable()
    try:
        observed = _solve_fingerprint(graph, method)
    finally:
        trace.disable()
        metrics.disable()

    assert observed == baseline


@pytest.mark.parametrize("method", METHODS)
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_solver_identical_with_event_log_enabled(method, seed):
    """The event-log emission sites (solver.phase, ladder.degraded,
    budget.tripped) must observe without perturbing, exactly like spans
    and counters."""
    graph = _graph_for(method, seed)

    events.disable()
    baseline = _solve_fingerprint(graph, method)

    events.reset()
    events.enable()
    try:
        observed = _solve_fingerprint(graph, method)
    finally:
        events.disable()

    assert observed == baseline


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_budget_ladder_identical_with_event_log_enabled(seed):
    """Budget-starved solves degrade through the ladder identically with
    the event log on — budget.tripped / ladder.degraded are pure
    observations."""
    from repro.runtime import Budget

    graph = random_connected_bipartite(4, 4, 10, seed=seed)

    def fingerprint():
        result = solve(graph, budget=Budget(node_budget=5))
        return (
            result.scheme,
            result.effective_cost,
            result.method,
            None
            if result.provenance is None
            else tuple(result.provenance.degradations),
        )

    events.disable()
    baseline = fingerprint()
    events.reset()
    events.enable()
    try:
        observed = fingerprint()
    finally:
        events.disable()
    assert observed == baseline


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_engine_output_identical_with_and_without_collection(seed):
    left, right = zipf_equijoin_workload(15, 15, key_universe=5, seed=seed)
    query = JoinQuery(left, right, Equality())

    def fingerprint():
        clear_join_graph_cache()
        result = execute(query)
        return (
            sorted(result.rows),
            result.plan.algorithm_name,
            None if result.trace is None else result.trace.effective_cost,
        )

    baseline = fingerprint()
    trace.reset()
    metrics.reset()
    trace.enable()
    metrics.enable()
    try:
        observed = fingerprint()
    finally:
        trace.disable()
        metrics.disable()
    assert observed == baseline


def _seeded_run(tmp_path, run_id, seed):
    """One 'experiment' whose metrics depend only on the seed."""
    from repro.obs.manifest import write_run

    metrics.reset()
    trace.reset()
    metrics.enable()
    trace.enable()
    left, right = zipf_equijoin_workload(12, 12, key_universe=4, seed=seed)
    clear_join_graph_cache()
    execute(JoinQuery(left, right, Equality()))
    graph = random_connected_bipartite(3, 3, 8, seed=seed)
    solve(graph, "dfs+polish")
    run_dir = write_run(run_id, runs_dir=tmp_path, seed=seed)
    metrics.disable()
    trace.disable()
    return (run_dir / "metrics.json").read_bytes()


def test_same_seed_runs_write_byte_identical_metrics(tmp_path):
    first = _seeded_run(tmp_path, "run-a", seed=123)
    second = _seeded_run(tmp_path, "run-b", seed=123)
    assert first == second


def test_different_seed_runs_usually_differ(tmp_path):
    # Sanity check that the byte-identical test above is not vacuous.
    first = _seeded_run(tmp_path, "run-a", seed=1)
    second = _seeded_run(tmp_path, "run-c", seed=2)
    assert first != second


class TestHotPathInstrumentation:
    """The per-phase spans added to the solver/engine hot paths must obey
    the same contract as every other hook: present when collection is on,
    absent (and behaviour-neutral) when it is off."""

    def test_exact_solver_phase_spans_recorded(self):
        # Sparse on purpose: a complete-bipartite component would be
        # answered in closed form without entering the search at all.
        graph = random_connected_bipartite(4, 4, 3, seed=0)
        trace.enable()
        solve(graph, "exact")
        names = {s.name for s in trace.spans()}
        assert "solver.exact" in names
        assert "solver.exact.component" in names
        assert "solver.exact.level" in names

    def test_exact_solver_counters_flushed(self):
        graph = random_connected_bipartite(4, 4, 3, seed=0)
        metrics.enable()
        solve(graph, "exact")
        assert metrics.counter("solver.exact.search_nodes") > 0
        assert metrics.counter("solver.exact.bound_checks") > 0
        assert metrics.counter("solver.exact.deepening_levels") > 0

    def test_held_karp_phase_spans_recorded(self):
        from repro.core.solvers.held_karp import held_karp_effective_cost

        graph = random_connected_bipartite(3, 3, 6, seed=1)
        trace.enable()
        metrics.enable()
        held_karp_effective_cost(graph)
        names = {s.name for s in trace.spans()}
        assert "solver.held_karp.build" in names
        assert "solver.held_karp.dp" in names
        assert metrics.counter("solver.held_karp.memo_cells") > 0

    def test_engine_materialize_span_recorded(self):
        left, right = zipf_equijoin_workload(10, 10, key_universe=4, seed=0)
        clear_join_graph_cache()
        trace.enable()
        execute(JoinQuery(left, right, Equality()))
        names = {s.name for s in trace.spans()}
        assert "engine.materialize" in names

    def test_no_spans_recorded_while_disabled(self):
        graph = random_connected_bipartite(3, 3, 8, seed=0)
        left, right = zipf_equijoin_workload(10, 10, key_universe=4, seed=0)
        clear_join_graph_cache()
        assert not trace.is_enabled()
        solve(graph, "exact")
        execute(JoinQuery(left, right, Equality()))
        assert trace.spans() == []
        assert metrics.snapshot()["counters"] == {}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_held_karp_cost_identical_with_and_without_collection(self, seed):
        from repro.core.solvers.held_karp import held_karp_effective_cost

        graph = random_connected_bipartite(3, 3, 6, seed=seed)
        trace.disable()
        metrics.disable()
        baseline = held_karp_effective_cost(graph)
        trace.reset()
        metrics.reset()
        trace.enable()
        metrics.enable()
        try:
            observed = held_karp_effective_cost(graph)
        finally:
            trace.disable()
            metrics.disable()
        assert observed == baseline


class TestSelectivityModes:
    def test_small_inputs_use_exact_enumeration(self):
        from repro.engine.stats import estimate_selectivity

        left, right = zipf_equijoin_workload(5, 5, key_universe=3, seed=0)
        metrics.enable()
        estimate_selectivity(left, right, Equality(), sample_size=100, seed=0)
        assert metrics.counter("planner.selectivity.exact") == 1
        assert metrics.counter("planner.selectivity.sampled") == 0
        assert metrics.counter("planner.selectivity.pairs_evaluated") == 25

    def test_exact_mode_independent_of_sampling_seed(self):
        from repro.engine.stats import estimate_selectivity

        left, right = zipf_equijoin_workload(6, 6, key_universe=3, seed=0)
        values = {
            estimate_selectivity(left, right, Equality(), sample_size=200, seed=s)
            for s in range(5)
        }
        assert len(values) == 1

    def test_large_inputs_fall_back_to_sampling(self):
        from repro.engine.stats import estimate_selectivity

        left, right = zipf_equijoin_workload(40, 40, key_universe=8, seed=0)
        metrics.enable()
        estimate_selectivity(left, right, Equality(), sample_size=50, seed=0)
        assert metrics.counter("planner.selectivity.sampled") == 1
        assert metrics.counter("planner.selectivity.exact") == 0


class TestJoinGraphCache:
    def test_repeated_execute_hits_cache(self):
        left, right = zipf_equijoin_workload(10, 10, key_universe=4, seed=0)
        query = JoinQuery(left, right, Equality())
        metrics.enable()
        execute(query)
        execute(query)
        assert metrics.counter("joins.join_graph_cache.hits") >= 1

    def test_cached_graph_is_same_object(self):
        left, right = zipf_equijoin_workload(8, 8, key_universe=4, seed=0)
        first = build_join_graph_cached(left, right, Equality())
        second = build_join_graph_cached(left, right, Equality())
        assert first is second

    def test_mutating_relation_invalidates(self):
        left, right = zipf_equijoin_workload(8, 8, key_universe=4, seed=0)
        first = build_join_graph_cached(left, right, Equality())
        left.append(left.values[0])
        second = build_join_graph_cached(left, right, Equality())
        assert first is not second
        assert second.num_edges >= first.num_edges


class TestParallelNeutrality:
    """The pool and cache paths observe without perturbing: solve_many
    returns identical batches with collection on or off, with a cache or
    without, warm or cold."""

    @staticmethod
    def _batch_fingerprint(jobs=1, cache=None):
        from repro.core.families import worst_case_family
        from repro.graphs.components import disjoint_union_many
        from repro.parallel import solve_many

        graphs = [
            worst_case_family(2),
            worst_case_family(3),
            disjoint_union_many([worst_case_family(2), worst_case_family(2)]),
            random_connected_bipartite(3, 3, 7, seed=9),
        ]
        return [
            (
                r.scheme.configurations,
                r.effective_cost,
                r.raw_cost,
                r.jumps,
                r.optimal,
                r.status,
            )
            for r in solve_many(graphs, jobs=jobs, cache=cache)
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_solve_many_identical_with_and_without_collection(self, jobs):
        trace.disable()
        metrics.disable()
        events.disable()
        baseline = self._batch_fingerprint(jobs=jobs)

        trace.reset()
        metrics.reset()
        events.reset()
        trace.enable()
        metrics.enable()
        events.enable()
        try:
            observed = self._batch_fingerprint(jobs=jobs)
        finally:
            trace.disable()
            metrics.disable()
            events.disable()
            trace.reset()
            metrics.reset()
            events.reset()
        assert observed == baseline

    def test_cache_hits_identical_with_and_without_collection(self):
        from repro.parallel import SolveCache

        cold = self._batch_fingerprint(jobs=1)
        cache = SolveCache()
        self._batch_fingerprint(jobs=1, cache=cache)  # seed the cache
        metrics.reset()
        events.reset()
        metrics.enable()
        events.enable()
        try:
            warm_observed = self._batch_fingerprint(jobs=1, cache=cache)
            assert any(
                e.name in ("cache.hit",) for e in events.events()
            ), "warm run should emit cache.hit events"
        finally:
            metrics.disable()
            events.disable()
            metrics.reset()
            events.reset()
        assert warm_observed == cold

    def test_pool_counters_merge_deterministically(self):
        """Two identical jobs=2 runs produce identical counter snapshots:
        worker counters merge in sorted order, not completion order."""

        def counters():
            metrics.reset()
            metrics.enable()
            try:
                self._batch_fingerprint(jobs=2)
                return dict(metrics.snapshot()["counters"])
            finally:
                metrics.disable()
                metrics.reset()

        assert counters() == counters()
