"""The plan-quality gate (``tools/check_plan_quality.py``): schema
validation of plans.jsonl/explain documents, baseline round-trips, and
the regression verdicts — including the flipped bad direction for
choice accuracy — mirroring ``bench_diff.py``'s vocabulary."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.planquality import PLAN_SCHEMA, CandidateRecord, PlanRecord

TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_plan_quality.py"


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("check_plan_quality", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(estimated, actual, regret=0, predicate="equality"):
    return PlanRecord(
        query="q",
        predicate=predicate,
        left="R",
        right="S",
        left_size=2,
        right_size=2,
        algorithm="hash",
        reason="r",
        estimated_output=float(estimated),
        candidates=[CandidateRecord("hash", 1.0, "r", chosen=True)],
        actual_output=actual,
        shadow_checked=True,
        best_algorithm="hash" if regret == 0 else "sort-merge",
        regret=regret,
    )


def _jsonl(path, records):
    path.write_text(
        "".join(json.dumps(r.as_dict(), sort_keys=True) + "\n" for r in records)
    )
    return path


class TestValidateMode:
    def test_jsonl_and_document_pass(self, tool, tmp_path):
        plans = _jsonl(tmp_path / "plans.jsonl", [_record(10, 10)])
        explain = tmp_path / "explain.json"
        explain.write_text(
            json.dumps(
                {"schema": PLAN_SCHEMA, "records": [_record(10, 10).as_dict()]}
            )
        )
        assert tool.main(["--validate", str(plans), str(explain)]) == 0

    def test_defective_record_fails(self, tool, tmp_path, capsys):
        data = _record(10, 10).as_dict()
        del data["algorithm"]
        plans = tmp_path / "plans.jsonl"
        plans.write_text(json.dumps(data) + "\n")
        assert tool.main(["--validate", str(plans)]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_committed_baseline_is_current_schema(self, tool):
        baseline = json.loads(
            (TOOL.parent.parent / "benchmarks" / "plan_baseline.json").read_text()
        )
        assert baseline["schema"] == tool.BASELINE_SCHEMA
        assert baseline["predicates"]


class TestGateMode:
    def test_same_records_pass_round_trip(self, tool, tmp_path, capsys):
        plans = _jsonl(
            tmp_path / "plans.jsonl", [_record(10, 10), _record(4, 8)]
        )
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--write-baseline", str(baseline), str(plans)]) == 0
        assert tool.main(["--baseline", str(baseline), str(plans)]) == 0
        out = capsys.readouterr().out
        assert "plan quality within tolerance" in out
        assert "1.00x" in out and "ok" in out

    def test_doctored_records_regress(self, tool, tmp_path, capsys):
        good = _jsonl(tmp_path / "good.jsonl", [_record(10, 10)])
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--write-baseline", str(baseline), str(good)]) == 0
        # Doctored: the estimate is off 20x, q_p90 explodes.
        bad = _jsonl(tmp_path / "bad.jsonl", [_record(10, 200)])
        assert tool.main(["--baseline", str(baseline), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err

    def test_accuracy_direction_flips(self, tool, tmp_path, capsys):
        good = _jsonl(
            tmp_path / "good.jsonl", [_record(10, 10), _record(10, 10)]
        )
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--write-baseline", str(baseline), str(good)]) == 0
        # Same perfect q-error, but half the shadow choices now wrong:
        # a *falling* accuracy is the regression.
        worse = _jsonl(
            tmp_path / "worse.jsonl", [_record(10, 10), _record(10, 10, regret=3)]
        )
        assert tool.main(["--baseline", str(baseline), str(worse)]) == 1
        table = capsys.readouterr().out
        row = next(
            line for line in table.splitlines()
            if "choice_accuracy" in line and "REGRESSION" in line
        )
        assert "0.50x" in row

    def test_missing_predicate_counts_as_regression(self, tool, tmp_path, capsys):
        both = _jsonl(
            tmp_path / "both.jsonl",
            [_record(10, 10), _record(3, 3, predicate="spatial-overlap")],
        )
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--write-baseline", str(baseline), str(both)]) == 0
        only_one = _jsonl(tmp_path / "one.jsonl", [_record(10, 10)])
        assert tool.main(["--baseline", str(baseline), str(only_one)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_tolerance_comes_from_baseline(self, tool, tmp_path, capsys):
        good = _jsonl(tmp_path / "good.jsonl", [_record(10, 10)])
        baseline = tmp_path / "baseline.json"
        assert tool.main(
            ["--write-baseline", str(baseline), str(good), "--tolerance", "9.0"]
        ) == 0
        # q-error quadruples — within the baseline's own loose tolerance,
        # but past an explicit strict override.
        drift = _jsonl(tmp_path / "drift.jsonl", [_record(10, 40)])
        assert tool.main(["--baseline", str(baseline), str(drift)]) == 0
        capsys.readouterr()
        assert tool.main(
            ["--baseline", str(baseline), str(drift), "--tolerance", "0.25"]
        ) == 1

    def test_unreadable_input_exits_two(self, tool, tmp_path):
        good = _jsonl(tmp_path / "good.jsonl", [_record(10, 10)])
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--write-baseline", str(baseline), str(good)]) == 0
        assert tool.main(
            ["--baseline", str(baseline), str(tmp_path / "absent.jsonl")]
        ) == 2

    def test_gate_tolerance_matches_bench_diff(self, tool):
        spec = importlib.util.spec_from_file_location(
            "bench_diff_for_plan_gate", TOOL.parent / "bench_diff.py"
        )
        bench_diff = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_diff)
        assert tool.DEFAULT_TOLERANCE == bench_diff.DEFAULT_TOLERANCE
