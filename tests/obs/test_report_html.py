"""The HTML dashboard: golden structure, self-containment (no scripts,
no external requests), and the every-link-resolves guarantee."""

import re
import shutil
from html.parser import HTMLParser
from pathlib import Path

import pytest

from repro.obs.registry import RunRegistry
from repro.obs.report_html import (
    REPORT_TITLE,
    artifact_links,
    render_report,
    write_report,
)

FIXTURES = Path(__file__).parent / "fixtures" / "runs"

# void elements never receive a closing tag
_VOID = {"br", "hr", "img", "meta", "link", "input", "circle", "path", "rect", "line"}


class _StructureChecker(HTMLParser):
    """Asserts tags balance and collects tag/link inventory."""

    def __init__(self):
        super().__init__()
        self.stack = []
        self.tags = []
        self.hrefs = []
        self.problems = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        if tag == "a":
            self.hrefs.extend(v for k, v in attrs if k == "href")
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.tags.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.problems.append(f"unbalanced </{tag}> (stack: {self.stack[-3:]})")
        else:
            self.stack.pop()


def _check(document):
    checker = _StructureChecker()
    checker.feed(document)
    assert checker.problems == []
    assert checker.stack == []
    return checker


@pytest.fixture()
def registry():
    with RunRegistry() as reg:
        reg.rebuild(FIXTURES)
        yield reg


class TestRenderReport:
    def test_golden_structure(self, registry):
        document = render_report(registry, link_root=FIXTURES)
        assert document.startswith("<!DOCTYPE html>")
        checker = _check(document)
        # exactly one page skeleton
        for tag in ("html", "head", "body", "h1"):
            assert checker.tags.count(tag) == 1, tag
        assert REPORT_TITLE in document
        # every fixture run and scenario is present
        for run_id in ("run-a-baseline", "run-b-steady", "run-c-regressed",
                       "run-d-partial"):
            assert f'id="run-{run_id}"' in document
        for scenario in ("alpha", "beta"):
            assert f'id="scenario-{scenario}"' in document
        # one sparkline per scenario
        assert checker.tags.count("svg") == 2
        # the alpha regression and the beta failure are flagged
        assert 'class="verdict-REGRESSION">REGRESSION' in document
        assert ">FAILED<" in document

    def test_self_contained(self, registry):
        document = render_report(registry, link_root=FIXTURES)
        assert "<script" not in document
        # no external fetches: the only URL allowed is the SVG xmlns
        # namespace identifier, which browsers never dereference
        urls = re.findall(r'(?:href|src)="(https?://[^"]*)"', document)
        assert urls == []
        assert "<style>" in document

    def test_every_link_resolves(self, registry):
        document = render_report(registry, link_root=FIXTURES)
        checker = _check(document)
        assert checker.hrefs, "report must link artifacts"
        for href in checker.hrefs:
            if href.startswith("#"):
                anchor = href[1:]
                assert f'id="{anchor}"' in document, href
            else:
                assert (FIXTURES / href).is_file(), href

    def test_partial_run_links_only_existing_artifacts(self, registry):
        run = registry.run("run-d-partial")
        labels = [label for label, _ in artifact_links(run, FIXTURES)]
        assert "report" in labels and "tables" in labels
        assert "metrics" not in labels and "events" not in labels

    def test_empty_registry_still_renders_valid_page(self):
        with RunRegistry() as empty:
            document = render_report(empty)
        _check(document)
        assert "No run directories indexed" in document

    def test_rendering_is_deterministic(self, registry):
        first = render_report(registry, link_root=FIXTURES)
        second = render_report(registry, link_root=FIXTURES)
        assert first == second


class TestWriteReport:
    def test_write_report_computes_links_relative_to_output(self, tmp_path):
        runs_dir = tmp_path / "out" / "runs"
        shutil.copytree(FIXTURES, runs_dir)
        with RunRegistry() as reg:
            reg.rebuild(runs_dir)
            target = write_report(reg, tmp_path / "out" / "report.html")
        document = target.read_text()
        checker = _check(document)
        file_links = [h for h in checker.hrefs if not h.startswith("#")]
        assert file_links
        for href in file_links:
            assert not Path(href).is_absolute()
            assert (target.parent / href).is_file(), href

    def test_write_report_creates_parent_directories(self, tmp_path):
        with RunRegistry() as reg:
            target = write_report(reg, tmp_path / "deep" / "nest" / "r.html")
        assert target.is_file()


class TestSparkline:
    def test_sparkline_handles_gaps_and_flags(self):
        from repro.analysis.svg import sparkline_svg

        document = sparkline_svg([1.0, None, 2.0, 3.0], [False, False, False, True])
        assert document.lstrip().startswith("<?xml")
        assert "<polyline" in document
        assert "circle" in document  # the flagged point

    def test_sparkline_rejects_mismatched_flags(self):
        from repro.analysis.svg import sparkline_svg

        with pytest.raises(ValueError):
            sparkline_svg([1.0, 2.0], [True])

    def test_sparkline_all_gaps(self):
        from repro.analysis.svg import sparkline_svg

        document = sparkline_svg([None, None])
        assert "<svg" in document


def test_report_title_mentions_report():
    assert re.search(r"report", REPORT_TITLE)


class TestPlanQualitySection:
    """The calibration section renders iff runs carry plans.jsonl."""

    @pytest.fixture()
    def plan_registry(self, tmp_path):
        import json

        from repro.obs.planquality import CandidateRecord, PlanRecord

        runs = tmp_path / "runs"
        for name, created, actual in (("run-x", 1000.0, 10), ("run-y", 2000.0, 40)):
            run_dir = runs / name
            run_dir.mkdir(parents=True)
            (run_dir / "manifest.json").write_text(
                json.dumps(
                    {
                        "run_id": name,
                        "created_unix": created,
                        "git_sha": f"{name}sha",
                        "extra": {"failed": [], "mode": "smoke"},
                    }
                )
            )
            record = PlanRecord(
                query="q",
                predicate="equality",
                left="R",
                right="S",
                left_size=2,
                right_size=2,
                algorithm="hash",
                reason="r",
                estimated_output=10.0,
                candidates=[CandidateRecord("hash", 1.0, "r", chosen=True)],
                actual_output=actual,
                shadow_checked=True,
                best_algorithm="hash",
                regret=0,
            )
            (run_dir / "plans.jsonl").write_text(
                json.dumps(record.as_dict(), sort_keys=True) + "\n"
            )
        with RunRegistry() as reg:
            reg.rebuild(runs)
            yield reg

    def test_calibration_section_rendered(self, plan_registry):
        document = render_report(plan_registry)
        assert '<h2 id="plan-quality">Plan quality &amp; calibration</h2>' in document
        assert '<h3 id="plan-equality">' in document
        # The per-predicate table carries the calibration columns and
        # the q-error trend verdict (run-y quadruples the q-error).
        assert "<th>q-error p90</th>" in document
        assert "<th>choice accuracy</th>" in document
        assert "verdict-REGRESSION" in document
        assert "100%" in document  # choice accuracy formatted as percent
        checker = _StructureChecker()
        checker.feed(document)
        assert checker.problems == []

    def test_section_absent_without_plan_records(self, registry):
        document = render_report(registry, link_root=FIXTURES)
        assert "Plan quality" not in document
