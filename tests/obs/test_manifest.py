"""Tests for run manifests (repro.obs.manifest)."""

import json

from repro.obs import manifest, metrics, trace
from repro.obs.manifest import RunManifest, git_sha, make_run_id, write_run


class TestProvenance:
    def test_git_sha_in_repo(self):
        sha = git_sha()
        # This test-suite runs inside the repo checkout; a -dirty suffix
        # marks uncommitted changes.
        base = sha.removesuffix("-dirty")
        assert sha == "unknown" or (len(base) == 40 and all(
            c in "0123456789abcdef" for c in base
        ))

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"

    def test_make_run_id_distinct_and_prefixed(self):
        a = make_run_id("bench", 0)
        assert a.startswith("bench-")
        assert a.endswith("-s0")

    def test_collect_fills_environment(self):
        m = RunManifest.collect("rid", seed=7, args={"smoke": True})
        assert m.run_id == "rid"
        assert m.seed == 7
        assert m.args == {"smoke": True}
        assert m.python_version.count(".") >= 1
        assert m.platform


class TestWriteRun:
    def test_writes_three_artifacts(self, tmp_path):
        metrics.enable()
        metrics.inc("example.counter", 5)
        run_dir = write_run("run-1", runs_dir=tmp_path, seed=3, args={"k": 1})
        assert run_dir == tmp_path / "run-1"
        for name in ("manifest.json", "metrics.json", "report.md"):
            assert (run_dir / name).exists(), name

    def test_manifest_contents(self, tmp_path):
        run_dir = write_run("run-2", runs_dir=tmp_path, seed=11, args={"a": 2})
        payload = json.loads((run_dir / "manifest.json").read_text())
        assert payload["run_id"] == "run-2"
        assert payload["seed"] == 11
        assert payload["args"] == {"a": 2}
        assert "git_sha" in payload
        assert "python_version" in payload

    def test_metrics_json_matches_registry(self, tmp_path):
        metrics.enable()
        metrics.inc("a", 1)
        run_dir = write_run("run-3", runs_dir=tmp_path)
        assert (run_dir / "metrics.json").read_text() == metrics.to_json()

    def test_metrics_json_byte_identical_across_same_seed_runs(self, tmp_path):
        def one_run(run_id):
            metrics.reset()
            metrics.enable()
            metrics.inc("solver.search_nodes", 17)
            metrics.observe("engine.output_size", 4)
            return write_run(run_id, runs_dir=tmp_path, seed=5)

        first = one_run("run-a") / "metrics.json"
        second = one_run("run-b") / "metrics.json"
        assert first.read_bytes() == second.read_bytes()

    def test_report_includes_tables_and_metrics(self, tmp_path):
        from repro.analysis.report import Table

        metrics.enable()
        trace.enable()
        with trace.span("work.unit"):
            metrics.inc("work.items", 2)
        table = Table(["k", "v"], title="Extra table")
        table.add_row(["answer", 42])
        run_dir = write_run("run-4", runs_dir=tmp_path, tables=[table])
        report = (run_dir / "report.md").read_text()
        assert "Extra table" in report
        assert "work.items" in report
        assert "work.unit" in report  # slowest-spans table

    def test_render_report_without_spans_skips_span_table(self):
        m = RunManifest.collect("rid")
        text = manifest.render_report(m, {"counters": {}, "gauges": {}, "histograms": {}})
        assert "Slowest spans" not in text


class TestAtomicWrites:
    def test_write_atomic_writes_content_and_no_temp(self, tmp_path):
        target = manifest.write_atomic(tmp_path / "out.json", '{"a": 1}\n')
        assert target.read_text() == '{"a": 1}\n'
        assert list(tmp_path.iterdir()) == [target]

    def test_interrupted_write_leaves_previous_content(self, tmp_path, monkeypatch):
        target = tmp_path / "manifest.json"
        target.write_text("previous complete content\n")

        import os as _os

        real_fsync = _os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(manifest.os, "fsync", exploding_fsync)
        import pytest

        with pytest.raises(OSError, match="simulated crash"):
            manifest.write_atomic(target, "half-writ")
        # the previous file survives intact and no temp file is left behind
        assert target.read_text() == "previous complete content\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_interrupted_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            manifest.os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("boom"))
        )
        import pytest

        with pytest.raises(OSError):
            manifest.write_atomic(tmp_path / "fresh.json", "data")
        assert list(tmp_path.iterdir()) == []

    def test_write_run_artifacts_are_atomic(self, tmp_path, monkeypatch):
        """A run killed while writing artifacts never leaves a truncated
        JSON file — the registry's partial-dir tolerance is the backstop,
        but atomicity means it is rarely needed."""
        calls = {"n": 0}
        real_replace = manifest.os.replace

        def failing_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 2:  # die while committing metrics.json
                raise OSError("simulated kill")
            return real_replace(src, dst)

        monkeypatch.setattr(manifest.os, "replace", failing_replace)
        import pytest

        metrics.enable()
        with pytest.raises(OSError):
            write_run("run-killed", runs_dir=tmp_path)
        run_dir = tmp_path / "run-killed"
        # manifest.json committed whole; metrics.json absent, not truncated
        json.loads((run_dir / "manifest.json").read_text())
        assert not (run_dir / "metrics.json").exists()
        leftovers = [p.name for p in run_dir.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []


class TestEventsArtifact:
    def test_write_run_emits_events_jsonl_when_events_recorded(self, tmp_path):
        from repro.obs import events

        events.enable()
        events.set_run_id("run-ev")
        events.emit(events.EVENT_RUN_START, mode="test")
        run_dir = write_run("run-ev", runs_dir=tmp_path)
        text = (run_dir / "events.jsonl").read_text()
        assert events.validate_jsonl(text) == []
        (record,) = [json.loads(line) for line in text.splitlines()]
        assert record["name"] == "run.start"
        assert record["run_id"] == "run-ev"

    def test_write_run_skips_events_jsonl_when_log_empty(self, tmp_path):
        run_dir = write_run("run-quiet", runs_dir=tmp_path)
        assert not (run_dir / "events.jsonl").exists()
