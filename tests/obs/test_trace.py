"""Tests for the span tracer (repro.obs.trace)."""

from repro.obs import trace


class TestDisabled:
    def test_disabled_by_default(self):
        assert not trace.is_enabled()

    def test_disabled_span_records_nothing(self):
        with trace.span("nothing"):
            pass
        assert trace.spans() == []

    def test_disabled_span_yields_none(self):
        with trace.span("nothing") as handle:
            assert handle is None

    def test_disabled_span_is_shared_singleton(self):
        assert trace.span("a") is trace.span("b")


class TestRecording:
    def test_flat_spans(self):
        trace.enable()
        with trace.span("one"):
            pass
        with trace.span("two"):
            pass
        names = [s.name for s in trace.spans()]
        assert names == ["one", "two"]
        assert all(s.depth == 0 for s in trace.spans())

    def test_nesting_depth_and_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                with trace.span("leaf"):
                    pass
        outer, inner, leaf = trace.spans()
        assert (outer.depth, inner.depth, leaf.depth) == (0, 1, 2)
        assert inner.parent_index == outer.index
        assert leaf.parent_index == inner.index
        assert outer.parent_index is None

    def test_durations_nonnegative_and_nested_within_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                sum(range(1000))
        outer, inner = trace.spans()
        assert inner.duration_ns >= 0
        assert outer.duration_ns >= inner.duration_ns

    def test_attrs_recorded(self):
        trace.enable()
        with trace.span("solve", method="exact", m=7) as s:
            pass
        assert s.attrs == {"method": "exact", "m": 7}

    def test_span_yields_span_object(self):
        trace.enable()
        with trace.span("x") as s:
            assert s.name == "x"

    def test_exception_still_closes_span(self):
        trace.enable()
        try:
            with trace.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (s,) = trace.spans()
        assert s.end_ns is not None


class TestErrorMarking:
    def test_exception_marks_span_as_error(self):
        trace.enable()
        try:
            with trace.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (s,) = trace.spans()
        assert s.attrs["error"] is True
        assert s.attrs["error_type"] == "ValueError"

    def test_exception_does_not_swallow(self):
        import pytest

        trace.enable()
        with pytest.raises(KeyError):
            with trace.span("boom"):
                raise KeyError("k")

    def test_only_the_raising_span_is_marked(self):
        trace.enable()
        try:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
                raise RuntimeError("after inner closed")
        except RuntimeError:
            pass
        outer, inner = trace.spans()
        assert outer.attrs.get("error") is True
        assert outer.attrs["error_type"] == "RuntimeError"
        assert "error" not in inner.attrs

    def test_error_propagates_through_nested_spans(self):
        trace.enable()
        try:
            with trace.span("outer"):
                with trace.span("inner"):
                    raise OSError("disk")
        except OSError:
            pass
        outer, inner = trace.spans()
        # The exception crossed both spans, so both are marked.
        assert inner.attrs["error_type"] == "OSError"
        assert outer.attrs["error_type"] == "OSError"

    def test_success_leaves_no_error_attrs(self):
        trace.enable()
        with trace.span("fine", method="exact"):
            pass
        (s,) = trace.spans()
        assert s.attrs == {"method": "exact"}

    def test_error_attrs_survive_export(self):
        from repro.obs.export import to_chrome_trace

        trace.enable()
        try:
            with trace.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (event,) = to_chrome_trace(trace.spans())["traceEvents"]
        assert event["args"]["error"] is True
        assert event["args"]["error_type"] == "ValueError"

    def test_total_ns_sums_by_name(self):
        trace.enable()
        for _ in range(3):
            with trace.span("repeated"):
                pass
        assert trace.TRACER.total_ns("repeated") == sum(
            s.duration_ns for s in trace.spans()
        )

    def test_reset_drops_spans_keeps_flag(self):
        trace.enable()
        with trace.span("x"):
            pass
        trace.reset()
        assert trace.spans() == []
        assert trace.is_enabled()

    def test_as_dicts_shape(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner", k=1):
                pass
        dicts = trace.as_dicts()
        assert [d["name"] for d in dicts] == ["outer", "inner"]
        assert dicts[1]["parent"] == dicts[0]["index"]
        assert dicts[1]["attrs"] == {"k": 1}
        assert all(d["duration_ns"] >= 0 for d in dicts)

    def test_render_tree_indents_children(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        rendered = trace.render_tree()
        lines = rendered.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")


class TestPrivateTracer:
    def test_independent_of_global(self):
        private = trace.Tracer()
        private.enable()
        with private.span("mine"):
            pass
        assert [s.name for s in private.spans()] == ["mine"]
        assert trace.spans() == []
