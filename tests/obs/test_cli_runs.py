"""CLI surface of the cross-run observability layer: ``repro runs
{index,list,show,compare,trend}``, ``repro report --html``, and the bench
command's trajectory-feed publishing."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "runs"


@pytest.fixture()
def runs_dir(tmp_path):
    target = tmp_path / "runs"
    shutil.copytree(FIXTURES, target)
    return target


class TestRunsList:
    def test_lists_all_runs_with_status(self, runs_dir, capsys):
        assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        for run_id in ("run-a-baseline", "run-b-steady", "run-c-regressed",
                       "run-d-partial"):
            assert run_id in out
        assert "partial" in out and "failed" in out

    def test_limit(self, runs_dir, capsys):
        assert main(["runs", "list", "--runs-dir", str(runs_dir),
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "run-d-partial" in out
        assert "run-a-baseline" not in out

    def test_empty_runs_dir(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "none")]) == 0
        assert "no runs" in capsys.readouterr().out


class TestRunsIndex:
    def test_index_persists_database(self, runs_dir, capsys):
        assert main(["runs", "index", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "indexed 4 run(s)" in out
        assert (runs_dir / "registry.db").is_file()
        assert "run-d-partial" in out  # partial runs are called out


class TestRunsShow:
    def test_show_includes_provenance_and_events(self, runs_dir, capsys):
        assert main(["runs", "show", "run-a-baseline",
                     "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "aaaa111fixture" in out
        assert "alpha" in out and "beta" in out
        assert "run.start: 1" in out  # events.jsonl name counts

    def test_show_partial_lists_problems(self, runs_dir, capsys):
        assert main(["runs", "show", "run-d-partial",
                     "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "partial" in out
        assert "manifest.json" in out

    def test_show_unknown_run_exits_2(self, runs_dir, capsys):
        assert main(["runs", "show", "no-such",
                     "--runs-dir", str(runs_dir)]) == 2


class TestRunsCompare:
    def test_regression_exits_nonzero(self, runs_dir, capsys):
        code = main(["runs", "compare", "run-a-baseline", "run-c-regressed",
                     "--runs-dir", str(runs_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out and "FAILED" in out

    def test_clean_compare_exits_zero(self, runs_dir, capsys):
        code = main(["runs", "compare", "run-a-baseline", "run-b-steady",
                     "--runs-dir", str(runs_dir)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_unknown_run_exits_2(self, runs_dir):
        assert main(["runs", "compare", "run-a-baseline", "no-such",
                     "--runs-dir", str(runs_dir)]) == 2


class TestRunsTrend:
    def test_trend_prints_series_with_verdicts(self, runs_dir, capsys):
        assert main(["runs", "trend", "--scenario", "alpha",
                     "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 run(s)" in out
        assert "baseline" in out
        assert "REGRESSION" in out
        assert "1.82x" in out  # 20ms vs 11ms

    def test_trend_unknown_scenario_exits_2_and_lists_known(
        self, runs_dir, capsys
    ):
        assert main(["runs", "trend", "--scenario", "nope",
                     "--runs-dir", str(runs_dir)]) == 2
        err = capsys.readouterr().err
        assert "alpha" in err and "beta" in err

    def test_trend_custom_tolerance(self, runs_dir, capsys):
        assert main(["runs", "trend", "--scenario", "alpha",
                     "--tolerance", "0.05", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        # with a 5% gate the 1.1x step is also flagged
        assert out.count("REGRESSION") >= 2


class TestRunsTraceRequest:
    TRACE_ID = "ab" * 16

    def _write_trace(self, runs_dir, request_id="req-9"):
        records = [
            {
                "name": "server.request",
                "index": 0,
                "parent": None,
                "depth": 0,
                "start_unix": 100.0,
                "duration_ns": 5_000_000,
                "attrs": {"id": request_id, "op": "solve"},
                "trace_id": self.TRACE_ID,
                "remote_parent": None,
            },
            {
                "name": "solver.solve",
                "index": 1,
                "parent": 0,
                "depth": 1,
                "start_unix": 100.001,
                "duration_ns": 2_000_000,
                "attrs": {"origin": "worker"},
                "trace_id": self.TRACE_ID,
                "remote_parent": None,
            },
        ]
        path = runs_dir / "run-a-baseline" / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def test_assembles_one_requests_chrome_trace(
        self, runs_dir, tmp_path, capsys
    ):
        self._write_trace(runs_dir)
        target = tmp_path / "req.json"
        assert main(["runs", "trace-request", "run-a-baseline", "req-9",
                     "-o", str(target), "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 span(s)" in out
        assert self.TRACE_ID in out
        assert "perfetto" in out
        document = json.loads(target.read_text())
        assert document["otherData"]["request_id"] == "req-9"
        assert [e["name"] for e in document["traceEvents"]] == [
            "server.request", "solver.solve",
        ]
        assert {e["pid"] for e in document["traceEvents"]} == {1, 2}

    def test_unknown_request_id_exits_2(self, runs_dir, capsys):
        self._write_trace(runs_dir)
        assert main(["runs", "trace-request", "run-a-baseline", "nope",
                     "--runs-dir", str(runs_dir)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_run_exits_2(self, runs_dir, capsys):
        assert main(["runs", "trace-request", "no-such", "r1",
                     "--runs-dir", str(runs_dir)]) == 2

    def test_run_without_trace_jsonl_exits_2_with_hint(self, runs_dir, capsys):
        assert main(["runs", "trace-request", "run-a-baseline", "r1",
                     "--runs-dir", str(runs_dir)]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_garbage_lines_in_trace_jsonl_tolerated(
        self, runs_dir, tmp_path, capsys
    ):
        self._write_trace(runs_dir)
        path = runs_dir / "run-a-baseline" / "trace.jsonl"
        path.write_text(
            "not json\n\n[1, 2]\n" + path.read_text(), encoding="utf-8"
        )
        target = tmp_path / "req.json"
        assert main(["runs", "trace-request", "run-a-baseline", "req-9",
                     "-o", str(target), "--runs-dir", str(runs_dir)]) == 0
        assert "2 span(s)" in capsys.readouterr().out


class TestReport:
    def test_report_writes_self_contained_html(self, runs_dir, tmp_path, capsys):
        target = tmp_path / "report.html"
        assert main(["report", "--html", "-o", str(target),
                     "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 run(s)" in out
        document = target.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "run-a-baseline" in document

    def test_report_default_format_is_html(self, runs_dir, tmp_path):
        target = tmp_path / "r.html"
        assert main(["report", "-o", str(target),
                     "--runs-dir", str(runs_dir)]) == 0
        assert target.is_file()


class TestBenchPublish:
    def test_bench_publishes_trajectory_snapshot(self, tmp_path, capsys):
        publish = tmp_path / "feed"
        code = main([
            "bench", "--smoke", "--scenario", "solver-exact",
            "--runs-dir", str(tmp_path / "runs"),
            "--out-dir", str(tmp_path),
            "--publish-dir", str(publish),
        ])
        assert code == 0
        snapshots = list(publish.glob("BENCH_*.json"))
        assert len(snapshots) == 1
        payload = json.loads(snapshots[0].read_text())
        assert payload["schema"] == "repro-bench/v2"
        assert "trajectory feed" in capsys.readouterr().out

    def test_no_publish_skips_feed(self, tmp_path, capsys):
        publish = tmp_path / "feed"
        code = main([
            "bench", "--smoke", "--scenario", "solver-exact",
            "--runs-dir", str(tmp_path / "runs"),
            "--out-dir", str(tmp_path),
            "--publish-dir", str(publish), "--no-publish",
        ])
        assert code == 0
        assert not publish.exists()
        assert "trajectory feed" not in capsys.readouterr().out

    def test_bench_run_dir_carries_bench_json_and_events(self, tmp_path):
        code = main([
            "bench", "--smoke", "--scenario", "solver-exact",
            "--runs-dir", str(tmp_path / "runs"), "--no-bench-file",
            "--no-publish",
        ])
        assert code == 0
        (run_dir,) = (tmp_path / "runs").iterdir()
        payload = json.loads((run_dir / "bench.json").read_text())
        assert payload["scenarios"][0]["name"] == "solver-exact"
        from repro.obs import events

        text = (run_dir / "events.jsonl").read_text()
        assert events.validate_jsonl(text) == []
        names = [json.loads(line)["name"] for line in text.splitlines()]
        assert names[0] == "run.start"
        assert names[-1] == "run.end"
        assert "bench.scenario_start" in names


class TestRunsPlanQuality:
    @pytest.fixture()
    def plan_runs_dir(self, tmp_path):
        from repro.obs.planquality import CandidateRecord, PlanRecord

        runs = tmp_path / "plan-runs"
        for name, created, actual in (("run-x", 1000.0, 10), ("run-y", 2000.0, 40)):
            run_dir = runs / name
            run_dir.mkdir(parents=True)
            (run_dir / "manifest.json").write_text(
                json.dumps(
                    {
                        "run_id": name,
                        "created_unix": created,
                        "git_sha": f"{name}sha",
                        "extra": {"failed": [], "mode": "smoke"},
                    }
                )
            )
            record = PlanRecord(
                query="q",
                predicate="equality",
                left="R",
                right="S",
                left_size=2,
                right_size=2,
                algorithm="hash",
                reason="r",
                estimated_output=10.0,
                candidates=[CandidateRecord("hash", 1.0, "r", chosen=True)],
                actual_output=actual,
            )
            (run_dir / "plans.jsonl").write_text(
                json.dumps(record.as_dict(), sort_keys=True) + "\n"
            )
        return runs

    def test_trend_table_with_verdicts(self, plan_runs_dir, capsys):
        assert main(
            ["runs", "plan-quality", "--runs-dir", str(plan_runs_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "plan quality: equality / q_p90" in out
        assert "run-x" in out and "run-y" in out
        assert "4.00x" in out  # q-error 1.0 -> 4.0
        assert "REGRESSION" in out

    def test_metric_selection(self, plan_runs_dir, capsys):
        assert main(
            ["runs", "plan-quality", "--runs-dir", str(plan_runs_dir),
             "--metric", "misestimates"]
        ) == 0
        assert "misestimates" in capsys.readouterr().out

    def test_unknown_predicate_exits_two(self, plan_runs_dir, capsys):
        assert main(
            ["runs", "plan-quality", "--runs-dir", str(plan_runs_dir),
             "--predicate", "no-such"]
        ) == 2
        assert "known: equality" in capsys.readouterr().err

    def test_no_plan_records(self, runs_dir, capsys):
        # The perf fixtures carry no plans.jsonl at all.
        assert main(
            ["runs", "plan-quality", "--runs-dir", str(runs_dir)]
        ) == 0
        assert "no plan records indexed" in capsys.readouterr().out
