"""Tests for trace export (repro.obs.export)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import trace
from repro.obs.export import (
    DEFAULT_FILENAMES,
    EXPORT_FORMATS,
    chrome_trace_json,
    export_trace,
    to_chrome_trace,
    to_folded,
    to_jsonl,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.profile import self_times_ns
from repro.obs.trace import Span


def _span(name, index, parent, depth, start, end, **attrs):
    return Span(
        name=name,
        index=index,
        parent_index=parent,
        depth=depth,
        start_unix=0.0,
        start_ns=start,
        end_ns=end,
        attrs=attrs,
    )


# Same preorder-layout forest strategy as tests/obs/test_profile.py: exact
# integer timestamps so round-trip invariants hold with == not approx.

_shapes = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=3), max_leaves=10
)
_names = st.sampled_from(["alpha", "beta", "gamma"])


@st.composite
def forests(draw):
    roots = draw(st.lists(_shapes, min_size=1, max_size=3))
    spans: list[Span] = []

    def build(shape, parent_index, depth, start):
        index = len(spans)
        span = _span(draw(_names), index, parent_index, depth, start, None)
        spans.append(span)
        cursor = start
        for child in shape:
            cursor = build(child, index, depth + 1, cursor)
        span.end_ns = cursor + draw(st.integers(min_value=0, max_value=1000))
        return span.end_ns

    cursor = 0
    for shape in roots:
        cursor = build(shape, None, 0, cursor)
    return spans


def _recorded_spans():
    """A small real trace recorded through the tracer."""
    trace.enable()
    with trace.span("solve", method="exact"):
        with trace.span("solve.component", m=3):
            pass
        with trace.span("solve.component", m=1):
            pass
    with trace.span("report"):
        pass
    return trace.spans()


class TestChromeTrace:
    def test_every_event_is_complete(self):
        payload = to_chrome_trace(_recorded_spans())
        assert payload["traceEvents"]
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_timestamps_relative_to_first_span(self):
        spans = [
            _span("a", 0, None, 0, 5_000, 9_000),
            _span("b", 1, None, 0, 9_000, 12_000),
        ]
        events = to_chrome_trace(spans)["traceEvents"]
        assert events[0]["ts"] == 0
        assert events[1]["ts"] == 4.0  # (9000 - 5000) ns = 4 us
        assert events[0]["dur"] == 4.0

    def test_attrs_and_depth_in_args(self):
        spans = _recorded_spans()
        events = to_chrome_trace(spans)["traceEvents"]
        assert events[0]["args"]["method"] == "exact"
        assert events[1]["args"]["depth"] == 1

    def test_empty_trace_is_valid(self):
        payload = to_chrome_trace([])
        assert payload["traceEvents"] == []
        assert validate_chrome_trace(payload) == []

    def test_json_form_is_deterministic_and_parses(self):
        spans = [_span("a", 0, None, 0, 0, 10)]
        text = chrome_trace_json(spans)
        assert text == chrome_trace_json(spans)
        assert json.loads(text)["otherData"]["spans"] == 1

    @settings(max_examples=50, deadline=None)
    @given(spans=forests())
    def test_generated_traces_always_validate(self, spans):
        assert validate_chrome_trace(to_chrome_trace(spans)) == []

    @settings(max_examples=50, deadline=None)
    @given(spans=forests())
    def test_event_durations_match_span_durations(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        for span, event in zip(spans, events):
            assert event["dur"] == span.duration_ns / 1e3
            assert event["name"] == span.name


class TestFolded:
    def test_stack_lines(self):
        spans = [
            _span("root", 0, None, 0, 0, 100),
            _span("child", 1, 0, 1, 10, 40),
        ]
        lines = to_folded(spans).splitlines()
        assert lines == ["root 70", "root;child 30"]

    def test_repeated_stacks_merge(self):
        spans = [
            _span("root", 0, None, 0, 0, 100),
            _span("child", 1, 0, 1, 0, 30),
            _span("child", 2, 0, 1, 30, 70),
        ]
        lines = to_folded(spans).splitlines()
        assert "root;child 70" in lines

    @settings(max_examples=50, deadline=None)
    @given(spans=forests())
    def test_folded_resums_to_total_self_time(self, spans):
        total = sum(
            int(line.rsplit(" ", 1)[1]) for line in to_folded(spans).splitlines()
        )
        assert total == sum(self_times_ns(spans))

    @settings(max_examples=25, deadline=None)
    @given(spans=forests())
    def test_folded_lines_sorted(self, spans):
        stacks = [line.rsplit(" ", 1)[0] for line in to_folded(spans).splitlines()]
        assert stacks == sorted(stacks)


class TestJsonl:
    def test_one_object_per_span(self):
        spans = _recorded_spans()
        lines = to_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        parsed = [json.loads(line) for line in lines]
        assert [d["name"] for d in parsed] == [s.name for s in spans]
        assert parsed[1]["parent"] == spans[0].index


class TestExportDispatch:
    def test_formats_cover_default_filenames(self):
        assert set(DEFAULT_FILENAMES) == set(EXPORT_FORMATS)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            export_trace("svg")

    def test_defaults_to_global_tracer(self):
        _recorded_spans()
        payload = json.loads(export_trace("perfetto"))
        assert len(payload["traceEvents"]) == len(trace.spans())

    def test_write_trace_round_trip(self, tmp_path):
        spans = _recorded_spans()
        target = write_trace(tmp_path / "t.json", "perfetto", spans)
        assert validate_chrome_trace(json.loads(target.read_text())) == []


class TestValidateChromeTrace:
    def _event(self, **overrides):
        event = {"name": "n", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        event.update(overrides)
        return event

    def test_bare_event_list_accepted(self):
        assert validate_chrome_trace([self._event()]) == []

    def test_non_container_rejected(self):
        assert validate_chrome_trace(42) == [
            "trace: top level must be an object or an event list"
        ]

    def test_trace_events_must_be_list(self):
        assert validate_chrome_trace({"traceEvents": "no"}) == [
            "trace: 'traceEvents' must be a list"
        ]

    def test_bad_name_ts_and_tracks_reported(self):
        problems = validate_chrome_trace(
            [self._event(name="", ts=-1, pid="p", tid=None)]
        )
        assert len(problems) == 4

    def test_complete_event_needs_duration(self):
        (problem,) = validate_chrome_trace([self._event(dur=None)])
        assert "non-negative 'dur'" in problem

    def test_unknown_phase_reported(self):
        (problem,) = validate_chrome_trace([self._event(ph="M")])
        assert "'ph' is 'M'" in problem

    def test_matched_begin_end_pair_ok(self):
        begin = self._event(ph="B")
        end = self._event(ph="E", ts=5)
        del begin["dur"], end["dur"]
        assert validate_chrome_trace([begin, end]) == []

    def test_end_without_begin(self):
        end = self._event(ph="E")
        del end["dur"]
        (problem,) = validate_chrome_trace([end])
        assert "no matching 'B'" in problem

    def test_mismatched_end_name(self):
        begin = self._event(ph="B", name="outer")
        end = self._event(ph="E", name="other", ts=5)
        del begin["dur"], end["dur"]
        (problem,) = validate_chrome_trace([begin, end])
        assert "closes span 'outer'" in problem

    def test_unclosed_begin_reported(self):
        begin = self._event(ph="B")
        del begin["dur"]
        (problem,) = validate_chrome_trace([begin])
        assert "never closed" in problem

    def test_begin_end_tracked_per_pid_tid(self):
        b1 = self._event(ph="B", name="a", pid=1)
        b2 = self._event(ph="B", name="b", pid=2)
        e1 = self._event(ph="E", name="a", pid=1, ts=5)
        e2 = self._event(ph="E", name="b", pid=2, ts=5)
        for event in (b1, b2, e1, e2):
            del event["dur"]
        # Interleaved across tracks, nested correctly within each.
        assert validate_chrome_trace([b1, b2, e1, e2]) == []

    def test_context_label_used_in_messages(self):
        (problem,) = validate_chrome_trace([self._event(ph="Z")], context="f.json")
        assert problem.startswith("f.json.traceEvents[0]")


def _request_records(request_id="req-1", trace_id="ab" * 16):
    """trace.jsonl-style records for one traced request plus a stranger."""
    return [
        {
            "name": "server.request",
            "index": 0,
            "parent": None,
            "depth": 0,
            "start_unix": 100.0,
            "duration_ns": 5_000_000,
            "attrs": {"id": request_id, "op": "solve"},
            "trace_id": trace_id,
            "remote_parent": None,
        },
        {
            "name": "server.dispatch",
            "index": 1,
            "parent": 0,
            "depth": 1,
            "start_unix": 100.001,
            "duration_ns": 3_000_000,
            "attrs": {},
            "trace_id": trace_id,
            "remote_parent": None,
        },
        {
            "name": "solver.solve",
            "index": 2,
            "parent": 1,
            "depth": 2,
            "start_unix": 100.002,
            "duration_ns": 1_000_000,
            "attrs": {"origin": "worker"},
            "trace_id": trace_id,
            "remote_parent": None,
        },
        # A different request entirely — must be excluded.
        {
            "name": "server.request",
            "index": 3,
            "parent": None,
            "depth": 0,
            "start_unix": 200.0,
            "duration_ns": 1_000,
            "attrs": {"id": "other", "op": "ping"},
            "trace_id": "cd" * 16,
            "remote_parent": None,
        },
    ]


class TestRequestTrace:
    def test_selects_only_the_requests_trace(self):
        from repro.obs.export import request_trace

        document = request_trace(_request_records(), "req-1")
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["request_id"] == "req-1"
        assert document["otherData"]["trace_ids"] == ["ab" * 16]
        names = [event["name"] for event in document["traceEvents"]]
        assert names == ["server.request", "server.dispatch", "solver.solve"]
        assert "other" not in {
            event["args"].get("id") for event in document["traceEvents"]
        }

    def test_worker_origin_spans_get_their_own_pid(self):
        from repro.obs.export import request_trace

        document = request_trace(_request_records(), "req-1")
        by_name = {e["name"]: e for e in document["traceEvents"]}
        assert by_name["server.request"]["pid"] == 1
        assert by_name["solver.solve"]["pid"] == 2

    def test_timestamps_relative_to_earliest_selected_span(self):
        from repro.obs.export import request_trace

        document = request_trace(_request_records(), "req-1")
        ts = [event["ts"] for event in document["traceEvents"]]
        assert ts[0] == 0.0
        assert ts == sorted(ts)

    def test_unknown_request_id_raises(self):
        from repro.obs.export import request_trace

        with pytest.raises(ValueError, match="not found"):
            request_trace(_request_records(), "no-such-request")

    def test_garbage_records_are_skipped(self):
        from repro.obs.export import request_trace

        records = [None, "junk", {"no": "trace_id"}, *_request_records()]
        document = request_trace(records, "req-1")
        assert len(document["traceEvents"]) == 3
