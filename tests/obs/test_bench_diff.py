"""Tests for the bench regression gate (tools/bench_diff.py)."""

import copy
import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _load_differ():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import bench_diff
    finally:
        sys.path.pop(0)
    return bench_diff


def _payload(scenarios, mode="smoke", schema="repro-bench/v2"):
    return {
        "schema": schema,
        "run_id": "r",
        "mode": mode,
        "seed": 0,
        "git_sha": "abc1234",
        "scenarios": scenarios,
    }


def _scenario(name, best_ns, status="ok", **extra):
    scenario = {
        "name": name,
        "status": status,
        "wall_ns": {"best": best_ns, "mean": best_ns * 1.1},
        **extra,
    }
    if status != "ok":
        scenario["wall_ns"] = {}
    return scenario


def _write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return str(path)


BASE = _payload([_scenario("alpha", 1_000_000), _scenario("beta", 2_000_000)])


class TestDiffScenarios:
    def test_identical_payloads_no_regressions(self):
        differ = _load_differ()
        rows, regressions = differ.diff_scenarios(BASE, copy.deepcopy(BASE))
        assert regressions == []
        assert [row[4] for row in rows] == ["ok", "ok"]

    def test_slowdown_beyond_tolerance_regresses(self):
        differ = _load_differ()
        slowed = _payload(
            [_scenario("alpha", 2_000_000), _scenario("beta", 2_000_000)]
        )
        rows, regressions = differ.diff_scenarios(BASE, slowed, tolerance=0.25)
        assert len(regressions) == 1
        assert "alpha" in regressions[0]
        assert rows[0][4] == "REGRESSION"

    def test_slowdown_within_tolerance_ok(self):
        differ = _load_differ()
        slowed = _payload(
            [_scenario("alpha", 1_200_000), _scenario("beta", 2_000_000)]
        )
        _, regressions = differ.diff_scenarios(BASE, slowed, tolerance=0.25)
        assert regressions == []

    def test_speedup_reported_not_regressed(self):
        differ = _load_differ()
        faster = _payload(
            [_scenario("alpha", 100_000), _scenario("beta", 2_000_000)]
        )
        rows, regressions = differ.diff_scenarios(BASE, faster)
        assert regressions == []
        assert rows[0][4] == "faster"

    def test_missing_scenario_is_a_regression(self):
        differ = _load_differ()
        partial = _payload([_scenario("alpha", 1_000_000)])
        rows, regressions = differ.diff_scenarios(BASE, partial)
        assert any("not in candidate" in r for r in regressions)
        assert ["beta", "MISSING"] == [rows[1][0], rows[1][4]]

    def test_new_scenario_is_informational(self):
        differ = _load_differ()
        extended = _payload(
            [
                _scenario("alpha", 1_000_000),
                _scenario("beta", 2_000_000),
                _scenario("gamma", 500_000),
            ]
        )
        rows, regressions = differ.diff_scenarios(BASE, extended)
        assert regressions == []
        assert [row[4] for row in rows] == ["ok", "ok", "new"]

    def test_candidate_failure_is_a_regression(self):
        differ = _load_differ()
        failing = _payload(
            [
                _scenario("alpha", 0, status="failed", error="MemoryFault: page 3"),
                _scenario("beta", 2_000_000),
            ]
        )
        rows, regressions = differ.diff_scenarios(BASE, failing)
        assert len(regressions) == 1
        assert "MemoryFault" in regressions[0]
        assert rows[0][4] == "FAILED"

    def test_baseline_failure_skipped(self):
        differ = _load_differ()
        base = _payload(
            [
                _scenario("alpha", 0, status="failed", error="boom"),
                _scenario("beta", 2_000_000),
            ]
        )
        fresh = _payload(
            [_scenario("alpha", 9_000_000), _scenario("beta", 2_000_000)]
        )
        rows, regressions = differ.diff_scenarios(base, fresh)
        assert regressions == []
        assert rows[0][4] == "baseline-failed"

    def test_mode_mismatch_refused(self):
        differ = _load_differ()
        with pytest.raises(differ.BenchDiffError, match="mode mismatch"):
            differ.diff_scenarios(BASE, _payload([], mode="full"))

    def test_v1_payload_without_status_accepted(self):
        differ = _load_differ()
        v1 = _payload(
            [
                {"name": "alpha", "wall_ns": {"best": 1_000_000, "mean": 1_100_000}},
                {"name": "beta", "wall_ns": {"best": 2_000_000, "mean": 2_200_000}},
            ],
            schema="repro-bench/v1",
        )
        _, regressions = differ.diff_scenarios(v1, copy.deepcopy(v1))
        assert regressions == []

    def test_unknown_metric_rejected(self):
        differ = _load_differ()
        with pytest.raises(differ.BenchDiffError, match="metric"):
            differ.diff_scenarios(BASE, copy.deepcopy(BASE), metric="median")

    def test_mean_metric_compares_mean(self):
        differ = _load_differ()
        # mean regressed 3x, best unchanged: only --metric mean should fire.
        fresh = copy.deepcopy(BASE)
        fresh["scenarios"][0]["wall_ns"]["mean"] = 3_300_000
        _, by_best = differ.diff_scenarios(BASE, fresh, metric="best")
        _, by_mean = differ.diff_scenarios(BASE, fresh, metric="mean")
        assert by_best == []
        assert len(by_mean) == 1


class TestMain:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        differ = _load_differ()
        base = _write(tmp_path, "base.json", BASE)
        assert differ.main([base, base]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        differ = _load_differ()
        base = _write(tmp_path, "base.json", BASE)
        slowed = _write(
            tmp_path,
            "new.json",
            _payload([_scenario("alpha", 9_000_000), _scenario("beta", 2_000_000)]),
        )
        assert differ.main([base, slowed]) == 1
        assert "regression" in capsys.readouterr().err

    def test_wider_tolerance_absorbs_slowdown(self, tmp_path):
        differ = _load_differ()
        base = _write(tmp_path, "base.json", BASE)
        slowed = _write(
            tmp_path,
            "new.json",
            _payload([_scenario("alpha", 1_800_000), _scenario("beta", 2_000_000)]),
        )
        assert differ.main([base, slowed]) == 1
        assert differ.main([base, slowed, "--tolerance", "1.0"]) == 0

    def test_unreadable_input_exits_two(self, tmp_path):
        differ = _load_differ()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = _write(tmp_path, "base.json", BASE)
        assert differ.main([str(bad), good]) == 2

    def test_non_bench_payload_exits_two(self, tmp_path):
        differ = _load_differ()
        not_bench = _write(tmp_path, "x.json", {"hello": "world"})
        good = _write(tmp_path, "base.json", BASE)
        assert differ.main([not_bench, good]) == 2

    def test_negative_tolerance_exits_two(self, tmp_path):
        differ = _load_differ()
        base = _write(tmp_path, "base.json", BASE)
        assert differ.main([base, base, "--tolerance", "-0.5"]) == 2

    def test_mode_mismatch_exits_two(self, tmp_path, capsys):
        differ = _load_differ()
        base = _write(tmp_path, "base.json", BASE)
        full = _write(tmp_path, "full.json", _payload([], mode="full"))
        assert differ.main([base, full]) == 2
        assert "mode mismatch" in capsys.readouterr().err
