"""Tests for self-time attribution (repro.obs.profile)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import trace
from repro.obs.profile import (
    Profile,
    profile,
    profile_spans,
    self_times_ns,
)
from repro.obs.trace import Span


def _span(name, index, parent, depth, start, end, **attrs):
    """A hand-built span with explicit (deterministic) timestamps."""
    return Span(
        name=name,
        index=index,
        parent_index=parent,
        depth=depth,
        start_unix=0.0,
        start_ns=start,
        end_ns=end,
        attrs=attrs,
    )


# -- forest strategy --------------------------------------------------------
# Hypothesis draws a recursive tree shape plus per-node self time; the
# builder lays spans out preorder with exact integer timestamps, so every
# profile quantity has a known expected value.

_shapes = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=3), max_leaves=12
)
_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])


@st.composite
def forests(draw):
    roots = draw(st.lists(_shapes, min_size=1, max_size=3))
    spans: list[Span] = []

    def build(shape, parent_index, depth, start):
        index = len(spans)
        name = draw(_names)
        own = draw(st.integers(min_value=0, max_value=1000))
        span = _span(name, index, parent_index, depth, start, None)
        spans.append(span)
        cursor = start
        for child in shape:
            cursor = build(child, index, depth + 1, cursor)
        # Children consumed [start, cursor); own self time extends the end.
        span.end_ns = cursor + own
        return span.end_ns

    cursor = 0
    for shape in roots:
        cursor = build(shape, None, 0, cursor)
    return spans


class TestSelfTimes:
    def test_parent_minus_children(self):
        spans = [
            _span("parent", 0, None, 0, 0, 100),
            _span("child", 1, 0, 1, 10, 40),
        ]
        assert self_times_ns(spans) == [70, 30]

    def test_only_direct_children_subtract(self):
        spans = [
            _span("a", 0, None, 0, 0, 100),
            _span("b", 1, 0, 1, 0, 80),
            _span("c", 2, 1, 2, 0, 50),
        ]
        # a loses b's 80 (not c's 50); b loses c's 50.
        assert self_times_ns(spans) == [20, 30, 50]

    def test_negative_attribution_clamped(self):
        spans = [
            _span("parent", 0, None, 0, 0, 10),
            _span("child", 1, 0, 1, 0, 50),  # inconsistent by construction
        ]
        assert self_times_ns(spans) == [0, 50]

    def test_open_span_contributes_zero(self):
        spans = [_span("open", 0, None, 0, 0, None)]
        assert self_times_ns(spans) == [0]

    @settings(max_examples=50, deadline=None)
    @given(spans=forests())
    def test_self_times_partition_root_durations(self, spans):
        total_self = sum(self_times_ns(spans))
        total_root = sum(s.duration_ns for s in spans if s.depth == 0)
        assert total_self == total_root


class TestProfileAggregation:
    def test_rows_grouped_by_name(self):
        spans = [
            _span("solve", 0, None, 0, 0, 100),
            _span("solve", 1, None, 0, 100, 300),
            _span("plan", 2, None, 0, 300, 310),
        ]
        result = profile_spans(spans)
        assert [r.name for r in result.rows] == ["solve", "plan"]
        solve = result.row("solve")
        assert solve.calls == 2
        assert solve.self_ns == 300
        assert solve.max_self_ns == 200

    def test_rows_sorted_by_self_time_then_name(self):
        spans = [
            _span("b", 0, None, 0, 0, 50),
            _span("a", 1, None, 0, 50, 100),
            _span("c", 2, None, 0, 100, 200),
        ]
        result = profile_spans(spans)
        assert [r.name for r in result.rows] == ["c", "a", "b"]

    def test_total_and_self_differ_for_parents(self):
        spans = [
            _span("parent", 0, None, 0, 0, 100),
            _span("child", 1, 0, 1, 0, 90),
        ]
        result = profile_spans(spans)
        parent = result.row("parent")
        assert parent.total_ns == 100
        assert parent.self_ns == 10

    def test_empty_profile(self):
        result = profile_spans([])
        assert result.rows == ()
        assert result.total_self_ns == 0
        assert result.span_count == 0

    def test_top_limits_rows(self):
        spans = [
            _span(name, i, None, 0, i * 10, i * 10 + 10)
            for i, name in enumerate(["a", "b", "c", "d"])
        ]
        result = profile_spans(spans)
        assert len(result.top(2)) == 2

    def test_table_renders_share_of_total(self):
        spans = [
            _span("hot", 0, None, 0, 0, 75),
            _span("cold", 1, None, 0, 75, 100),
        ]
        rendered = profile_spans(spans).table().render()
        assert "hot" in rendered
        assert "75" in rendered  # 75% share of self time

    def test_as_dict_round_trips_through_json(self):
        import json

        spans = [_span("x", 0, None, 0, 0, 10)]
        payload = json.loads(json.dumps(profile_spans(spans).as_dict()))
        assert payload["rows"][0]["name"] == "x"
        assert payload["total_self_ns"] == 10

    @settings(max_examples=50, deadline=None)
    @given(spans=forests())
    def test_aggregation_conserves_self_time(self, spans):
        result = profile_spans(spans)
        assert sum(r.self_ns for r in result.rows) == result.total_self_ns
        assert sum(r.calls for r in result.rows) == len(spans)

    @settings(max_examples=25, deadline=None)
    @given(spans=forests())
    def test_profile_deterministic(self, spans):
        assert profile_spans(spans) == profile_spans(list(spans))


class TestGlobalProfile:
    def test_profile_of_global_tracer(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                sum(range(100))
        result = profile()
        assert isinstance(result, Profile)
        assert {r.name for r in result.rows} == {"outer", "inner"}
        assert result.total_self_ns == sum(
            s.duration_ns for s in trace.spans() if s.depth == 0
        )

    def test_real_workload_has_nonzero_self_time(self):
        from repro.core.solvers.registry import solve
        from repro.graphs.generators import random_connected_bipartite

        trace.enable()
        solve(random_connected_bipartite(3, 3, 8, seed=0), "exact")
        result = profile()
        assert result.total_self_ns > 0
        assert result.row("solver.exact") is not None
