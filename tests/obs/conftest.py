"""Shared fixtures for the observability tests.

Every test in this package runs against clean, disabled global
collectors; state is restored afterwards so observability tests cannot
leak spans/counters into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.joins.join_graph import clear_join_graph_cache
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs_trace.disable()
    obs_metrics.disable()
    obs_trace.reset()
    obs_metrics.reset()
    clear_join_graph_cache()
    yield
    obs_trace.disable()
    obs_metrics.disable()
    obs_trace.reset()
    obs_metrics.reset()
    clear_join_graph_cache()
