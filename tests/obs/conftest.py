"""Shared fixtures for the observability tests.

Every test in this package runs against clean, disabled global
collectors; state is restored afterwards so observability tests cannot
leak spans/counters into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.joins.join_graph import clear_join_graph_cache
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import planquality as obs_plans
from repro.obs import trace as obs_trace


def _reset_collectors() -> None:
    obs_trace.disable()
    obs_metrics.disable()
    obs_events.disable()
    obs_plans.disable()
    obs_trace.reset()
    obs_metrics.reset()
    obs_events.reset()
    obs_plans.reset()
    clear_join_graph_cache()


@pytest.fixture(autouse=True)
def clean_obs_state():
    _reset_collectors()
    yield
    _reset_collectors()
