"""Tests for the bench harness (repro.obs.bench) and its CLI/schema tooling."""

import json
import pathlib
import sys

import pytest

from repro.cli import main
from repro.obs import metrics, trace
from repro.obs.bench import BENCH_SCHEMA, SCENARIOS, BenchConfig, run_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

SMOKE = BenchConfig(smoke=True, seed=0)


def _load_checker():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_bench_json
    finally:
        sys.path.pop(0)
    return check_bench_json


class TestScenarios:
    def test_registry_nonempty_and_described(self):
        assert len(SCENARIOS) >= 8
        for scenario in SCENARIOS.values():
            assert scenario.description

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_each_scenario_runs_in_smoke_mode(self, name):
        results = SCENARIOS[name].run(SMOKE)
        assert isinstance(results, dict) and results

    def test_scenario_results_deterministic_given_seed(self):
        first = SCENARIOS["engine-planner"].run(SMOKE)
        second = SCENARIOS["engine-planner"].run(SMOKE)
        assert first == second

    def test_config_size_switch(self):
        assert BenchConfig(smoke=True).size(100, 10) == 10
        assert BenchConfig(smoke=False).size(100, 10) == 100


class TestRunBench:
    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_bench(smoke=True, names=["no-such"], runs_dir=tmp_path, out_dir=None)

    def test_writes_run_artifacts_and_bench_file(self, tmp_path):
        report, run_dir, bench_path = run_bench(
            smoke=True,
            names=["engine-equijoin"],
            runs_dir=tmp_path / "runs",
            out_dir=tmp_path,
        )
        for name in ("manifest.json", "metrics.json", "report.md"):
            assert (run_dir / name).exists(), name
        assert bench_path is not None and bench_path.exists()
        assert bench_path.name.startswith("BENCH_")
        payload = json.loads(bench_path.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["mode"] == "smoke"
        assert payload["git_sha"]
        assert [s["name"] for s in payload["scenarios"]] == ["engine-equijoin"]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["seed"] == 0
        assert manifest["git_sha"] == payload["git_sha"]

    def test_run_dir_contains_exported_traces(self, tmp_path):
        from repro.obs.export import validate_chrome_trace

        _, run_dir, _ = run_bench(
            smoke=True,
            names=["engine-equijoin"],
            runs_dir=tmp_path / "runs",
            out_dir=None,
        )
        perfetto = json.loads((run_dir / "trace.json").read_text())
        assert validate_chrome_trace(perfetto) == []
        assert perfetto["traceEvents"]
        folded = (run_dir / "trace.folded").read_text()
        assert folded.strip()
        for line in folded.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 0

    def test_out_dir_none_skips_bench_file(self, tmp_path):
        _, _, bench_path = run_bench(
            smoke=True, names=["engine-equijoin"], runs_dir=tmp_path, out_dir=None
        )
        assert bench_path is None

    def test_collectors_restored_to_disabled(self, tmp_path):
        run_bench(
            smoke=True, names=["engine-equijoin"], runs_dir=tmp_path, out_dir=None
        )
        assert not trace.is_enabled()
        assert not metrics.is_enabled()

    def test_counters_attributed_per_scenario(self, tmp_path):
        report, _, _ = run_bench(
            smoke=True,
            names=["engine-planner", "solver-exact"],
            runs_dir=tmp_path,
            out_dir=None,
        )
        planner, exact = report.scenarios
        assert planner.counters.get("executor.queries", 0) > 0
        assert exact.counters.get("solver.exact.solves", 0) > 0
        # The solver scenario must not be billed the engine's queries.
        assert "executor.queries" not in exact.counters

    def test_repeats_recorded(self, tmp_path):
        report, _, _ = run_bench(
            smoke=True,
            names=["engine-equijoin"],
            repeats=2,
            runs_dir=tmp_path,
            out_dir=None,
        )
        (s,) = report.scenarios
        assert s.repeats == 2
        assert len(s.wall_ns) == 2
        assert s.best_ns <= s.mean_ns

    def test_table_lists_every_scenario(self, tmp_path):
        report, _, _ = run_bench(
            smoke=True,
            names=["engine-equijoin", "solver-exact"],
            runs_dir=tmp_path,
            out_dir=None,
        )
        rendered = report.table().render()
        assert "engine-equijoin" in rendered
        assert "solver-exact" in rendered


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "engine-planner" in out

    def test_bench_smoke_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario",
                "engine-equijoin",
                "--runs-dir",
                str(tmp_path / "runs"),
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine-equijoin" in out
        assert list(tmp_path.glob("BENCH_*.json"))
        (run_dir,) = (tmp_path / "runs").iterdir()
        assert (run_dir / "manifest.json").exists()

    def test_bench_no_bench_file(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario",
                "engine-equijoin",
                "--runs-dir",
                str(tmp_path / "runs"),
                "--no-bench-file",
            ]
        )
        assert code == 0
        assert not list(tmp_path.glob("BENCH_*.json"))


class TestSchemaChecker:
    def test_emitted_file_validates(self, tmp_path):
        _, _, bench_path = run_bench(
            smoke=True,
            names=["engine-equijoin"],
            runs_dir=tmp_path / "runs",
            out_dir=tmp_path,
        )
        checker = _load_checker()
        assert checker.validate_file(bench_path) == []
        assert checker.main([str(bench_path)]) == 0

    def test_corrupted_payloads_rejected(self, tmp_path):
        checker = _load_checker()
        assert checker.validate_bench_payload([]) != []
        assert checker.validate_bench_payload({"schema": "other/v9"}) != []
        bad = {
            "schema": BENCH_SCHEMA,
            "run_id": "r",
            "mode": "warp",
            "seed": "zero",
            "git_sha": "x",
            "created_unix": 0,
            "date": "2026-01-01",
            "scenarios": [],
        }
        problems = checker.validate_bench_payload(bad)
        assert any("mode" in p for p in problems)
        assert any("seed" in p for p in problems)
        assert any("scenarios" in p for p in problems)

    def test_negative_timings_rejected(self):
        checker = _load_checker()
        payload = {
            "schema": BENCH_SCHEMA,
            "run_id": "r",
            "mode": "smoke",
            "seed": 0,
            "git_sha": "x",
            "created_unix": 0,
            "date": "2026-01-01",
            "scenarios": [
                {
                    "name": "s",
                    "repeats": 1,
                    "wall_ns": {"best": 1, "mean": 1.0, "all": [-5]},
                    "results": {},
                    "counters": {},
                }
            ],
        }
        problems = checker.validate_bench_payload(payload)
        assert any("non-negative" in p for p in problems)

    def test_unreadable_file_reported(self, tmp_path):
        checker = _load_checker()
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        assert checker.validate_file(bad) != []
        assert checker.main([str(bad)]) == 1


class TestBatchScenarioJobsInvariance:
    """`repro bench --jobs N` is a pure performance knob: per-scenario
    results are byte-identical across job counts (the PR's acceptance
    gate), and the report records the job count once at the top."""

    def _results(self, tmp_path, jobs, cache_path=None):
        report, _, _ = run_bench(
            smoke=True,
            names=["solver-batch"],
            runs_dir=tmp_path / f"runs-{jobs}-{cache_path is not None}",
            out_dir=None,
            jobs=jobs,
            cache_path=cache_path,
        )
        [scenario_result] = report.scenarios
        assert scenario_result.status == "ok"
        return report, scenario_result.results

    def test_jobs_1_vs_2_identical_results(self, tmp_path):
        report_1, results_1 = self._results(tmp_path, jobs=1)
        report_2, results_2 = self._results(tmp_path, jobs=2)
        assert results_1 == results_2
        assert report_1.as_dict()["jobs"] == 1
        assert report_2.as_dict()["jobs"] == 2

    def test_warm_cache_identical_results(self, tmp_path):
        db = tmp_path / "solve-cache.db"
        _, cold = self._results(tmp_path, jobs=1, cache_path=db)
        _, warm = self._results(tmp_path, jobs=1, cache_path=db)
        assert cold == warm

    def test_bad_jobs_rejected(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            run_bench(
                smoke=True,
                names=["solver-batch"],
                runs_dir=tmp_path,
                out_dir=None,
                jobs=0,
            )
