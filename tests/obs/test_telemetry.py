"""Live telemetry: the rolling window and the Prometheus text exposition."""

import math

import pytest

from repro.obs.metrics import HistogramSummary
from repro.obs.telemetry import (
    CONTENT_TYPE,
    TelemetryWindow,
    histogram_family,
    parse_exposition,
    render_exposition,
    sample_line,
    scalar_family,
    validate_exposition,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTelemetryWindow:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            TelemetryWindow(window_seconds=0)
        with pytest.raises(ValueError):
            TelemetryWindow(slots=0)

    def test_cumulative_totals(self):
        clock = FakeClock()
        window = TelemetryWindow(window_seconds=60, slots=6, clock=clock)
        window.record("solve", 5.0)
        window.record("solve", 7.0, outcome="degraded")
        window.record("plan", 2.0, outcome="error", code="internal")
        assert window.requests_total() == 3
        assert window.requests_total("solve") == 2
        totals = window.totals()
        assert totals["solve"]["outcomes"]["ok"] == 1
        assert totals["solve"]["outcomes"]["degraded"] == 1
        assert totals["plan"]["errors"] == {"internal": 1}
        assert totals["solve"]["latency"].count == 2

    def test_unknown_outcome_counts_as_error(self):
        window = TelemetryWindow(clock=FakeClock())
        window.record("solve", 1.0, outcome="exploded")
        assert window.totals()["solve"]["outcomes"]["error"] == 1

    def test_window_view_rates(self):
        clock = FakeClock()
        window = TelemetryWindow(window_seconds=60, slots=6, clock=clock)
        clock.advance(30.0)
        for _ in range(6):
            window.record("solve", 4.0)
        window.record("solve", 4.0, outcome="rejected")
        window.record("solve", 4.0, outcome="error", code="internal")
        view = window.window()["solve"]
        assert view["requests"] == 8
        assert view["error_rate"] == pytest.approx(2 / 8)
        assert view["degraded_rate"] == 0.0
        # Uptime (30s) clamps the denominator below the 60s window span.
        assert view["rps"] == pytest.approx(8 / 30.0)
        assert view["p50_ms"] is not None

    def test_old_slots_expire_from_the_window(self):
        clock = FakeClock()
        window = TelemetryWindow(window_seconds=60, slots=6, clock=clock)
        window.record("solve", 1.0)
        clock.advance(120.0)  # two full windows later
        window.record("plan", 1.0)
        view = window.window()
        assert "solve" not in view  # expired from the live view
        assert view["plan"]["requests"] == 1
        # ...but cumulative totals never forget.
        assert window.requests_total("solve") == 1

    def test_slot_recycling_replaces_not_clears(self):
        clock = FakeClock()
        window = TelemetryWindow(window_seconds=6, slots=6, clock=clock)
        window.record("solve", 1.0)
        stale = window._slots[0]
        clock.advance(6.0)  # wraps onto the same ring position
        window.record("solve", 1.0)
        assert window._slots[0] is not stale  # replaced whole, not mutated
        assert stale.outcomes  # the stale object still holds its counts

    def test_uptime_tracks_clock(self):
        clock = FakeClock(100.0)
        window = TelemetryWindow(clock=clock)
        clock.advance(12.5)
        assert window.uptime_seconds() == pytest.approx(12.5)


class TestExpositionRender:
    def test_scalar_family_shape(self):
        lines = scalar_family(
            "x_total", "counter", "Things counted.", [({"op": "solve"}, 3)]
        )
        assert lines == [
            "# HELP x_total Things counted.",
            "# TYPE x_total counter",
            'x_total{op="solve"} 3',
        ]

    def test_scalar_family_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            scalar_family("x", "histogram", "h", [])

    def test_sample_line_escaping_and_values(self):
        line = sample_line("m", {"label": 'quo"te\\n'}, math.inf)
        assert line == 'm{label="quo\\"te\\\\n"} +Inf'

    def test_histogram_family_cumulative_buckets(self):
        summary = HistogramSummary()
        for value in (0.5, 1.0, 3.0, 100.0):
            summary.observe(value)
        lines = histogram_family("lat_ms", "Latency.", [({"op": "solve"}, summary)])
        text = render_exposition([lines])
        families, problems = parse_exposition(text)
        assert problems == []
        assert validate_exposition(text) == []
        buckets = [
            (sample.labels["le"], sample.value)
            for sample in families["lat_ms"].samples
            if sample.name == "lat_ms_bucket"
        ]
        # Cumulative and capped by the +Inf bucket == count.
        assert buckets[-1] == ("+Inf", 4.0)
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)
        [count] = [
            sample.value
            for sample in families["lat_ms"].samples
            if sample.name == "lat_ms_count"
        ]
        assert count == 4.0

    def test_content_type_pins_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestExpositionParse:
    def test_round_trip(self):
        text = render_exposition(
            [
                scalar_family(
                    "reqs_total",
                    "counter",
                    "Requests.",
                    [({"op": "solve"}, 9), ({"op": "plan"}, 2)],
                ),
                scalar_family("up_seconds", "gauge", "Uptime.", [({}, 12.5)]),
            ]
        )
        families, problems = parse_exposition(text)
        assert problems == []
        assert families["reqs_total"].kind == "counter"
        assert {
            (s.labels.get("op"), s.value) for s in families["reqs_total"].samples
        } == {("solve", 9.0), ("plan", 2.0)}
        assert families["up_seconds"].samples[0].value == 12.5
        assert validate_exposition(
            text, required={"reqs_total": "counter", "up_seconds": "gauge"}
        ) == []

    def test_samples_without_type_flagged(self):
        problems = validate_exposition("naked_metric 1\n")
        assert any("without a TYPE" in p for p in problems)

    def test_missing_required_family_flagged(self):
        problems = validate_exposition(
            "# TYPE a counter\na 1\n", required={"b": "counter"}
        )
        assert any("required family b is missing" in p for p in problems)

    def test_required_family_kind_mismatch_flagged(self):
        problems = validate_exposition(
            "# TYPE a gauge\na 1\n", required={"a": "counter"}
        )
        assert any("expected 'counter'" in p for p in problems)

    def test_histogram_missing_inf_bucket_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        problems = validate_exposition(text)
        assert any("+Inf" in p for p in problems)

    def test_histogram_non_cumulative_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        problems = validate_exposition(text)
        assert any("not cumulative" in p for p in problems)

    def test_histogram_count_mismatch_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\n"
            "h_count 4\n"
        )
        problems = validate_exposition(text)
        assert any("_count disagrees" in p for p in problems)

    def test_unparseable_sample_line_flagged(self):
        _families, problems = parse_exposition("not a metric line!!!\n")
        assert problems


class TestWindowExposition:
    def test_live_window_renders_and_validates(self):
        clock = FakeClock()
        window = TelemetryWindow(window_seconds=60, slots=6, clock=clock)
        for latency in (1.0, 2.0, 4.0, 150.0):
            window.record("solve", latency)
        window.record("plan", 3.0, outcome="rejected", code="overloaded")
        totals = window.totals()
        text = render_exposition(
            [
                scalar_family(
                    "reqs_total",
                    "counter",
                    "Requests.",
                    [({"op": op}, t["requests"]) for op, t in totals.items()],
                ),
                histogram_family(
                    "lat_ms",
                    "Latency.",
                    [({"op": op}, t["latency"]) for op, t in totals.items()],
                ),
            ]
        )
        assert validate_exposition(
            text, required={"reqs_total": "counter", "lat_ms": "histogram"}
        ) == []
