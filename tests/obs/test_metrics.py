"""Tests for the metrics registry (repro.obs.metrics)."""

import json

from repro.obs import metrics


class TestDisabled:
    def test_disabled_by_default(self):
        assert not metrics.is_enabled()

    def test_disabled_recording_is_noop(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 2.0)
        snap = metrics.snapshot()
        assert snap == {
            "schema": metrics.SNAPSHOT_SCHEMA,
            "enabled": False,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestCounters:
    def test_inc_defaults_to_one(self):
        metrics.enable()
        metrics.inc("solver.calls")
        metrics.inc("solver.calls")
        assert metrics.counter("solver.calls") == 2

    def test_inc_amount(self):
        metrics.enable()
        metrics.inc("nodes", 41)
        metrics.inc("nodes", 1)
        assert metrics.counter("nodes") == 42

    def test_unset_counter_reads_zero(self):
        assert metrics.counter("nope") == 0


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        metrics.enable()
        metrics.set_gauge("size", 10)
        metrics.set_gauge("size", 3)
        assert metrics.METRICS.gauge("size") == 3

    def test_histogram_summary(self):
        metrics.enable()
        for value in (1, 2, 9):
            metrics.observe("m", value)
        h = metrics.METRICS.histogram("m")
        assert h.count == 3
        assert h.total == 12
        assert h.min == 1
        assert h.max == 9
        assert h.mean == 4

    def test_empty_histogram_mean_zero(self):
        from repro.obs.metrics import HistogramSummary

        assert HistogramSummary().mean == 0.0


class TestQuantileHistograms:
    def _hist(self, values):
        from repro.obs.metrics import HistogramSummary

        h = HistogramSummary()
        for value in values:
            h.observe(value)
        return h

    def test_bucket_counts_sum_to_count(self):
        h = self._hist([0.1, 1, 5, 5, 90, 1e6, 0, -3])
        assert sum(h.buckets.values()) == h.count == 8

    def test_bucket_index_boundaries_are_log_spaced(self):
        from repro.obs.metrics import bucket_index, bucket_upper_bound

        for value in (0.01, 0.5, 1, 2, 3, 1000, 1e9):
            index = bucket_index(value)
            assert value <= bucket_upper_bound(index)
            # The next bucket down would not hold the value.
            assert value > bucket_upper_bound(index - 1) or value <= 0

    def test_nonpositive_values_share_underflow_bucket(self):
        from repro.obs.metrics import bucket_index

        assert bucket_index(0) == bucket_index(-7.5)
        h = self._hist([0, -1, 2])
        assert h.bucket_counts()["le_0"] == 2

    def test_quantiles_within_observed_range(self):
        h = self._hist(range(1, 101))
        for q in (0.5, 0.9, 0.99):
            estimate = h.quantile(q)
            assert 1 <= estimate <= 100

    def test_quantile_estimates_are_ordered_and_close(self):
        h = self._hist(range(1, 101))
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert p50 <= p90 <= p99
        # Log-spaced buckets bound the error by a factor of sqrt(2).
        assert 50 / 1.5 <= p50 <= 50 * 1.5
        assert 90 / 1.5 <= p90 <= 90 * 1.5

    def test_single_value_quantiles_exact(self):
        h = self._hist([42])
        assert h.quantile(0.5) == 42
        assert h.quantile(0.99) == 42

    def test_empty_histogram_quantile_none(self):
        assert self._hist([]).quantile(0.5) is None

    def test_invalid_quantile_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            self._hist([1]).quantile(0.0)
        with pytest.raises(ValueError):
            self._hist([1]).quantile(1.5)

    def test_as_dict_carries_buckets_and_quantiles(self):
        h = self._hist([1, 2, 9])
        payload = h.as_dict()
        assert payload["count"] == 3
        assert sum(payload["buckets"].values()) == 3
        assert payload["p50"] is not None
        assert payload["p99"] <= 9

    def test_buckets_deterministic_across_runs(self):
        first = self._hist([3.7, 0.2, 1e4]).as_dict()
        second = self._hist([3.7, 0.2, 1e4]).as_dict()
        assert first == second


class TestSnapshotSchema:
    def test_snapshot_carries_schema_and_enabled_state(self):
        snap = metrics.snapshot()
        assert snap["schema"] == "repro-metrics/v2"
        assert snap["enabled"] is False
        metrics.enable()
        assert metrics.snapshot()["enabled"] is True

    def test_to_json_carries_schema(self):
        metrics.enable()
        payload = json.loads(metrics.to_json())
        assert payload["schema"] == metrics.SNAPSHOT_SCHEMA


class TestSnapshotDeterminism:
    def _record(self):
        metrics.inc("b.second")
        metrics.inc("a.first", 3)
        metrics.set_gauge("z", 1.5)
        metrics.observe("h", 2)
        metrics.observe("h", 4)

    def test_snapshot_keys_sorted(self):
        metrics.enable()
        self._record()
        snap = metrics.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_to_json_byte_identical_across_identical_runs(self):
        metrics.enable()
        self._record()
        first = metrics.to_json()
        metrics.reset()
        self._record()
        second = metrics.to_json()
        assert first == second

    def test_to_json_parses_and_round_trips(self):
        metrics.enable()
        self._record()
        payload = json.loads(metrics.to_json())
        assert payload["counters"]["a.first"] == 3
        assert payload["histograms"]["h"]["count"] == 2

    def test_reset_drops_values_keeps_flag(self):
        metrics.enable()
        metrics.inc("x")
        metrics.reset()
        assert metrics.counter("x") == 0
        assert metrics.is_enabled()
