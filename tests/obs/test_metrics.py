"""Tests for the metrics registry (repro.obs.metrics)."""

import json

from repro.obs import metrics


class TestDisabled:
    def test_disabled_by_default(self):
        assert not metrics.is_enabled()

    def test_disabled_recording_is_noop(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 2.0)
        snap = metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestCounters:
    def test_inc_defaults_to_one(self):
        metrics.enable()
        metrics.inc("solver.calls")
        metrics.inc("solver.calls")
        assert metrics.counter("solver.calls") == 2

    def test_inc_amount(self):
        metrics.enable()
        metrics.inc("nodes", 41)
        metrics.inc("nodes", 1)
        assert metrics.counter("nodes") == 42

    def test_unset_counter_reads_zero(self):
        assert metrics.counter("nope") == 0


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        metrics.enable()
        metrics.set_gauge("size", 10)
        metrics.set_gauge("size", 3)
        assert metrics.METRICS.gauge("size") == 3

    def test_histogram_summary(self):
        metrics.enable()
        for value in (1, 2, 9):
            metrics.observe("m", value)
        h = metrics.METRICS.histogram("m")
        assert h.count == 3
        assert h.total == 12
        assert h.min == 1
        assert h.max == 9
        assert h.mean == 4

    def test_empty_histogram_mean_zero(self):
        from repro.obs.metrics import HistogramSummary

        assert HistogramSummary().mean == 0.0


class TestSnapshotDeterminism:
    def _record(self):
        metrics.inc("b.second")
        metrics.inc("a.first", 3)
        metrics.set_gauge("z", 1.5)
        metrics.observe("h", 2)
        metrics.observe("h", 4)

    def test_snapshot_keys_sorted(self):
        metrics.enable()
        self._record()
        snap = metrics.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_to_json_byte_identical_across_identical_runs(self):
        metrics.enable()
        self._record()
        first = metrics.to_json()
        metrics.reset()
        self._record()
        second = metrics.to_json()
        assert first == second

    def test_to_json_parses_and_round_trips(self):
        metrics.enable()
        self._record()
        payload = json.loads(metrics.to_json())
        assert payload["counters"]["a.first"] == 3
        assert payload["histograms"]["h"]["count"] == 2

    def test_reset_drops_values_keeps_flag(self):
        metrics.enable()
        metrics.inc("x")
        metrics.reset()
        assert metrics.counter("x") == 0
        assert metrics.is_enabled()
