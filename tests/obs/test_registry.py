"""The run registry: indexing run directories into SQLite, the
rebuild-from-artifacts round-trip, partial-directory tolerance, and the
trend/compare analytics sharing the perf gate's thresholds."""

import json
import shutil
from pathlib import Path

import pytest

from repro.obs.registry import (
    DEFAULT_TOLERANCE,
    RunRegistry,
    open_registry,
    parse_run_dir,
)

FIXTURES = Path(__file__).parent / "fixtures" / "runs"


@pytest.fixture()
def registry():
    with RunRegistry() as reg:
        reg.rebuild(FIXTURES)
        yield reg


class TestParseRunDir:
    def test_complete_run_parses_ok(self):
        run = parse_run_dir(FIXTURES / "run-a-baseline")
        assert run.run_id == "run-a-baseline"
        assert run.status == "ok"
        assert run.git_sha == "aaaa111fixture"
        assert run.seed == 1
        assert run.mode == "smoke"
        assert run.problems == []
        assert {s["scenario"] for s in run.scenarios} == {"alpha", "beta"}
        assert "events.jsonl" in run.artifacts

    def test_failed_scenario_marks_run_failed(self):
        run = parse_run_dir(FIXTURES / "run-c-regressed")
        assert run.status == "failed"
        by_name = {s["scenario"]: s for s in run.scenarios}
        assert by_name["beta"]["status"] == "failed"
        assert by_name["beta"]["best_ns"] is None

    def test_truncated_manifest_indexes_as_partial(self):
        run = parse_run_dir(FIXTURES / "run-d-partial")
        assert run.status == "partial"
        assert run.run_id == "run-d-partial"  # falls back to the dir name
        assert any("manifest.json" in p for p in run.problems)
        # scenarios recovered from tables.json (ms -> ns)
        (alpha,) = run.scenarios
        assert alpha["scenario"] == "alpha"
        assert alpha["best_ns"] == pytest.approx(12.5e6)

    def test_empty_directory_indexes_without_crashing(self, tmp_path):
        empty = tmp_path / "run-empty"
        empty.mkdir()
        run = parse_run_dir(empty)
        assert run.status == "partial"
        assert run.scenarios == []
        assert "manifest.json: missing" in run.problems

    def test_metrics_flattened(self):
        run = parse_run_dir(FIXTURES / "run-a-baseline")
        rows = {(kind, name): value for kind, name, value in run.metrics}
        assert rows[("counter", "executor.queries")] == 1
        assert rows[("gauge", "planner.estimated_selectivity")] == 0.25
        assert rows[("histogram", "solver.wall_ms.p90")] == 2.0


class TestRoundTrip:
    def test_rebuild_from_scratch_equals_original(self, registry):
        with RunRegistry() as fresh:
            fresh.rebuild(FIXTURES)
            assert fresh.dump() == registry.dump()

    def test_dump_is_json_serializable_and_deterministic(self, registry):
        first = json.dumps(registry.dump(), sort_keys=True)
        second = json.dumps(registry.dump(), sort_keys=True)
        assert first == second

    def test_reindexing_one_run_is_idempotent(self, registry):
        before = registry.dump()
        registry.index_run(FIXTURES / "run-b-steady")
        assert registry.dump() == before

    def test_persistent_db_survives_reopen_without_refresh(self, tmp_path):
        runs_dir = tmp_path / "runs"
        shutil.copytree(FIXTURES, runs_dir)
        with open_registry(runs_dir) as reg:
            indexed = reg.dump()
        assert (runs_dir / "registry.db").is_file()
        with open_registry(runs_dir, refresh=False) as reopened:
            assert reopened.dump() == indexed

    def test_deleting_db_loses_nothing(self, tmp_path):
        runs_dir = tmp_path / "runs"
        shutil.copytree(FIXTURES, runs_dir)
        with open_registry(runs_dir) as reg:
            before = reg.dump()
        (runs_dir / "registry.db").unlink()
        with open_registry(runs_dir) as reg:
            assert reg.dump() == before

    def test_registry_db_file_not_indexed_as_run(self, tmp_path):
        runs_dir = tmp_path / "runs"
        shutil.copytree(FIXTURES, runs_dir)
        with open_registry(runs_dir) as reg:  # creates runs/registry.db
            pass
        with open_registry(runs_dir) as reg:
            ids = [r["run_id"] for r in reg.runs()]
        assert "registry.db" not in ids
        assert len(ids) == 4


class TestQueries:
    def test_runs_ordered_by_creation_time(self, registry):
        ids = [r["run_id"] for r in registry.runs()]
        assert ids[:3] == ["run-a-baseline", "run-b-steady", "run-c-regressed"]
        assert ids[3] == "run-d-partial"  # no created_unix sorts last

    def test_missing_runs_dir_yields_empty_index(self, tmp_path):
        with RunRegistry() as reg:
            assert reg.rebuild(tmp_path / "nope") == []
            assert reg.runs() == []

    def test_run_lookup(self, registry):
        assert registry.run("run-b-steady")["seed"] == 2
        assert registry.run("no-such-run") is None

    def test_scenario_names_are_global(self, registry):
        assert registry.scenario_names() == ["alpha", "beta"]

    def test_series_keeps_gaps_for_failed_points(self, registry):
        points = registry.series("beta")
        assert [p["value_ns"] for p in points] == [5_000_000, 5_200_000, None]

    def test_series_rejects_unknown_metric(self, registry):
        with pytest.raises(ValueError):
            registry.series("alpha", metric="median_ns")


class TestAnalytics:
    def test_trend_flags_regression_with_gate_tolerance(self, registry):
        points = registry.trend("alpha", tolerance=DEFAULT_TOLERANCE)
        by_run = {p["run_id"]: p["verdict"] for p in points}
        assert by_run["run-a-baseline"] == "baseline"
        assert by_run["run-b-steady"] == "ok"  # 1.1x, inside 25%
        assert by_run["run-c-regressed"] == "REGRESSION"  # 1.82x
        assert by_run["run-d-partial"] == "faster"  # 12.5ms vs 20ms: recovered

    def test_trend_compares_against_previous_ok_point(self, registry):
        points = registry.trend("beta")
        verdicts = [p["verdict"] for p in points]
        assert verdicts == ["baseline", "ok", "FAILED"]

    def test_tight_tolerance_flags_small_slowdown(self, registry):
        points = registry.trend("alpha", tolerance=0.05)
        by_run = {p["run_id"]: p["verdict"] for p in points}
        assert by_run["run-b-steady"] == "REGRESSION"

    def test_compare_verdict_vocabulary(self, registry):
        rows = registry.compare("run-a-baseline", "run-c-regressed")
        by_name = {r["scenario"]: r["verdict"] for r in rows}
        assert by_name == {"alpha": "REGRESSION", "beta": "FAILED"}

    def test_compare_flags_missing_coverage(self, registry):
        rows = registry.compare("run-a-baseline", "run-d-partial")
        by_name = {r["scenario"]: r["verdict"] for r in rows}
        assert by_name["beta"] == "MISSING"

    def test_compare_faster(self, registry):
        rows = registry.compare("run-c-regressed", "run-a-baseline")
        by_name = {r["scenario"]: r["verdict"] for r in rows}
        assert by_name["alpha"] == "faster"


class TestGateToleranceReuse:
    def test_default_tolerance_matches_bench_diff(self):
        import importlib.util

        path = Path(__file__).resolve().parents[2] / "tools" / "bench_diff.py"
        spec = importlib.util.spec_from_file_location("bench_diff_check", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert DEFAULT_TOLERANCE == module.DEFAULT_TOLERANCE


# ---------------------------------------------------------------------------
# Plan-quality tables and trend analytics (PR 9).
# ---------------------------------------------------------------------------


def _plan_record(predicate, estimated, actual, regret=None):
    from repro.obs.planquality import CandidateRecord, PlanRecord

    record = PlanRecord(
        query="q",
        predicate=predicate,
        left="R",
        right="S",
        left_size=2,
        right_size=2,
        algorithm="hash",
        reason="r",
        estimated_output=float(estimated),
        candidates=[CandidateRecord("hash", 1.0, "r", chosen=True)],
        actual_output=actual,
    )
    if regret is not None:
        record.shadow_checked = True
        record.best_algorithm = "hash" if regret == 0 else "sort-merge"
        record.regret = regret
    return record


def _plan_run(runs_dir, name, created, records):
    run_dir = runs_dir / name
    run_dir.mkdir(parents=True)
    (run_dir / "manifest.json").write_text(
        json.dumps(
            {
                "run_id": name,
                "created_unix": created,
                "git_sha": f"{name}sha",
                "extra": {"failed": [], "mode": "smoke"},
            }
        )
    )
    (run_dir / "plans.jsonl").write_text(
        "".join(json.dumps(r.as_dict(), sort_keys=True) + "\n" for r in records)
    )
    return run_dir


@pytest.fixture()
def plan_registry(tmp_path):
    runs = tmp_path / "runs"
    # run-1: perfectly calibrated; run-2: q-error 2.0 and one wrong
    # shadow choice; equality only appears in run-1.
    _plan_run(
        runs,
        "run-1",
        1000.0,
        [
            _plan_record("equality", 10, 10, regret=0),
            _plan_record("spatial-overlap", 4, 4, regret=0),
        ],
    )
    _plan_run(
        runs,
        "run-2",
        2000.0,
        [
            _plan_record("spatial-overlap", 4, 8, regret=3),
            _plan_record("spatial-overlap", 4, 8, regret=0),
        ],
    )
    with RunRegistry() as reg:
        reg.rebuild(runs)
        yield reg


class TestPlanQuality:
    def test_rows_round_trip_from_plans_jsonl(self, plan_registry):
        rows = plan_registry.plan_quality_for("run-1")
        assert [r["predicate"] for r in rows] == ["equality", "spatial-overlap"]
        equality = rows[0]
        assert equality["plans"] == 1
        assert equality["q_p90"] == 1.0
        assert equality["choice_accuracy"] == 1.0

    def test_plan_predicates_global(self, plan_registry):
        assert plan_registry.plan_predicates() == [
            "equality",
            "spatial-overlap",
        ]

    def test_series_keeps_coverage_order(self, plan_registry):
        points = plan_registry.plan_series("spatial-overlap", metric="q_p90")
        assert [p["run_id"] for p in points] == ["run-1", "run-2"]
        assert [p["value"] for p in points] == [1.0, 2.0]

    def test_series_rejects_unknown_metric(self, plan_registry):
        with pytest.raises(ValueError):
            plan_registry.plan_series("equality", metric="latency")

    def test_trend_flags_q_error_growth(self, plan_registry):
        points = plan_registry.plan_trend(
            "spatial-overlap", metric="q_p90", tolerance=0.25
        )
        assert [p["verdict"] for p in points] == ["baseline", "REGRESSION"]
        assert points[1]["ratio"] == 2.0

    def test_trend_direction_flips_for_choice_accuracy(self, plan_registry):
        # Accuracy halves run-1 -> run-2 (1.0 -> 0.5): for every other
        # metric a falling value is an improvement, for accuracy it is
        # the regression.
        points = plan_registry.plan_trend(
            "spatial-overlap", metric="choice_accuracy", tolerance=0.25
        )
        assert [p["verdict"] for p in points] == ["baseline", "REGRESSION"]
        falling_q = plan_registry.plan_trend(
            "spatial-overlap", metric="q_p90", tolerance=0.25
        )
        assert falling_q[1]["verdict"] == "REGRESSION"  # q grows: regression

    def test_missing_coverage_is_no_data(self, plan_registry):
        points = plan_registry.plan_trend("equality", metric="q_p90")
        assert [p["run_id"] for p in points] == ["run-1"]
        assert points[0]["verdict"] == "baseline"

    def test_malformed_plans_jsonl_marks_run_partial(self, tmp_path):
        runs = tmp_path / "runs"
        run_dir = _plan_run(
            runs, "run-bad", 1000.0, [_plan_record("equality", 1, 1)]
        )
        with (run_dir / "plans.jsonl").open("a") as handle:
            handle.write("{not json\n")
        run = parse_run_dir(run_dir)
        assert run.status == "partial"
        assert any("plans.jsonl" in p for p in run.problems)
        # Well-formed records still aggregate.
        assert run.plan_quality[0]["predicate"] == "equality"
