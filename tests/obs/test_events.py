"""The structured event log: ordering, correlation, validation, and the
emission sites wired into the runtime (budget trips, ladder degradations,
fault injections, solver phases)."""

import json

import pytest

from repro.errors import BudgetExhaustedError, InjectedFaultError
from repro.obs import events, trace
from repro.runtime import Budget, FaultPlan, inject, maybe_fail
from repro.runtime.clock import FakeClock


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        events.emit(events.EVENT_SOLVER_PHASE, phase="solve")
        assert events.events() == []

    def test_seq_is_strictly_increasing_and_zero_based(self):
        events.enable()
        for _ in range(5):
            events.emit(events.EVENT_SOLVER_PHASE, phase="solve")
        assert [e.seq for e in events.events()] == [0, 1, 2, 3, 4]

    def test_run_id_binding(self):
        events.enable()
        events.emit(events.EVENT_RUN_START)
        events.set_run_id("run-x")
        events.emit(events.EVENT_SOLVER_PHASE, phase="solve")
        recorded = events.events()
        assert recorded[0].run_id is None
        assert recorded[1].run_id == "run-x"

    def test_span_correlation_uses_innermost_open_span(self):
        trace.enable()
        events.enable()
        events.emit(events.EVENT_RUN_START)
        with trace.span("outer"):
            with trace.span("inner") as inner:
                events.emit(events.EVENT_SOLVER_PHASE, phase="solve")
        recorded = events.events()
        assert recorded[0].span_id is None
        assert recorded[1].span_id == inner.index

    def test_reset_drops_events_and_run_binding(self):
        events.enable()
        events.set_run_id("run-x")
        events.emit(events.EVENT_RUN_START)
        events.reset()
        assert events.events() == []
        events.emit(events.EVENT_RUN_END)
        assert events.events()[0].run_id is None
        assert events.events()[0].seq == 0

    def test_jsonl_round_trip_validates_clean(self):
        events.enable()
        events.set_run_id("run-x")
        events.emit(events.EVENT_BUDGET_TRIPPED, reason="deadline")
        events.emit(events.EVENT_LADDER_DEGRADED, src="exact", dst="greedy")
        text = events.to_jsonl()
        assert events.validate_jsonl(text) == []
        parsed = [json.loads(line) for line in text.splitlines()]
        assert [p["name"] for p in parsed] == [
            "budget.tripped",
            "ladder.degraded",
        ]

    def test_write_events_leaves_no_temp_file(self, tmp_path):
        events.enable()
        events.emit(events.EVENT_RUN_START)
        target = events.write_events(tmp_path / "events.jsonl")
        assert target.read_text() == events.to_jsonl()
        assert list(tmp_path.iterdir()) == [target]


class TestValidation:
    def _record(self, **overrides):
        base = {
            "seq": 0,
            "name": "run.start",
            "ts_unix": 1000.0,
            "run_id": "run-x",
            "span_id": None,
            "attrs": {},
        }
        base.update(overrides)
        return base

    def test_valid_records_pass(self):
        records = [self._record(), self._record(seq=1, name="run.end")]
        assert events.validate_events(records) == []

    def test_non_increasing_seq_flagged(self):
        records = [self._record(seq=1), self._record(seq=1, name="run.end")]
        problems = events.validate_events(records)
        assert any("not greater than previous" in p for p in problems)

    def test_unknown_name_flagged(self):
        problems = events.validate_events([self._record(name="nope.nope")])
        assert any("unknown event name" in p for p in problems)

    def test_missing_field_flagged(self):
        record = self._record()
        del record["span_id"]
        problems = events.validate_events([record])
        assert any("missing field 'span_id'" in p for p in problems)

    def test_bad_types_flagged(self):
        problems = events.validate_events(
            [self._record(seq=True, ts_unix="later", attrs=[])]
        )
        assert len(problems) >= 3

    def test_unparseable_jsonl_line_flagged(self):
        problems = events.validate_jsonl('{"seq": 0\nnot json\n')
        assert any("unparseable JSON" in p for p in problems)


class TestRuntimeEmissionSites:
    def test_budget_trip_emits_one_event(self):
        events.enable()
        budget = Budget(node_budget=1)
        assert not budget.poll()
        assert budget.poll()
        assert budget.poll()  # sticky: further polls must not re-emit
        recorded = events.events()
        assert [e.name for e in recorded] == [events.EVENT_BUDGET_TRIPPED]
        assert recorded[0].attrs["reason"] == "nodes"
        assert recorded[0].attrs["nodes_charged"] == 2

    def test_deadline_trip_event_carries_elapsed(self):
        events.enable()
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        budget.start()
        clock.advance(2.0)
        with pytest.raises(BudgetExhaustedError):
            budget.checkpoint()
        (event,) = events.events()
        assert event.attrs["reason"] == "deadline"
        assert event.attrs["elapsed_seconds"] >= 1.0

    def test_memo_cap_emits_once_across_repeated_raises(self):
        events.enable()
        budget = Budget(memo_cap=1)
        with pytest.raises(BudgetExhaustedError):
            budget.charge_memo(5)
        with pytest.raises(BudgetExhaustedError):
            budget.charge_memo(5)
        names = [e.name for e in events.events()]
        assert names == [events.EVENT_BUDGET_TRIPPED]

    def test_fault_injection_emits_correlated_event(self):
        events.enable()
        events.set_run_id("chaos-run")
        plan = FaultPlan(seed=7, rates={"storage.read": 1.0})
        with inject(plan):
            with pytest.raises(InjectedFaultError):
                maybe_fail("storage.read")
        (event,) = events.events()
        assert event.name == events.EVENT_FAULT_INJECTED
        assert event.run_id == "chaos-run"
        assert event.attrs["site"] == "storage.read"
        assert event.attrs["seed"] == 7
        assert event.attrs["call"] == 1

    def test_fault_events_stay_ordered_under_repeated_injection(self):
        events.enable()
        plan = FaultPlan(seed=0, rates={"*": 1.0})
        with inject(plan):
            for _ in range(4):
                with pytest.raises(InjectedFaultError):
                    maybe_fail("relations.io.load")
        recorded = events.events()
        assert [e.seq for e in recorded] == [0, 1, 2, 3]
        assert [e.attrs["call"] for e in recorded] == [1, 2, 3, 4]
        assert events.validate_jsonl(events.to_jsonl()) == []

    def test_ladder_degradation_emits_event(self):
        from repro.core.solvers.registry import solve
        from repro.graphs.generators import random_connected_bipartite

        events.enable()
        graph = random_connected_bipartite(4, 4, 10, seed=0)
        budget = Budget(node_budget=1)
        solve(graph, budget=budget)
        degradations = [
            e for e in events.events() if e.name == events.EVENT_LADDER_DEGRADED
        ]
        assert degradations, "budget-starved solve must emit ladder.degraded"
        assert degradations[0].attrs["src"] == "exact"

    def test_solver_phase_event_correlates_to_solve_span(self):
        from repro.core.solvers.registry import solve
        from repro.graphs.generators import random_connected_bipartite

        trace.enable()
        events.enable()
        solve(random_connected_bipartite(3, 3, 6, seed=0), "exact")
        phases = [
            e for e in events.events() if e.name == events.EVENT_SOLVER_PHASE
        ]
        assert phases and all(e.span_id is not None for e in phases)
        span_names = {s.index: s.name for s in trace.spans()}
        assert span_names[phases[0].span_id] == "solver.solve"

    def test_no_events_recorded_while_disabled(self):
        from repro.core.solvers.registry import solve
        from repro.graphs.generators import random_connected_bipartite

        solve(random_connected_bipartite(3, 3, 6, seed=0), "exact")
        budget = Budget(node_budget=1)
        budget.poll()
        budget.poll()
        assert events.events() == []
