"""Trace context: wire form, ambient propagation, span stamping, adoption."""

import pickle
import random

import pytest

from repro.obs import context as obs_context
from repro.obs import trace as obs_trace
from repro.obs.context import TraceContext, derived_trace_id, new_trace_id


class TestTraceContext:
    def test_new_trace_id_shape(self):
        trace_id = new_trace_id(random.Random(0))
        assert obs_context.is_trace_id(trace_id)
        assert len(trace_id) == 32

    def test_new_trace_id_deterministic_under_seeded_rng(self):
        assert new_trace_id(random.Random(7)) == new_trace_id(random.Random(7))

    def test_derived_trace_id_is_stable(self):
        assert derived_trace_id(0, 3) == derived_trace_id(0, 3)
        assert derived_trace_id(0, 3) != derived_trace_id(0, 4)
        assert derived_trace_id(0, 3) != derived_trace_id(1, 3)
        assert obs_context.is_trace_id(derived_trace_id(42, 1000))

    def test_child_rebases_parent_only(self):
        ctx = TraceContext(derived_trace_id(0, 0), parent_span_id=5)
        child = ctx.child(9)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == 9
        assert ctx.parent_span_id == 5  # frozen original untouched

    def test_wire_round_trip(self):
        ctx = TraceContext(derived_trace_id(1, 2), parent_span_id=4)
        assert obs_context.from_wire(ctx.as_wire()) == ctx

    def test_wire_form_omits_absent_parent(self):
        ctx = TraceContext(derived_trace_id(1, 2))
        assert ctx.as_wire() == {"trace_id": ctx.trace_id}

    def test_context_is_picklable(self):
        # It crosses the worker-pool boundary inside SolveTask payloads.
        ctx = TraceContext(derived_trace_id(3, 1), parent_span_id=2)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "not a dict",
            42,
            [],
            {},
            {"trace_id": None},
            {"trace_id": 17},
            {"trace_id": "short"},
            {"trace_id": "Z" * 32},  # non-hex
            {"trace_id": "AB" * 16},  # uppercase rejected
        ],
    )
    def test_from_wire_malformed_degrades_to_none(self, payload):
        assert obs_context.from_wire(payload) is None

    @pytest.mark.parametrize("parent", [None, "x", -1, 1.5, True])
    def test_from_wire_bad_parent_dropped_not_fatal(self, parent):
        trace_id = derived_trace_id(0, 0)
        ctx = obs_context.from_wire(
            {"trace_id": trace_id, "parent_span_id": parent}
        )
        assert ctx is not None
        assert ctx.trace_id == trace_id
        assert ctx.parent_span_id is None

    def test_from_wire_ignores_unknown_keys(self):
        trace_id = derived_trace_id(0, 1)
        ctx = obs_context.from_wire({"trace_id": trace_id, "future": "field"})
        assert ctx == TraceContext(trace_id)


class TestAmbient:
    def test_default_is_none(self):
        assert obs_context.current() is None

    def test_use_scopes_and_restores(self):
        ctx = TraceContext(derived_trace_id(0, 0))
        with obs_context.use(ctx):
            assert obs_context.current() is ctx
        assert obs_context.current() is None

    def test_use_nests(self):
        outer = TraceContext(derived_trace_id(0, 0))
        inner = outer.child(3)
        with obs_context.use(outer):
            with obs_context.use(inner):
                assert obs_context.current() is inner
            assert obs_context.current() is outer

    def test_activate_deactivate_token(self):
        ctx = TraceContext(derived_trace_id(0, 2))
        token = obs_context.activate(ctx)
        try:
            assert obs_context.current() is ctx
        finally:
            obs_context.deactivate(token)
        assert obs_context.current() is None


class TestSpanStamping:
    def test_top_level_span_stamped_from_ambient(self):
        obs_trace.enable()
        ctx = TraceContext(derived_trace_id(0, 0), parent_span_id=7)
        with obs_context.use(ctx):
            with obs_trace.span("work"):
                pass
        [span] = obs_trace.spans()
        assert span.trace_id == ctx.trace_id
        assert span.remote_parent == 7

    def test_nested_span_inherits_parent_trace_id(self):
        obs_trace.enable()
        ctx = TraceContext(derived_trace_id(0, 1))
        with obs_context.use(ctx):
            with obs_trace.span("outer"):
                with obs_trace.span("inner"):
                    pass
        spans = {span.name: span for span in obs_trace.spans()}
        assert spans["inner"].trace_id == ctx.trace_id
        # Stack children link via parent_index, not remote_parent.
        assert spans["inner"].remote_parent is None
        assert spans["inner"].parent_index == spans["outer"].index

    def test_untraced_without_ambient_context(self):
        obs_trace.enable()
        with obs_trace.span("work"):
            pass
        [span] = obs_trace.spans()
        assert span.trace_id is None

    def test_detached_span_stays_off_the_stack(self):
        obs_trace.enable()
        with obs_trace.detached_span("server.request"):
            with obs_trace.span("solver"):
                pass
        spans = {span.name: span for span in obs_trace.spans()}
        # The solver span is top-level: the detached region never became
        # its stack parent (that's what makes it await-safe).
        assert spans["solver"].parent_index is None
        assert spans["solver"].depth == 0
        assert spans["server.request"].end_ns >= spans["server.request"].start_ns

    def test_detached_span_disabled_is_null(self):
        with obs_trace.detached_span("noop") as span:
            # The shared null context manager yields None — callers must
            # guard on it (the server does) before reading .index.
            assert span is None
        assert obs_trace.spans() == []

    def test_detached_span_records_errors(self):
        obs_trace.enable()
        with pytest.raises(RuntimeError):
            with obs_trace.detached_span("failing"):
                raise RuntimeError("boom")
        [span] = obs_trace.spans()
        assert span.attrs["error"] is True
        assert span.attrs["error_type"] == "RuntimeError"


class TestAdopt:
    def _shipped(self, ctx):
        """Spans recorded in a simulated worker process."""
        obs_trace.enable()
        with obs_context.use(ctx):
            with obs_trace.span("solver.solve"):
                with obs_trace.span("solver.exact"):
                    pass
        shipped = obs_trace.as_dicts()
        obs_trace.reset()
        return shipped

    def test_adopt_remaps_parent_links(self):
        ctx = TraceContext(derived_trace_id(0, 0))
        shipped = self._shipped(ctx)
        obs_trace.enable()
        with obs_trace.span("local.root"):
            pass
        adopted = obs_trace.adopt(shipped, origin="worker")
        assert [span.name for span in adopted] == [
            "solver.solve",
            "solver.exact",
        ]
        solve, exact = adopted
        # Intra-shipment parentage is remapped to local indices.
        assert exact.parent_index == solve.index
        assert all(span.trace_id == ctx.trace_id for span in adopted)
        assert all(span.attrs["origin"] == "worker" for span in adopted)
        # Adopted spans join the local registry with the index invariant.
        registry = obs_trace.spans()
        for span in adopted:
            assert registry[span.index] is span

    def test_adopt_resolves_remote_parent_to_local_span(self):
        # The real flow: the parent process opens a detached dispatch
        # span, ships ctx.child(dispatch.index) to a worker, and the
        # worker's top-level spans come home carrying that index as
        # remote_parent.  Build the worker record by hand so the local
        # registry (holding the dispatch span) stays intact.
        obs_trace.enable()
        ctx = TraceContext(derived_trace_id(0, 0))
        with obs_context.use(ctx):
            with obs_trace.detached_span("server.dispatch") as dispatch:
                pass
        shipped = [
            {
                "name": "solver.solve",
                "index": 0,
                "parent": None,
                "depth": 0,
                "start_unix": dispatch.start_unix,
                "duration_ns": 1_000,
                "attrs": {},
                "trace_id": ctx.trace_id,
                "remote_parent": dispatch.index,
            }
        ]
        [solve] = obs_trace.adopt(shipped, origin="worker")
        # The worker's remote_parent (the dispatch span's index) resolves
        # into a real local parent link.
        assert solve.parent_index == dispatch.index
        assert solve.remote_parent is None
        assert solve.depth == dispatch.depth + 1
        assert solve.trace_id == ctx.trace_id

    def test_adopt_keeps_unresolvable_remote_parent_as_metadata(self):
        obs_trace.enable()
        shipped = [
            {
                "name": "solver.solve",
                "index": 0,
                "parent": None,
                "depth": 0,
                "start_unix": 0.0,
                "duration_ns": 0,
                "attrs": {},
                "trace_id": derived_trace_id(0, 0),
                "remote_parent": 99,  # no such local span
            }
        ]
        [solve] = obs_trace.adopt(shipped)
        assert solve.parent_index is None
        assert solve.remote_parent == 99

    def test_adopt_when_disabled_is_a_noop(self):
        ctx = TraceContext(derived_trace_id(0, 0))
        shipped = self._shipped(ctx)
        obs_trace.disable()
        assert obs_trace.adopt(shipped, origin="worker") == []
        assert obs_trace.spans() == []

    def test_adopt_preserves_durations(self):
        ctx = TraceContext(derived_trace_id(0, 0))
        shipped = self._shipped(ctx)
        obs_trace.enable()
        adopted = obs_trace.adopt(shipped)
        for record, span in zip(shipped, adopted):
            assert span.end_ns - span.start_ns == max(0, record["duration_ns"])
