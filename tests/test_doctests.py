"""Run the library's docstring examples as tests.

Every ``>>>`` example in a public docstring must actually work — stale
examples are documentation bugs.  Modules with examples are listed
explicitly so a new example's module must be registered here (cheap, and
keeps collection fast).
"""

import doctest

import pytest

import repro
import repro.analysis.render
import repro.analysis.report
import repro.engine
import repro.engine.chain
import repro.graphs.bipartite
import repro.graphs.simple
import repro.relations.catalog
import repro.relations.relation
import repro.sets.inverted
import repro.sets.signatures
import repro.core.game
import repro.core.kpebble
import repro.core.scheme
import repro.geometry.rtree

MODULES = [
    repro,
    repro.analysis.render,
    repro.analysis.report,
    repro.engine,
    repro.engine.chain,
    repro.graphs.bipartite,
    repro.graphs.simple,
    repro.relations.catalog,
    repro.relations.relation,
    repro.sets.inverted,
    repro.sets.signatures,
    repro.core.game,
    repro.core.kpebble,
    repro.core.scheme,
    repro.geometry.rtree,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests; unregister it"
    assert results.failed == 0
