"""Moderate-scale smoke tests: the library at realistic sizes.

Not micro-benchmarks (those live in benchmarks/) — these assert that the
production paths stay correct and tractable at sizes an adopter would
actually run, with loose wall-clock guards so regressions that change
complexity class get caught.
"""

import time

import pytest

from repro import Equality, SetContainment, SpatialOverlap, build_join_graph, solve
from repro.engine import JoinQuery, execute
from repro.graphs.generators import random_connected_bipartite, union_of_bicliques
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import sessions_interval_workload, uniform_rectangles_workload


def _timed(fn, limit_seconds: float):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    assert elapsed < limit_seconds, f"{elapsed:.1f}s exceeded {limit_seconds}s guard"
    return result


class TestSolverScale:
    def test_equijoin_solver_at_10k_edges(self):
        graph = union_of_bicliques([(5, 5)] * 400)  # m = 10000
        result = _timed(lambda: solve(graph), 10.0)
        assert result.optimal
        assert result.effective_cost == 10_000

    def test_dfs_approx_at_1k_edges(self):
        graph = random_connected_bipartite(220, 220, extra_edges=560, seed=1)
        assert graph.num_edges >= 990
        result = _timed(lambda: solve(graph, "dfs"), 20.0)
        result.scheme.validate(graph)
        assert result.effective_cost <= 1.25 * graph.num_edges

    def test_greedy_at_1k_edges(self):
        graph = random_connected_bipartite(220, 220, extra_edges=560, seed=2)
        result = _timed(lambda: solve(graph, "greedy"), 20.0)
        result.scheme.validate(graph)


class TestJoinScale:
    def test_equijoin_pipeline_500x500(self):
        left, right = zipf_equijoin_workload(500, 500, key_universe=120, seed=1)
        result = _timed(
            lambda: execute(JoinQuery(left, right, Equality()), with_trace=False), 10.0
        )
        naive_count = sum(
            1 for a in left.values for b in right.values if a == b
        )
        assert result.output_size == naive_count

    def test_spatial_pipeline_300x300(self):
        left, right = uniform_rectangles_workload(300, 300, extent=300.0, seed=1)
        graph = _timed(lambda: build_join_graph(left, right, SpatialOverlap()), 10.0)
        assert graph.num_edges >= 0

    def test_interval_pipeline_500x500(self):
        left, right = sessions_interval_workload(500, 500, horizon=5000.0, seed=1)
        result = _timed(
            lambda: execute(JoinQuery(left, right, SpatialOverlap()), with_trace=False),
            10.0,
        )
        assert result.plan.algorithm_name == "interval-merge"

    def test_containment_pipeline_200x200(self):
        left, right = zipf_sets_workload(
            200, 200, universe=60, left_size=2, right_size=8, seed=1
        )
        result = _timed(
            lambda: execute(JoinQuery(left, right, SetContainment()), with_trace=False),
            10.0,
        )
        assert result.rows is not None
