"""Fuzz and mutation tests: validators must catch corrupted artifacts, and
independent implementations must agree under random inputs.

These are the failure-injection counterpart to the happy-path suite: every
assertion here is about *rejecting* bad data or about two engines whose
disagreement would indicate a bug in at least one.
"""

import random

import pytest

from repro.errors import SchemeError
from repro.graphs.generators import random_bipartite_gnm
from repro.core.scheme import PebblingScheme
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.held_karp import held_karp_effective_cost
from repro.core.solvers.registry import METHODS, solve


def _instances(count=8, seed_base=0):
    out = []
    for seed in range(count):
        g = random_bipartite_gnm(4, 4, 8, seed=seed_base + seed).without_isolated_vertices()
        if g.num_edges >= 2:
            out.append(g)
    return out


class TestSchemeMutationRejection:
    """Random corruptions of optimal schemes must fail validation."""

    @pytest.mark.parametrize("seed", range(8))
    def test_dropping_a_configuration_invalidates(self, seed):
        rng = random.Random(seed)
        for g in _instances(3, seed_base=seed * 10):
            scheme = solve_exact(g).scheme
            configs = list(scheme.configurations)
            del configs[rng.randrange(len(configs))]
            mutated = PebblingScheme(configs)
            assert not mutated.is_valid(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_rerouting_a_configuration_off_edge_invalidates(self, seed):
        rng = random.Random(100 + seed)
        for g in _instances(3, seed_base=seed * 7):
            scheme = solve_exact(g).scheme
            configs = list(scheme.configurations)
            index = rng.randrange(len(configs))
            # Replace with a same-side pair (never an edge).
            lefts = g.left
            if len(lefts) < 2:
                continue
            configs[index] = (lefts[0], lefts[1])
            mutated = PebblingScheme(configs)
            assert not mutated.is_valid(g)

    def test_duplicate_edge_rejected_by_canonical_constructor(self):
        g = _instances(1)[0]
        edges = g.edges()
        with pytest.raises(SchemeError):
            PebblingScheme.from_edge_order(g, edges + [edges[0]])

    @pytest.mark.parametrize("seed", range(6))
    def test_swapping_vertices_across_graphs_invalidates(self, seed):
        g1 = random_bipartite_gnm(3, 3, 5, seed=seed).without_isolated_vertices()
        g2 = random_bipartite_gnm(3, 3, 5, seed=seed + 50).without_isolated_vertices()
        if g1.num_edges == 0 or g2.num_edges == 0 or g1 == g2:
            return
        scheme1 = solve_exact(g1).scheme
        # A scheme for g1 validates against g2 only if edge sets coincide.
        same_edges = set(map(frozenset, g1.edges())) == set(map(frozenset, g2.edges()))
        assert scheme1.is_valid(g2) == same_edges


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_engines_agree(self, seed):
        g = random_bipartite_gnm(4, 4, 9, seed=300 + seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        assert solve_exact(g).effective_cost == held_karp_effective_cost(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_no_heuristic_beats_exact(self, seed):
        g = random_bipartite_gnm(4, 4, 9, seed=400 + seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        optimum = solve_exact(g).effective_cost
        for method in METHODS:
            if method in ("auto", "exact", "equijoin"):
                continue
            result = solve(g, method)
            assert result.effective_cost >= optimum, method
            result.scheme.validate(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_solvers_agree_on_edge_multiset(self, seed):
        g = random_bipartite_gnm(4, 4, 9, seed=500 + seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        expected = sorted(map(repr, (frozenset(e) for e in g.edges())))
        for method in ("exact", "dfs", "greedy", "matching", "anneal"):
            scheme = solve(g, method).scheme
            got = sorted(map(repr, (frozenset(c) for c in scheme.configurations)))
            assert got == expected, method


class TestGameFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_play_never_overcounts_deletions(self, seed):
        from repro.core.game import PebbleGame

        rng = random.Random(seed)
        g = random_bipartite_gnm(4, 4, 10, seed=seed).without_isolated_vertices()
        if g.num_edges == 0:
            return
        game = PebbleGame(g)
        vertices = list(g.left) + list(g.right)
        deletions = 0
        for _move in range(60):
            pebble = rng.randrange(2)
            destination = rng.choice(vertices)
            if destination == game.positions[1 - pebble]:
                continue
            if game.move(pebble, destination) is not None:
                deletions += 1
            if game.is_won():
                break
        assert deletions == g.num_edges - game.remaining_edges
        assert deletions <= g.num_edges
