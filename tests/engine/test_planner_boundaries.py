"""Parametrized pins for the planner's decision boundaries.

Each case fixes one side of a rule threshold — sort-merge vs hash,
plane-sweep vs R-tree vs PBSM, inverted-index vs signature-NL — so a
future cost-model tweak that silently flips a decision fails here, not
in a benchmark.  The cases double as calibration fixtures: every plan's
record must list the full candidate set with exactly one chosen.
"""

import pytest

from repro.engine import JoinQuery, plan
from repro.engine.planner import (
    PBSM_DENSITY_THRESHOLD,
    RTREE_THRESHOLD,
    SIGNATURE_UNIVERSE_THRESHOLD,
)
from repro.joins.predicates import (
    Band,
    Equality,
    SetContainment,
    SpatialOverlap,
)
from repro.relations.relation import Relation
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import (
    sessions_interval_workload,
    uniform_rectangles_workload,
)


def _equality_case(name):
    if name == "small-output":
        # 10 matching values out of 50x50: output below inputs -> hash.
        return Relation("R", list(range(50))), Relation("S", list(range(40, 90)))
    # One heavy value on both sides: output (900) dwarfs inputs (60).
    return Relation("R", [1] * 30), Relation("S", [1] * 30)


class TestEqualityBoundary:
    """Sort-merge wins iff estimated output >= combined input size."""

    def test_small_output_picks_hash(self):
        left, right = _equality_case("small-output")
        the_plan = plan(JoinQuery(left, right, Equality()))
        assert the_plan.algorithm_name == "hash"

    def test_large_output_picks_sort_merge(self):
        left, right = _equality_case("large-output")
        the_plan = plan(JoinQuery(left, right, Equality()))
        assert the_plan.algorithm_name == "sort-merge"

    def test_exact_threshold_picks_sort_merge(self):
        # estimated = |R||S|/max(d) = 16 with one distinct value per
        # side; inputs = 8: estimate >= inputs, the boundary is closed.
        left = Relation("R", [7] * 4)
        right = Relation("S", [7] * 4)
        the_plan = plan(JoinQuery(left, right, Equality()))
        assert the_plan.estimated_output == 16.0
        assert the_plan.algorithm_name == "sort-merge"


class TestSpatialBoundary:
    """plane-sweep below RTREE_THRESHOLD, then rtree, then pbsm when the
    extent is dense (selectivity >= PBSM_DENSITY_THRESHOLD)."""

    def test_small_inputs_pick_plane_sweep(self):
        left, right = uniform_rectangles_workload(20, 20, seed=0)
        the_plan = plan(JoinQuery(left, right, SpatialOverlap()))
        assert the_plan.query.input_size < RTREE_THRESHOLD
        assert the_plan.algorithm_name == "plane-sweep"

    def test_large_sparse_inputs_pick_rtree(self):
        n = RTREE_THRESHOLD // 2 + 1
        left, right = uniform_rectangles_workload(n, n, extent=500.0, seed=0)
        the_plan = plan(JoinQuery(left, right, SpatialOverlap()))
        assert the_plan.query.input_size >= RTREE_THRESHOLD
        assert the_plan.algorithm_name == "rtree"

    def test_large_dense_inputs_pick_pbsm(self):
        # Big rectangles on a tiny extent: nearly every pair overlaps,
        # so the sampled selectivity is far past the density threshold.
        left, right = uniform_rectangles_workload(
            210, 210, extent=30.0, mean_side=6.0, seed=0
        )
        the_plan = plan(JoinQuery(left, right, SpatialOverlap()))
        assert the_plan.query.input_size >= RTREE_THRESHOLD
        density = the_plan.estimated_output / (210 * 210)
        assert density >= PBSM_DENSITY_THRESHOLD
        assert the_plan.algorithm_name == "pbsm"

    def test_interval_domains_pick_interval_merge(self):
        left, right = sessions_interval_workload(50, 50, seed=0)
        the_plan = plan(JoinQuery(left, right, SpatialOverlap()))
        assert the_plan.algorithm_name == "interval-merge"
        assert "interval" in the_plan.reason


class TestContainmentBoundary:
    """Signatures iff the right-hand element universe fits the
    signature width; the universe is counted from the right side only."""

    def test_large_universe_picks_inverted_index(self):
        left, right = zipf_sets_workload(10, 10, universe=40, seed=0)
        the_plan = plan(JoinQuery(left, right, SetContainment()))
        assert the_plan.algorithm_name == "inverted-index"

    def test_tiny_universe_picks_signatures(self):
        left, right = zipf_sets_workload(10, 10, universe=8, seed=0)
        the_plan = plan(JoinQuery(left, right, SetContainment()))
        assert the_plan.algorithm_name == "signature-NL"

    def test_universe_counted_from_right_side_only(self):
        # The left universe is huge, but only the right side's elements
        # build the signature space — still below the threshold.
        left = Relation("R", [set(range(100)), {1, 2}])
        right = Relation("S", [{1}, {2, 3}])
        the_plan = plan(JoinQuery(left, right, SetContainment()))
        assert the_plan.algorithm_name == "signature-NL"
        universe_size = len({1, 2, 3})
        assert universe_size <= SIGNATURE_UNIVERSE_THRESHOLD
        assert f"({universe_size})" in the_plan.reason


class TestFallbackBoundary:
    def test_band_predicate_picks_block_nl(self):
        left = Relation("R", [1.0, 2.0, 3.0])
        right = Relation("S", [1.2, 2.9, 10.0])
        the_plan = plan(JoinQuery(left, right, Band(0.5)))
        assert the_plan.algorithm_name == "block-NL"
        assert the_plan.reason == "generic predicate: nested loops"


EXPECTED_CANDIDATES = {
    "equality": {"sort-merge", "hash"},
    "spatial-overlap": {"plane-sweep", "rtree", "pbsm"},
    "set-containment": {"signature-NL", "inverted-index"},
}


@pytest.mark.parametrize(
    "query",
    [
        JoinQuery(Relation("R", [1] * 4), Relation("S", [1, 2]), Equality()),
        JoinQuery(
            *uniform_rectangles_workload(20, 20, seed=0), SpatialOverlap()
        ),
        JoinQuery(
            *zipf_sets_workload(10, 10, universe=40, seed=0), SetContainment()
        ),
    ],
    ids=["equality", "spatial", "containment"],
)
def test_record_lists_full_candidate_set(query):
    """Every plan's record enumerates the rule's whole candidate set,
    with the rejected ones carrying reasons — the explain surface shows
    what was considered, not just what won."""
    record = plan(query).record
    names = {c.algorithm for c in record.candidates}
    assert names == EXPECTED_CANDIDATES[record.predicate]
    chosen = [c for c in record.candidates if c.chosen]
    assert len(chosen) == 1
    assert chosen[0].algorithm == record.algorithm
    assert all(c.reason for c in record.candidates)
