"""Tests for multi-way join chains."""

import pytest

from repro.errors import PredicateError, RelationError
from repro.engine.chain import ChainQuery, execute_chain
from repro.joins.predicates import Band, Equality, SetContainment
from repro.relations.relation import Relation


def _naive_chain(relations, predicates):
    rows = [(v,) for v in relations[0].values]
    for index, predicate in enumerate(predicates):
        next_rows = []
        for prefix in rows:
            for value in relations[index + 1].values:
                if predicate.matches(prefix[-1], value):
                    next_rows.append(prefix + (value,))
        rows = next_rows
    return sorted(rows, key=repr)


class TestChainQuery:
    def test_needs_two_relations(self):
        with pytest.raises(RelationError):
            ChainQuery([Relation("A", [1])], [])

    def test_predicate_count_checked(self):
        with pytest.raises(PredicateError):
            ChainQuery([Relation("A", [1]), Relation("B", [1])], [])

    def test_stage_domains_checked(self):
        with pytest.raises(PredicateError):
            ChainQuery(
                [Relation("A", [1]), Relation("B", [{1}])], [Equality()]
            )

    def test_describe(self):
        chain = ChainQuery(
            [Relation("A", [1]), Relation("B", [1]), Relation("C", [1])],
            [Equality(), Equality()],
        )
        assert "A" in chain.describe() and "C" in chain.describe()


class TestExecution:
    def test_three_way_equijoin(self):
        chain = ChainQuery(
            [Relation("A", [1, 2]), Relation("B", [2, 3, 2]), Relation("C", [2])],
            [Equality(), Equality()],
        )
        result = execute_chain(chain)
        assert result.rows == [(2, 2, 2), (2, 2, 2)]
        assert len(result.stages) == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive_three_way(self, seed):
        import random

        rng = random.Random(seed)
        relations = [
            Relation(name, [rng.randrange(4) for _ in range(8)])
            for name in ("A", "B", "C")
        ]
        predicates = [Equality(), Equality()]
        chain = ChainQuery(relations, predicates)
        assert execute_chain(chain).rows == _naive_chain(relations, predicates)

    def test_mixed_predicates(self):
        relations = [
            Relation("A", [1.0, 5.0]),
            Relation("B", [1.2, 4.8, 9.0]),
            Relation("C", [1.0, 5.0, 9.5]),
        ]
        predicates = [Band(0.5), Band(0.5)]
        chain = ChainQuery(relations, predicates)
        assert execute_chain(chain).rows == _naive_chain(relations, predicates)

    def test_set_chain(self):
        relations = [
            Relation("A", [frozenset({1}), frozenset({9})]),
            Relation("B", [frozenset({1, 2}), frozenset({3})]),
            Relation("C", [frozenset({1, 2, 5})]),
        ]
        predicates = [SetContainment(), SetContainment()]
        chain = ChainQuery(relations, predicates)
        assert execute_chain(chain).rows == _naive_chain(relations, predicates)

    def test_empty_result_short_circuits(self):
        chain = ChainQuery(
            [Relation("A", [1]), Relation("B", [2]), Relation("C", [2])],
            [Equality(), Equality()],
        )
        result = execute_chain(chain)
        assert result.rows == []
        assert len(result.stages) == 1  # second stage never ran

    def test_stage_traces_present(self):
        chain = ChainQuery(
            [Relation("A", [1, 1]), Relation("B", [1]), Relation("C", [1])],
            [Equality(), Equality()],
        )
        result = execute_chain(chain)
        assert all(stage.trace is not None for stage in result.stages)
        text = result.explain_analyze()
        assert "stage 0" in text and "final rows: 2" in text

    def test_duplicates_preserved(self):
        # Multiset semantics across stages: duplicate matches multiply.
        chain = ChainQuery(
            [Relation("A", [7, 7]), Relation("B", [7, 7]), Relation("C", [7])],
            [Equality(), Equality()],
        )
        result = execute_chain(chain)
        assert len(result.rows) == 4  # 2 x 2 x 1


class TestChainProperties:
    def test_hypothesis_three_way_matches_naive(self):
        from hypothesis import given, settings, strategies as st

        small = st.lists(st.integers(0, 3), min_size=1, max_size=6)

        @settings(max_examples=40, deadline=None)
        @given(small, small, small)
        def check(a, b, c):
            relations = [Relation("A", a), Relation("B", b), Relation("C", c)]
            predicates = [Equality(), Equality()]
            chain = ChainQuery(relations, predicates)
            assert execute_chain(chain, with_trace=False).rows == _naive_chain(
                relations, predicates
            )

        check()

    def test_hypothesis_four_way_matches_naive(self):
        from hypothesis import given, settings, strategies as st

        small = st.lists(st.integers(0, 2), min_size=1, max_size=4)

        @settings(max_examples=25, deadline=None)
        @given(small, small, small, small)
        def check(a, b, c, d):
            relations = [
                Relation("A", a), Relation("B", b), Relation("C", c), Relation("D", d)
            ]
            predicates = [Equality()] * 3
            chain = ChainQuery(relations, predicates)
            assert execute_chain(chain, with_trace=False).rows == _naive_chain(
                relations, predicates
            )

        check()
