"""Tests for plan-quality observability (PR 9).

Covers the structured :class:`PlanRecord` vertical: q-error math,
serialization round-trips, golden EXPLAIN rendering, the executor's
feedback loop (actuals, misestimate events, shadow-execution regret),
calibration aggregation, and the validation helpers shared with
``tools/check_plan_quality.py``.
"""

import json

import pytest

from repro.engine import JoinQuery, execute, plan
from repro.engine.executor import QueryResult
from repro.joins.predicates import Band, Equality
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import planquality
from repro.obs.planquality import (
    MISESTIMATE_THRESHOLD,
    PLAN_SCHEMA,
    SHADOW_INPUT_LIMIT,
    CandidateRecord,
    PlanRecord,
    calibration,
    percentile,
    q_error,
    validate_explain_document,
    validate_jsonl,
    validate_records,
)
from repro.relations.relation import Relation
from repro.runtime.budget import Budget


@pytest.fixture(autouse=True)
def clean_collectors():
    """Plan/event/metric logs start and end disabled and empty."""

    def _reset():
        for mod in (planquality, obs_events, obs_metrics):
            mod.disable()
            mod.reset()

    _reset()
    yield
    _reset()


def _equality_query(n=30, offset=20):
    left = Relation("R", list(range(n)))
    right = Relation("S", list(range(offset, offset + n)))
    return JoinQuery(left, right, Equality())


# A workload whose containment-assumption estimate is badly wrong: both
# columns have 51 distinct values so the estimate is ~196, but the heavy
# value 1 appears 50 times on each side, so the actual output is 2500
# (q-error ~ 12.7, far past the misestimate threshold).
def _skewed_equality_query():
    left = Relation("R", [1] * 50 + list(range(2, 52)))
    right = Relation("S", [1] * 50 + list(range(100, 150)))
    return JoinQuery(left, right, Equality())


class TestQError:
    def test_symmetric(self):
        assert q_error(10.0, 5.0) == 2.0
        assert q_error(5.0, 10.0) == 2.0

    def test_perfect(self):
        assert q_error(7.0, 7.0) == 1.0

    def test_clamped_total(self):
        # Both sides clamp to >= 1: empty outputs never divide by zero,
        # and "estimated 0, got 0" is a perfect score.
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.5, 1.0) == 1.0
        assert q_error(0.0, 3.0) == 3.0


class TestPlanRecord:
    def _record(self, **overrides):
        base = dict(
            query="R(2) JOIN S(2) ON equality",
            predicate="equality",
            left="R",
            right="S",
            left_size=2,
            right_size=2,
            algorithm="hash",
            reason="small output: cheapest per probe",
            estimated_output=2.0,
            candidates=[
                CandidateRecord("sort-merge", 8.0, "sort cost not repaid"),
                CandidateRecord("hash", 6.0, "cheapest per probe", chosen=True),
            ],
        )
        base.update(overrides)
        return PlanRecord(**base)

    def test_q_error_none_until_executed(self):
        record = self._record()
        assert record.q_error is None
        assert not record.executed
        record.actual_output = 4
        assert record.executed
        assert record.q_error == 2.0

    def test_deadline_pressure_skips_q_error(self):
        # estimated_output = -1 means "estimation skipped" — even an
        # executed record has no q-error to report.
        record = self._record(estimated_output=-1.0, actual_output=4)
        assert record.q_error is None

    def test_misestimate_threshold(self):
        record = self._record(actual_output=8)  # q-error 4.0, not > 4.0
        assert not record.misestimate()
        record.actual_output = 9
        assert record.misestimate()
        assert record.misestimate(threshold=10.0) is False

    def test_choice_correct_requires_shadow(self):
        record = self._record()
        assert record.choice_correct is None
        record.shadow_checked = True
        record.regret = 0
        assert record.choice_correct is True
        record.regret = 3
        assert record.choice_correct is False

    def test_round_trip(self):
        record = self._record(
            actual_output=4,
            shadow_checked=True,
            best_algorithm="hash",
            regret=0,
        )
        record.candidates[0].shadow_cost = 9
        record.candidates[1].shadow_cost = 7
        data = record.as_dict()
        assert data["schema"] == PLAN_SCHEMA
        assert data["q_error"] == 2.0
        assert data["choice_correct"] is True
        clone = PlanRecord.from_dict(data)
        assert clone == record
        assert clone.as_dict() == data

    def test_as_dict_validates(self):
        assert validate_records([self._record().as_dict()]) == []


class TestGoldenExplain:
    """The classic EXPLAIN strings render *from* the structured record,
    so the text and JSON surfaces can never disagree."""

    def test_plan_explain_is_record_line(self):
        the_plan = plan(_equality_query())
        assert the_plan.record is not None
        assert the_plan.explain() == the_plan.record.explain_line()

    def test_explain_golden_format(self):
        query = _equality_query()
        the_plan = plan(query)
        expected = (
            f"{query.describe()} -> {the_plan.algorithm_name} "
            f"(est. m = {the_plan.estimated_output:.0f}; {the_plan.reason})"
        )
        assert the_plan.explain() == expected

    def test_explain_analyze_extends_explain(self):
        result = execute(_equality_query())
        text = result.explain_analyze()
        assert text.startswith(result.plan.explain())
        assert f"actual m = {result.output_size}" in text
        assert "pebbling pi = " in text

    def test_explain_analyze_without_trace(self):
        result = execute(_equality_query(), with_trace=False)
        text = result.explain_analyze()
        assert "pebbling" not in text
        assert text.endswith(f"actual m = {result.output_size}")

    def test_render_lists_every_candidate(self):
        result = execute(_equality_query(), shadow=True)
        record = result.plan.record
        text = record.render()
        lines = text.splitlines()
        assert lines[0] == record.explain_line()
        for candidate in record.candidates:
            assert any(candidate.algorithm in line for line in lines[1:])
        assert any(line.startswith("  * ") for line in lines)
        assert f"actual m = {record.actual_output}" in text
        assert "a-posteriori best:" in text


class TestFeedbackLoop:
    def test_actuals_close_the_loop(self):
        result = execute(_equality_query())
        record = result.plan.record
        assert record.actual_output == result.output_size
        assert record.q_error is not None

    def test_misestimate_event_and_counter(self):
        obs_events.enable()
        obs_metrics.enable()
        result = execute(_skewed_equality_query())
        record = result.plan.record
        assert record.q_error > MISESTIMATE_THRESHOLD
        emitted = [
            e
            for e in obs_events.events()
            if e.name == obs_events.EVENT_PLANNER_MISESTIMATE
        ]
        assert len(emitted) == 1
        attrs = emitted[0].attrs
        assert attrs["predicate"] == "equality"
        assert attrs["actual_output"] == result.output_size
        assert attrs["q_error"] == round(record.q_error, 4)
        assert obs_metrics.counter("planner.misestimates") == 1

    def test_calibrated_plan_emits_no_misestimate(self):
        obs_events.enable()
        execute(_equality_query())
        assert all(
            e.name != obs_events.EVENT_PLANNER_MISESTIMATE
            for e in obs_events.events()
        )

    def test_planner_plan_event(self):
        obs_events.enable()
        plan(_equality_query())
        emitted = [
            e
            for e in obs_events.events()
            if e.name == obs_events.EVENT_PLANNER_PLAN
        ]
        assert len(emitted) == 1
        assert emitted[0].attrs["algorithm"] == "hash"
        assert emitted[0].attrs["candidates"] == 2


class TestShadowExecution:
    def test_shadow_scores_every_candidate(self):
        result = execute(_equality_query(), shadow=True)
        record = result.plan.record
        assert record.shadow_checked
        assert all(c.shadow_cost is not None for c in record.candidates)
        assert record.best_algorithm is not None
        assert record.regret >= 0
        assert record.choice_correct == (record.regret == 0)

    def test_ties_go_to_the_planner(self):
        # Disjoint ranges: every algorithm emits zero pairs, so all
        # shadow costs tie — the chosen plan must score regret 0.
        result = execute(_equality_query(n=10, offset=100), shadow=True)
        record = result.plan.record
        assert record.regret == 0
        assert record.best_algorithm == record.algorithm

    def test_shadow_skipped_beyond_input_limit(self):
        n = SHADOW_INPUT_LIMIT // 2 + 1
        left = Relation("R", list(range(n)))
        right = Relation("S", list(range(n)))
        result = execute(JoinQuery(left, right, Equality()), shadow=True)
        assert not result.plan.record.shadow_checked

    def test_shadow_skipped_with_single_candidate(self):
        left = Relation("R", [1.0, 2.0])
        right = Relation("S", [1.2, 5.0])
        result = execute(JoinQuery(left, right, Band(0.5)), shadow=True)
        record = result.plan.record
        assert record.algorithm == "block-NL"
        assert not record.shadow_checked

    def test_shadow_skipped_under_deadline_pressure(self):
        budget = Budget(deadline=0.0)
        budget.start()
        result = execute(_equality_query(), budget=budget, shadow=True)
        record = result.plan.record
        assert record.deadline_pressure
        assert not record.shadow_checked


class TestPlanLog:
    def test_off_by_default_but_record_attached(self):
        # Behaviour-neutrality: the log stays empty while disabled, yet
        # every plan still carries its structured record.
        the_plan = plan(_equality_query())
        assert the_plan.record is not None
        assert planquality.records() == []

    def test_enabled_log_collects_and_serializes(self, tmp_path):
        planquality.enable()
        execute(_equality_query(), shadow=True)
        records = planquality.records()
        assert len(records) == 1
        assert records[0].actual_output is not None  # completed in place
        assert validate_jsonl(planquality.to_jsonl()) == []
        target = planquality.write_plans(tmp_path / "plans.jsonl")
        assert validate_jsonl(target.read_text()) == []

    def test_reset_drops_records(self):
        planquality.enable()
        plan(_equality_query())
        planquality.reset()
        assert planquality.records() == []
        assert planquality.is_enabled()


class TestCalibration:
    def _executed_record(self, predicate, estimated, actual, regret=None):
        record = PlanRecord(
            query="q",
            predicate=predicate,
            left="R",
            right="S",
            left_size=1,
            right_size=1,
            algorithm="hash",
            reason="r",
            estimated_output=float(estimated),
            candidates=[CandidateRecord("hash", 1.0, "r", chosen=True)],
            actual_output=actual,
        )
        if regret is not None:
            record.shadow_checked = True
            record.best_algorithm = "hash" if regret == 0 else "sort-merge"
            record.regret = regret
        return record

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.90) == 4.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_rows_per_predicate(self):
        records = [
            self._executed_record("equality", 10, 10, regret=0),
            self._executed_record("equality", 10, 20, regret=5),
            self._executed_record("equality", 10, 100),  # q-error 10
            self._executed_record("spatial-overlap", 3, 3),
        ]
        rows = calibration(records)
        assert [row["predicate"] for row in rows] == [
            "equality",
            "spatial-overlap",
        ]
        eq = rows[0]
        assert eq["plans"] == 3
        assert eq["executed"] == 3
        assert eq["q_p50"] == 2.0
        assert eq["q_p90"] == 10.0
        assert eq["q_max"] == 10.0
        assert eq["misestimates"] == 1
        assert eq["shadow_checked"] == 2
        assert eq["choice_correct"] == 1
        assert eq["choice_accuracy"] == 0.5

    def test_unexecuted_rows_have_null_metrics(self):
        record = self._executed_record("equality", 10, 10)
        record.actual_output = None
        row = calibration([record])[0]
        assert row["executed"] == 0
        assert row["q_p50"] is None
        assert row["q_p90"] is None
        assert row["choice_accuracy"] is None

    def test_accepts_raw_dicts(self):
        record = self._executed_record("equality", 10, 20)
        assert calibration([record.as_dict()]) == calibration([record])


class TestValidation:
    def _valid(self):
        return plan(_equality_query()).record.as_dict()

    def test_valid_record_passes(self):
        assert validate_records([self._valid()]) == []

    def test_missing_field(self):
        data = self._valid()
        del data["algorithm"]
        problems = validate_records([data])
        assert any("missing field 'algorithm'" in p for p in problems)

    def test_wrong_schema(self):
        data = self._valid()
        data["schema"] = "repro-plan/v0"
        assert any("schema" in p for p in validate_records([data]))

    def test_exactly_one_chosen(self):
        data = self._valid()
        for candidate in data["candidates"]:
            candidate["chosen"] = True
        problems = validate_records([data])
        assert any("exactly one candidate" in p for p in problems)

    def test_chosen_matches_algorithm(self):
        data = self._valid()
        data["algorithm"] = "sort-merge"
        problems = validate_records([data])
        assert any("does not match record algorithm" in p for p in problems)

    def test_q_error_below_one_rejected(self):
        data = self._valid()
        data["actual_output"] = 5
        data["q_error"] = 0.5
        assert any("q_error" in p for p in validate_records([data]))

    def test_shadow_consistency(self):
        data = self._valid()
        data["shadow_checked"] = True
        problems = validate_records([data])
        assert any("best_algorithm" in p for p in problems)
        assert any("regret" in p for p in problems)

    def test_jsonl_parse_errors_reported(self):
        text = json.dumps(self._valid()) + "\nnot json\n"
        problems = validate_jsonl(text, context="f")
        assert any("unparseable JSON" in p for p in problems)

    def test_explain_document(self):
        document = {"schema": PLAN_SCHEMA, "records": [self._valid()]}
        assert validate_explain_document(document) == []
        assert validate_explain_document([]) == ["explain: must be an object"]
        assert any(
            "'schema'" in p
            for p in validate_explain_document({"records": []})
        )
        assert any(
            "'records'" in p
            for p in validate_explain_document({"schema": PLAN_SCHEMA})
        )


class TestQueryResultShape:
    def test_result_carries_plan_record(self):
        result = execute(_equality_query())
        assert isinstance(result, QueryResult)
        assert result.plan.record is result.plan.record  # stable handle
        assert result.plan.record.actual_output == result.output_size
