"""Tests for the query engine: queries, stats, planner, executor."""

import pytest

from repro.errors import PredicateError
from repro.engine import (
    ColumnStats,
    JoinQuery,
    estimate_selectivity,
    execute,
    plan,
)
from repro.engine.planner import RTREE_THRESHOLD
from repro.engine.stats import collect_stats, estimate_output_size
from repro.joins.predicates import (
    Band,
    Equality,
    SetContainment,
    SpatialOverlap,
)
from repro.relations.relation import Relation
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import uniform_rectangles_workload


class TestJoinQuery:
    def test_describe(self):
        q = JoinQuery(Relation("R", [1]), Relation("S", [1]), Equality())
        assert "R(1 tuples)" in q.describe()
        assert "equality" in q.describe()

    def test_domain_mismatch_rejected_at_construction(self):
        with pytest.raises(PredicateError):
            JoinQuery(Relation("R", [1]), Relation("S", [{1}]), Equality())

    def test_input_size(self):
        q = JoinQuery(Relation("R", [1, 2]), Relation("S", [1]), Equality())
        assert q.input_size == 3


class TestStats:
    def test_collect(self):
        stats = collect_stats(Relation("R", [1, 1, 2]))
        assert stats.count == 3
        assert stats.distinct == 2
        assert stats.duplication_factor == 1.5

    def test_unhashable_distinct_none(self):
        stats = collect_stats(Relation("R", [{1}, {2}]))
        assert stats.distinct is None
        assert stats.duplication_factor == 1.0

    def test_selectivity_extremes(self):
        always = estimate_selectivity(
            Relation("R", [1] * 10), Relation("S", [1] * 10), Equality()
        )
        never = estimate_selectivity(
            Relation("R", [1] * 10), Relation("S", [2] * 10), Equality()
        )
        assert always == 1.0
        assert never == 0.0

    def test_selectivity_empty_inputs(self):
        assert estimate_selectivity(Relation("R"), Relation("S", [1]), Equality()) == 0.0

    def test_equijoin_output_estimate_closed_form(self):
        # 10x10 over 5 shared keys: containment assumption gives 20.
        r = Relation("R", list(range(5)) * 2)
        s = Relation("S", list(range(5)) * 2)
        assert estimate_output_size(r, s, Equality()) == pytest.approx(20.0)

    def test_sampled_estimate_reasonable(self):
        r = Relation("R", [float(i) for i in range(10)])
        s = Relation("S", [float(i) + 0.25 for i in range(10)])
        est = estimate_output_size(r, s, Band(0.5), sample_size=400, seed=1)
        actual = sum(1 for a in r.values for b in s.values if abs(a - b) <= 0.5)
        assert actual * 0.3 <= est <= actual * 3


class TestPlanner:
    def test_equijoin_small_output_uses_hash(self):
        # Key columns on both sides: output ~ min size, below input size.
        q = JoinQuery(
            Relation("R", list(range(50))), Relation("S", list(range(40, 90))), Equality()
        )
        assert plan(q).algorithm_name == "hash"

    def test_equijoin_large_output_uses_sort_merge(self):
        q = JoinQuery(
            Relation("R", [1] * 30), Relation("S", [1] * 30), Equality()
        )
        assert plan(q).algorithm_name == "sort-merge"

    def test_spatial_small_uses_sweep(self):
        left, right = uniform_rectangles_workload(20, 20, seed=0)
        q = JoinQuery(left, right, SpatialOverlap())
        assert plan(q).algorithm_name == "plane-sweep"

    def test_spatial_large_uses_rtree(self):
        n = RTREE_THRESHOLD // 2 + 1
        left, right = uniform_rectangles_workload(n, n, extent=500.0, seed=0)
        q = JoinQuery(left, right, SpatialOverlap())
        assert plan(q).algorithm_name == "rtree"

    def test_containment_big_universe_uses_inverted(self):
        left, right = zipf_sets_workload(10, 10, universe=40, seed=0)
        q = JoinQuery(left, right, SetContainment())
        assert plan(q).algorithm_name == "inverted-index"

    def test_containment_tiny_universe_uses_signatures(self):
        left, right = zipf_sets_workload(10, 10, universe=8, seed=0)
        q = JoinQuery(left, right, SetContainment())
        assert plan(q).algorithm_name == "signature-NL"

    def test_generic_predicate_uses_block_nl(self):
        q = JoinQuery(Relation("R", [1.0]), Relation("S", [1.2]), Band(0.5))
        assert plan(q).algorithm_name == "block-NL"

    def test_explain_mentions_algorithm(self):
        q = JoinQuery(Relation("R", [1]), Relation("S", [1]), Equality())
        assert plan(q).algorithm_name in plan(q).explain()


class TestExecutor:
    def test_rows_match_graph(self):
        left, right = zipf_equijoin_workload(20, 20, key_universe=6, seed=2)
        q = JoinQuery(left, right, Equality())
        result = execute(q)
        from repro.joins.join_graph import build_join_graph

        graph = build_join_graph(left, right, Equality())
        assert result.output_size == graph.num_edges
        assert all(a == b for a, b in result.rows)

    def test_trace_attached(self):
        q = JoinQuery(Relation("R", [1, 1]), Relation("S", [1]), Equality())
        result = execute(q)
        assert result.trace is not None
        assert result.trace.output_size == 2
        assert "pebbling pi" in result.explain_analyze()

    def test_trace_skippable(self):
        q = JoinQuery(Relation("R", [1]), Relation("S", [1]), Equality())
        result = execute(q, with_trace=False)
        assert result.trace is None
        assert "pebbling" not in result.explain_analyze()

    def test_every_planned_algorithm_executes(self):
        cases = [
            JoinQuery(Relation("R", [1] * 5), Relation("S", [1] * 5), Equality()),
            JoinQuery(Relation("R", list(range(20))), Relation("S", list(range(20))), Equality()),
            JoinQuery(*uniform_rectangles_workload(15, 15, seed=1), SpatialOverlap()),
            JoinQuery(*zipf_sets_workload(8, 8, universe=30, seed=1), SetContainment()),
            JoinQuery(*zipf_sets_workload(8, 8, universe=8, seed=1), SetContainment()),
            JoinQuery(Relation("R", [1.0, 2.0]), Relation("S", [1.3]), Band(0.5)),
        ]
        for q in cases:
            result = execute(q)
            naive = [
                (a, b)
                for a in q.left.values
                for b in q.right.values
                if q.predicate.matches(a, b)
            ]
            assert sorted(map(repr, result.rows)) == sorted(map(repr, naive))

    def test_supplied_plan_respected(self):
        from repro.engine.planner import Plan

        q = JoinQuery(Relation("R", [1] * 4), Relation("S", [1] * 4), Equality())
        forced = Plan(q, "hash", "forced", 16.0)
        result = execute(q, chosen_plan=forced)
        assert result.plan.algorithm_name == "hash"

    def test_equijoin_sort_merge_trace_is_perfect(self):
        q = JoinQuery(Relation("R", [1] * 6), Relation("S", [1] * 6), Equality())
        result = execute(q)
        assert result.plan.algorithm_name == "sort-merge"
        assert result.trace is not None
        assert result.trace.cost_ratio == 1.0
