"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import complete_bipartite
from repro.graphs.io import dump_bipartite


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pebble_args(self):
        args = build_parser().parse_args(["pebble", "file.g", "--method", "exact"])
        assert args.graph_file == "file.g"
        assert args.method == "exact"


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Equijoin" in out
        assert "Set containment" in out

    def test_family(self, capsys):
        assert main(["family", "4"]) == 0
        out = capsys.readouterr().out
        assert "G_4" in out
        assert "pi=9" in out

    def test_pebble_file(self, tmp_path, capsys):
        graph = complete_bipartite(2, 3)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["pebble", str(path), "--show-scheme"]) == 0
        out = capsys.readouterr().out
        assert "pi=6" in out
        assert "pebbles on" in out

    def test_pebble_method_selection(self, tmp_path, capsys):
        graph = complete_bipartite(2, 2)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["pebble", str(path), "--method", "greedy"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_decide(self, tmp_path, capsys):
        from repro.graphs.generators import spider_graph

        graph = spider_graph(3)  # pi = 7, m = 6
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["decide", str(path), "7"]) == 0
        assert "YES" in capsys.readouterr().out
        assert main(["decide", str(path), "6"]) == 0
        out = capsys.readouterr().out
        assert "NO" in out
        assert "pi(G) >= 7" in out

    def test_svg_family(self, tmp_path, capsys):
        out_path = tmp_path / "fam.svg"
        assert main(["svg", "--family", "3", "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert (tmp_path / "fam-graph.svg").exists()

    def test_render(self, tmp_path, capsys):
        graph = complete_bipartite(2, 2)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "pi_hat=" in out

    def test_partition(self, tmp_path, capsys):
        from repro.graphs.generators import union_of_bicliques

        graph = union_of_bicliques([(2, 2), (1, 1)])
        # Tuple vertex labels are not serializable; flatten them.
        mapping = {v: f"l{i}" for i, v in enumerate(graph.left)}
        mapping.update({v: f"r{j}" for j, v in enumerate(graph.right)})
        graph = graph.relabeled(mapping)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["partition", str(path), "-p", "2", "-q", "2"]) == 0
        out = capsys.readouterr().out
        assert "hash:" in out
        assert "active cells:" in out


class TestProfileCommand:
    def test_profile_smoke_prints_table(self, capsys):
        assert main(["profile", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "self-time profile" in out
        assert "workload.engine-equijoin" in out
        assert "self %" in out

    def test_profile_graph_file(self, tmp_path, capsys):
        graph = complete_bipartite(2, 3)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["profile", "--graph", str(path), "--method", "exact"]) == 0
        out = capsys.readouterr().out
        assert "workload.pebble" in out
        assert "solver.exact" in out

    def test_profile_top_limits_rows(self, capsys):
        assert main(["profile", "--smoke", "--top", "1"]) == 0
        out = capsys.readouterr().out
        # One header line plus exactly one data row.
        table_lines = [line for line in out.splitlines() if " | " in line]
        assert len(table_lines) == 2

    def test_profile_unknown_scenario_exits_two(self, capsys):
        assert main(["profile", "--scenario", "no-such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_restores_disabled_collection(self):
        from repro.obs import metrics, trace

        assert main(["profile", "--smoke"]) == 0
        assert not trace.is_enabled()
        assert not metrics.is_enabled()
        assert trace.spans() == []


class TestTraceCommand:
    def test_trace_perfetto_validates(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        code = main(
            ["trace", "--smoke", "--format", "perfetto", "-o", str(out_path)]
        )
        assert code == 0
        assert "open in https://ui.perfetto.dev" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]

    def test_trace_folded_output(self, tmp_path, capsys):
        out_path = tmp_path / "trace.folded"
        code = main(["trace", "--smoke", "--format", "folded", "-o", str(out_path)])
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0
        assert any(stack.startswith("workload.") for stack in lines)

    def test_trace_jsonl_output(self, tmp_path):
        import json

        out_path = tmp_path / "trace.jsonl"
        code = main(["trace", "--smoke", "--format", "jsonl", "-o", str(out_path)])
        assert code == 0
        parsed = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert any(d["name"] == "workload.engine-equijoin" for d in parsed)

    def test_trace_graph_workload(self, tmp_path):
        import json

        graph = complete_bipartite(2, 2)
        graph_path = tmp_path / "graph.txt"
        graph_path.write_text(dump_bipartite(graph))
        out_path = tmp_path / "trace.json"
        code = main(["trace", "--graph", str(graph_path), "-o", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "workload.pebble" in names

    def test_trace_unknown_scenario_exits_two(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "--scenario", "no-such", "-o", str(out_path)]) == 2
        assert not out_path.exists()

    def test_trace_unknown_format_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--format", "svg"])


class TestSolveCommand:
    def _write_graphs(self, tmp_path):
        from repro.core.families import worst_case_family

        paths = []
        for index, graph in enumerate(
            [worst_case_family(2), worst_case_family(3), worst_case_family(2)]
        ):
            path = tmp_path / f"g{index}.graph"
            path.write_text(dump_bipartite(graph))
            paths.append(str(path))
        return paths

    def test_solve_batch(self, tmp_path, capsys):
        paths = self._write_graphs(tmp_path)
        assert main(["solve", *paths]) == 0
        out = capsys.readouterr().out
        for path in paths:
            assert path in out

    def test_solve_jobs_identical_output(self, tmp_path, capsys):
        paths = self._write_graphs(tmp_path)
        assert main(["solve", *paths, "--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(["solve", *paths, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel

    def test_solve_cache_warm_run(self, tmp_path, capsys):
        paths = self._write_graphs(tmp_path)
        db = str(tmp_path / "cache.db")
        assert main(["solve", *paths, "--cache", db]) == 0
        cold = capsys.readouterr().out
        assert "store(s)" in cold
        assert main(["solve", *paths, "--cache", db]) == 0
        warm = capsys.readouterr().out
        assert "hit(s)" in warm
        # Identical per-graph lines; only the cache stats line may differ.
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]


class TestExplainCommand:
    def _relations(self, tmp_path):
        left = tmp_path / "left.txt"
        right = tmp_path / "right.txt"
        left.write_text("1\n2\n3\n")
        right.write_text("2\n3\n4\n")
        return left, right

    def test_file_mode_plan_only(self, tmp_path, capsys):
        left, right = self._relations(tmp_path)
        assert main(["explain", str(left), str(right)]) == 0
        out = capsys.readouterr().out
        assert "-> hash" in out
        assert "est. cost" in out  # candidate lines
        assert "actual m" not in out  # plan-only: nothing executed

    def test_file_mode_analyze_shadow(self, tmp_path, capsys):
        left, right = self._relations(tmp_path)
        assert main(
            ["explain", str(left), str(right), "--analyze", "--shadow"]
        ) == 0
        out = capsys.readouterr().out
        assert "actual m = 2" in out
        assert "a-posteriori best:" in out

    def test_json_document_validates(self, tmp_path, capsys):
        import json

        from repro.obs.planquality import validate_explain_document

        left, right = self._relations(tmp_path)
        assert main(
            ["explain", str(left), str(right), "--analyze", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_explain_document(document) == []
        assert document["records"][0]["actual_output"] == 2

    def test_band_predicate(self, tmp_path, capsys):
        left = tmp_path / "left.txt"
        right = tmp_path / "right.txt"
        left.write_text("1.0\n2.0\n")
        right.write_text("1.2\n9.0\n")
        assert main(
            ["explain", str(left), str(right),
             "--predicate", "band", "--band-width", "0.5"]
        ) == 0
        assert "-> block-NL" in capsys.readouterr().out

    def test_scenario_mode_json_validates(self, capsys):
        import json

        from repro.obs import planquality
        from repro.obs.planquality import validate_explain_document

        assert main(["explain", "--scenario", "engine-planner", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_explain_document(document) == []
        assert document["records"]
        # The command restores the log's disabled state and leaves no
        # records behind.
        assert not planquality.is_enabled()
        assert planquality.records() == []

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["explain", "--scenario", "no-such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_missing_files_exit_two(self, capsys):
        assert main(["explain"]) == 2
        assert "two relation files" in capsys.readouterr().err


class TestMultiwayCommand:
    def test_auto_plan_text_output(self, capsys):
        assert main(["multiway", "--n", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "R(a, b)" in out
        assert "AGM bound" in out
        assert "-> lftj" in out
        assert "intermediates" in out
        assert "beta0" in out

    def test_forced_algorithm(self, capsys):
        assert main(
            ["multiway", "--n", "30", "--algorithm", "binary-cascade",
             "--skew", "uniform", "--no-trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "binary-cascade" in out

    def test_json_document(self, capsys):
        import json

        assert main(["multiway", "--n", "30", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["instance"] == "triangle"
        assert document["execution"]["algorithm"] in (
            "lftj", "generic", "binary-cascade"
        )
        assert document["agm_bound"] > 0
        assert document["plan"]["predicate"] == "multiway"

    def test_four_cycle_and_clique(self, capsys):
        assert main(
            ["multiway", "--instance", "4cycle", "--n", "30",
             "--skew", "uniform", "--algorithm", "lftj"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["multiway", "--instance", "clique", "--clique-k", "3",
             "--n", "20", "--skew", "uniform", "--algorithm", "generic"]
        ) == 0
        assert "x0" in capsys.readouterr().out

    def test_limit_caps_binding_listing(self, capsys):
        assert main(["multiway", "--n", "40", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "..." in out or "bindings" in out
