"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import complete_bipartite
from repro.graphs.io import dump_bipartite


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pebble_args(self):
        args = build_parser().parse_args(["pebble", "file.g", "--method", "exact"])
        assert args.graph_file == "file.g"
        assert args.method == "exact"


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Equijoin" in out
        assert "Set containment" in out

    def test_family(self, capsys):
        assert main(["family", "4"]) == 0
        out = capsys.readouterr().out
        assert "G_4" in out
        assert "pi=9" in out

    def test_pebble_file(self, tmp_path, capsys):
        graph = complete_bipartite(2, 3)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["pebble", str(path), "--show-scheme"]) == 0
        out = capsys.readouterr().out
        assert "pi=6" in out
        assert "pebbles on" in out

    def test_pebble_method_selection(self, tmp_path, capsys):
        graph = complete_bipartite(2, 2)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["pebble", str(path), "--method", "greedy"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_decide(self, tmp_path, capsys):
        from repro.graphs.generators import spider_graph

        graph = spider_graph(3)  # pi = 7, m = 6
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["decide", str(path), "7"]) == 0
        assert "YES" in capsys.readouterr().out
        assert main(["decide", str(path), "6"]) == 0
        out = capsys.readouterr().out
        assert "NO" in out
        assert "pi(G) >= 7" in out

    def test_svg_family(self, tmp_path, capsys):
        out_path = tmp_path / "fam.svg"
        assert main(["svg", "--family", "3", "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert (tmp_path / "fam-graph.svg").exists()

    def test_render(self, tmp_path, capsys):
        graph = complete_bipartite(2, 2)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "pi_hat=" in out

    def test_partition(self, tmp_path, capsys):
        from repro.graphs.generators import union_of_bicliques

        graph = union_of_bicliques([(2, 2), (1, 1)])
        # Tuple vertex labels are not serializable; flatten them.
        mapping = {v: f"l{i}" for i, v in enumerate(graph.left)}
        mapping.update({v: f"r{j}" for j, v in enumerate(graph.right)})
        graph = graph.relabeled(mapping)
        path = tmp_path / "graph.txt"
        path.write_text(dump_bipartite(graph))
        assert main(["partition", str(path), "-p", "2", "-q", "2"]) == 0
        out = capsys.readouterr().out
        assert "hash:" in out
        assert "active cells:" in out
