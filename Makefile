# Development targets.  `make check` is the full gate CI runs.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-baseline perf-gate profile-smoke \
	chaos-smoke examples docs check clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Bench artifacts go to a scratch directory so repo-root BENCH_<date>.json
# files stop churning in every PR; the committed comparison point is
# benchmarks/baseline.json (refresh it with `make bench-baseline`).
bench-smoke:
	rm -rf .bench-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
		--out-dir .bench-smoke --runs-dir .bench-smoke/runs
	$(PYTHON) tools/check_bench_json.py .bench-smoke/BENCH_*.json
	$(PYTHON) tools/check_trace_json.py .bench-smoke/runs/*/trace.json
	rm -rf .bench-smoke

# Refresh the committed perf baseline (smoke mode, the size perf-gate
# compares against).  Run at a clean commit and commit the result.
# best-of-5 repeats: smoke scenarios run sub-millisecond, so a single
# sample is too noisy to gate against.
bench-baseline:
	rm -rf .bench-baseline
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke --repeat 5 \
		--out-dir .bench-baseline --runs-dir .bench-baseline/runs
	$(PYTHON) tools/check_bench_json.py .bench-baseline/BENCH_*.json
	cp .bench-baseline/BENCH_*.json benchmarks/baseline.json
	rm -rf .bench-baseline
	@echo "benchmarks/baseline.json refreshed — commit it"

# The perf regression gate: a fresh smoke bench must stay within
# tolerance of the committed baseline, scenario by scenario.
perf-gate:
	rm -rf .perf-gate
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke --repeat 5 \
		--out-dir .perf-gate --runs-dir .perf-gate/runs
	$(PYTHON) tools/bench_diff.py benchmarks/baseline.json \
		.perf-gate/BENCH_*.json --tolerance 0.25
	rm -rf .perf-gate

# Profiling smoke: `repro profile` on a tiny workload must attribute
# nonzero self time (the CLI exits 1 on an empty profile).
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro profile --smoke --top 10
	PYTHONPATH=src $(PYTHON) -m repro trace --smoke --format perfetto \
		-o .profile-smoke-trace.json
	$(PYTHON) tools/check_trace_json.py .profile-smoke-trace.json
	rm -f .profile-smoke-trace.json

# Deterministic fault injection: the suite plus one chaos bench per seed.
# The chaos bench must exit 1 (scenarios fail after retry) without ever
# printing a raw traceback, and its failure records must validate.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/runtime/ -q
	@for seed in 0 1 2; do \
		echo "== chaos seed $$seed"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario storage-paging --no-bench-file \
			--runs-dir .chaos-runs \
			--fault-seed $$seed --fault-rate 1.0 \
			2> .chaos-stderr.txt; \
		status=$$?; \
		cat .chaos-stderr.txt; \
		test $$status -eq 1 || exit 1; \
		grep -q Traceback .chaos-stderr.txt && exit 1 || true; \
	done
	rm -rf .chaos-runs .chaos-stderr.txt

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

check: test bench examples docs
	git diff --exit-code docs/API.md

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
