# Development targets.  `make check` is the full gate CI runs.

PYTHON ?= python

.PHONY: install test bench bench-smoke chaos-smoke examples docs check clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke
	$(PYTHON) tools/check_bench_json.py BENCH_*.json

# Deterministic fault injection: the suite plus one chaos bench per seed.
# The chaos bench must exit 1 (scenarios fail after retry) without ever
# printing a raw traceback, and its failure records must validate.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/runtime/ -q
	@for seed in 0 1 2; do \
		echo "== chaos seed $$seed"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario storage-paging --no-bench-file \
			--runs-dir .chaos-runs \
			--fault-seed $$seed --fault-rate 1.0 \
			2> .chaos-stderr.txt; \
		status=$$?; \
		cat .chaos-stderr.txt; \
		test $$status -eq 1 || exit 1; \
		grep -q Traceback .chaos-stderr.txt && exit 1 || true; \
	done
	rm -rf .chaos-runs .chaos-stderr.txt

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

check: test bench examples docs
	git diff --exit-code docs/API.md

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
