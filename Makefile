# Development targets.  `make check` is the full gate CI runs.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-baseline perf-gate plan-gate \
	plan-baseline profile-smoke chaos-smoke report-smoke parallel-smoke \
	serve-smoke crash-smoke telemetry-smoke wcoj-smoke runs-index \
	examples docs check clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Bench artifacts go to a scratch directory so repo-root BENCH_<date>.json
# files stop churning in every PR; the committed comparison point is
# benchmarks/baseline.json (refresh it with `make bench-baseline`), and the
# canonical trajectory feed is benchmarks/results/ (committed snapshots,
# published here and by the CI bench-smoke job).
bench-smoke:
	rm -rf .bench-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
		--out-dir .bench-smoke --runs-dir .bench-smoke/runs \
		--publish-dir benchmarks/results
	$(PYTHON) tools/check_bench_json.py .bench-smoke/BENCH_*.json
	$(PYTHON) tools/check_trace_json.py .bench-smoke/runs/*/trace.json
	$(PYTHON) tools/check_events_jsonl.py .bench-smoke/runs/*/events.jsonl
	rm -rf .bench-smoke

# Refresh the committed perf baseline (smoke mode, the size perf-gate
# compares against).  Run at a clean commit and commit the result.
# best-of-5 repeats: smoke scenarios run sub-millisecond, so a single
# sample is too noisy to gate against.
bench-baseline:
	rm -rf .bench-baseline
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke --repeat 5 \
		--out-dir .bench-baseline --runs-dir .bench-baseline/runs \
		--no-publish
	$(PYTHON) tools/check_bench_json.py .bench-baseline/BENCH_*.json
	cp .bench-baseline/BENCH_*.json benchmarks/baseline.json
	rm -rf .bench-baseline
	@echo "benchmarks/baseline.json refreshed — commit it"

# The perf regression gate: a fresh smoke bench must stay within
# tolerance of the committed baseline, scenario by scenario.
perf-gate:
	rm -rf .perf-gate
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke --repeat 5 \
		--out-dir .perf-gate --runs-dir .perf-gate/runs \
		--no-publish
	$(PYTHON) tools/bench_diff.py benchmarks/baseline.json \
		.perf-gate/BENCH_*.json --tolerance 0.25
	rm -rf .perf-gate

# Plan-quality gate (docs/OBSERVABILITY.md): a fresh smoke bench of the
# engine scenarios must produce schema-valid plan records (plans.jsonl
# and `repro explain --json`), and their per-predicate calibration
# (q-error p90, shadow choice accuracy) must stay within tolerance of
# the committed baseline.  Calibration derives from output counts and
# pebbling costs — never timings — so same-seed runs gate
# deterministically.
plan-gate:
	rm -rf .plan-gate
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
		--scenario engine-planner --scenario engine-equijoin \
		--scenario engine-spatial --scenario engine-chain \
		--out-dir .plan-gate --runs-dir .plan-gate/runs \
		--no-bench-file --no-publish
	PYTHONPATH=src $(PYTHON) -m repro explain --scenario engine-planner \
		--json > .plan-gate/explain.json
	$(PYTHON) tools/check_plan_quality.py --validate \
		.plan-gate/runs/*/plans.jsonl .plan-gate/explain.json
	$(PYTHON) tools/check_plan_quality.py \
		--baseline benchmarks/plan_baseline.json \
		.plan-gate/runs/*/plans.jsonl
	rm -rf .plan-gate

# Refresh the committed plan-quality baseline (same workload as
# plan-gate).  Run at a clean commit and commit the result.
plan-baseline:
	rm -rf .plan-baseline
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
		--scenario engine-planner --scenario engine-equijoin \
		--scenario engine-spatial --scenario engine-chain \
		--out-dir .plan-baseline --runs-dir .plan-baseline/runs \
		--no-bench-file --no-publish
	$(PYTHON) tools/check_plan_quality.py \
		--write-baseline benchmarks/plan_baseline.json \
		.plan-baseline/runs/*/plans.jsonl
	rm -rf .plan-baseline
	@echo "benchmarks/plan_baseline.json refreshed — commit it"

# Profiling smoke: `repro profile` on a tiny workload must attribute
# nonzero self time (the CLI exits 1 on an empty profile).
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro profile --smoke --top 10
	PYTHONPATH=src $(PYTHON) -m repro trace --smoke --format perfetto \
		-o .profile-smoke-trace.json
	$(PYTHON) tools/check_trace_json.py .profile-smoke-trace.json
	rm -f .profile-smoke-trace.json

# Deterministic fault injection: the suite plus one chaos bench per seed.
# The chaos bench must exit 1 (scenarios fail after retry) without ever
# printing a raw traceback, and its failure records must validate.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/runtime/ -q
	@for seed in 0 1 2; do \
		echo "== chaos seed $$seed"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario storage-paging --no-bench-file \
			--runs-dir .chaos-runs \
			--no-publish \
			--fault-seed $$seed --fault-rate 1.0 \
			2> .chaos-stderr.txt; \
		status=$$?; \
		cat .chaos-stderr.txt; \
		test $$status -eq 1 || exit 1; \
		grep -q Traceback .chaos-stderr.txt && exit 1 || true; \
	done
	rm -rf .chaos-runs .chaos-stderr.txt

# Cross-run report smoke: three seeded smoke benches into a scratch runs
# dir, a trend query over them, and the HTML dashboard — with every
# artifact (events.jsonl, report.html links) validated.
report-smoke:
	rm -rf .report-smoke
	@for seed in 0 1 2; do \
		echo "== report-smoke bench seed $$seed"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario solver-exact --scenario engine-equijoin \
			--seed $$seed --runs-dir .report-smoke/runs \
			--no-bench-file --no-publish || exit 1; \
		sleep 1; \
	done
	$(PYTHON) tools/check_events_jsonl.py .report-smoke/runs/*/events.jsonl
	PYTHONPATH=src $(PYTHON) -m repro runs list --runs-dir .report-smoke/runs
	PYTHONPATH=src $(PYTHON) -m repro runs trend --scenario solver-exact \
		--runs-dir .report-smoke/runs
	PYTHONPATH=src $(PYTHON) -m repro report --html \
		-o .report-smoke/report.html --runs-dir .report-smoke/runs
	$(PYTHON) tools/check_report_html.py .report-smoke/report.html
	rm -rf .report-smoke

# Determinism gate for the parallel solve service (docs/PARALLEL.md):
# the batch scenario must produce byte-identical per-scenario results at
# --jobs 1 and --jobs 4, and two runs sharing a persistent solve cache
# must agree with cache.hit events visible in the warm run's event log.
parallel-smoke:
	rm -rf .parallel-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/parallel/ -q
	@for leg in j1 j4; do \
		jobs=$${leg#j}; \
		echo "== solver-batch --jobs $$jobs"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario solver-batch --jobs $$jobs \
			--out-dir .parallel-smoke/$$leg \
			--runs-dir .parallel-smoke/$$leg/runs \
			--no-publish || exit 1; \
	done
	@for leg in warm1 warm2; do \
		echo "== solver-batch --jobs 4 --cache ($$leg)"; \
		PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
			--scenario solver-batch --jobs 4 \
			--cache .parallel-smoke/solve-cache.db \
			--out-dir .parallel-smoke/$$leg \
			--runs-dir .parallel-smoke/$$leg/runs \
			--no-publish || exit 1; \
	done
	$(PYTHON) tools/check_events_jsonl.py .parallel-smoke/*/runs/*/events.jsonl
	$(PYTHON) tools/check_parallel_smoke.py .parallel-smoke
	rm -rf .parallel-smoke

# Solve-server gate (docs/PARALLEL.md): the server suite, then a real
# `repro serve` process driven by two waves of the async load generator —
# every request must reach a clean terminal status, the warm wave must
# hit the shared solve cache, and the run's events.jsonl must validate.
serve-smoke:
	rm -rf .serve-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/server/ -q
	PYTHONPATH=src $(PYTHON) tools/check_serve_smoke.py .serve-smoke
	rm -rf .serve-smoke

# Crash-tolerance gate (docs/ROBUSTNESS.md): the retry/healing/crash
# suites, then a real journaled `repro serve` process SIGKILL'd mid-wave
# — the write-ahead journal must hold the admitted-but-unanswered
# entries, and a `--recover` restart over the stale socket must replay
# them all, emit server.recover events, and leave the journal clean.
crash-smoke:
	rm -rf .crash-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/runtime/test_retry.py \
		tests/parallel/test_healing.py tests/server/test_journal.py \
		tests/server/test_crash.py -q
	PYTHONPATH=src $(PYTHON) tools/check_crash_smoke.py .crash-smoke
	rm -rf .crash-smoke

# Telemetry gate (docs/OBSERVABILITY.md): the tracing/telemetry suites,
# then a real journaled `repro serve` process under load — its `metrics`
# op must answer valid Prometheus text format with the required families
# (per-op latency histograms included), and one addressed request must
# assemble from the run's trace.jsonl into a single validated Chrome
# trace whose dispatch and worker solver spans share one trace_id.
telemetry-smoke:
	rm -rf .telemetry-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/obs/test_context.py \
		tests/obs/test_telemetry.py tests/obs/test_trace.py \
		tests/server/test_telemetry.py -q
	PYTHONPATH=src $(PYTHON) tools/check_metrics_exposition.py .telemetry-smoke
	rm -rf .telemetry-smoke

# Worst-case-optimality gate (docs/MULTIWAY.md): the multiway join
# suites, then the two wcoj bench scenarios — on the skewed triangle
# LFTJ's intermediates must stay within the AGM bound while the binary
# cascade's measured AND estimated intermediates exceed it (the planner
# sees the blowup coming); on the uniform 4-cycle LFTJ must stay within
# the bound.  Wall-clock speedups are printed, never gated.
wcoj-smoke:
	rm -rf .wcoj-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/joins/test_multiway.py \
		tests/joins/test_properties_multiway.py -q
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke \
		--scenario wcoj-triangle --scenario wcoj-4cycle \
		--out-dir .wcoj-smoke --runs-dir .wcoj-smoke/runs \
		--no-publish
	$(PYTHON) tools/check_wcoj_smoke.py .wcoj-smoke/BENCH_*.json
	rm -rf .wcoj-smoke

# Build (or refresh) the queryable SQLite index over runs/.
runs-index:
	PYTHONPATH=src $(PYTHON) -m repro runs index --runs-dir runs

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

check: test bench examples docs
	git diff --exit-code docs/API.md

# benchmarks/results/ is the committed perf-trajectory feed — never clean it.
clean:
	rm -rf .pytest_cache .bench-smoke .bench-baseline .perf-gate \
		.plan-gate .plan-baseline .report-smoke .parallel-smoke \
		.serve-smoke .crash-smoke .telemetry-smoke .solve-cache.db \
		src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
