# Development targets.  `make check` is the full gate CI runs.

PYTHON ?= python

.PHONY: install test bench bench-smoke examples docs check clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench --smoke
	$(PYTHON) tools/check_bench_json.py BENCH_*.json

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

check: test bench examples docs
	git diff --exit-code docs/API.md

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
