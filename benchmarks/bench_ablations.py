"""Ablation benchmarks for the design choices DESIGN.md calls out.

- exact solver: deficiency-bound pruning + constrained-first ordering vs
  the effect of disabling the biclique fast path;
- DFS approximation: chunk reordering on vs off (via raw chunk count);
- join-graph extraction: accelerated predicate paths vs naive evaluation;
- local-search polish: improvement over each constructive heuristic.
"""

import time

from repro.analysis.report import Table
from repro.graphs.generators import random_connected_bipartite, union_of_bicliques
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
from repro.core.families import worst_case_family
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import optimal_component_tour, solve_exact
from repro.core.solvers.registry import solve
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import uniform_rectangles_workload


def test_ablation_biclique_fast_path(benchmark, emit):
    """The closed-form biclique answer vs raw search on the same input."""
    from repro.graphs.line_graph import line_graph
    from repro.core.solvers.exact import _PathPartitionSearch

    def run():
        table = Table(
            ["k x l", "m", "fast_path_s", "raw_search_s"],
            title="Ablation: biclique closed form vs generic search",
        )
        for k, l in ((3, 3), (4, 4), (4, 5)):
            from repro.graphs.generators import complete_bipartite

            g = complete_bipartite(k, l)
            start = time.perf_counter()
            optimal_component_tour(g)
            fast = time.perf_counter() - start
            line = line_graph(g)
            start = time.perf_counter()
            search = _PathPartitionSearch(line, node_budget=5_000_000)
            search.solve(1)
            raw = time.perf_counter() - start
            table.add_row([f"{k}x{l}", g.num_edges, round(fast, 5), round(raw, 5)])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_biclique_fast_path", table)


def test_ablation_search_ordering(benchmark, emit):
    """Most-constrained-first ordering vs raw order in the exact search.

    On the corona family the heuristic collapses the search to near-linear
    effort; without it the same instances take orders of magnitude more
    nodes (budget-capped).
    """
    from repro.errors import InstanceTooLargeError
    from repro.core.solvers.exact import exact_search_effort

    budget = 300_000

    def probe(graph, use_ordering):
        try:
            return exact_search_effort(graph, use_ordering=use_ordering, node_budget=budget)
        except InstanceTooLargeError:
            return budget

    def run():
        table = Table(
            ["instance", "m", "nodes(ordered)", "nodes(raw)"],
            title="Ablation: constrained-first search ordering",
        )
        for n in (6, 8, 10):
            g = worst_case_family(n)
            table.add_row(
                [f"G_{n}", g.num_edges, probe(g, True), probe(g, False)]
            )
        for seed in (1,):
            g = random_connected_bipartite(8, 8, extra_edges=2, seed=seed)
            table.add_row(
                [f"tree+2 (seed {seed})", g.num_edges, probe(g, True), probe(g, False)]
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_search_ordering", table)
    for row in table._rows:
        assert int(row[2]) <= int(row[3])


def test_ablation_polish(benchmark, emit):
    """How much local search buys on top of each constructive heuristic."""
    graphs = [
        random_connected_bipartite(6, 6, extra_edges=4, seed=700 + s)
        for s in range(6)
    ] + [worst_case_family(10)]

    def run():
        table = Table(
            ["method", "mean_pi_raw", "mean_pi_polished", "jumps_removed"],
            title="Ablation: local-search polish on top of heuristics",
        )
        for method in ("dfs", "greedy", "matching"):
            raw_total = polished_total = removed = 0
            for g in graphs:
                raw = solve(g, method)
                polished = solve(g, method + "+polish")
                raw_total += raw.effective_cost
                polished_total += polished.effective_cost
                removed += raw.jumps - polished.jumps
            table.add_row(
                [
                    method,
                    round(raw_total / len(graphs), 2),
                    round(polished_total / len(graphs), 2),
                    removed,
                ]
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_polish", table)
    for row in table._rows:
        assert float(row[2]) <= float(row[1])


def test_ablation_join_graph_acceleration(benchmark, emit):
    """Accelerated join-graph extraction vs the naive cross product."""
    workloads = [
        ("equality/hash", Equality(), zipf_equijoin_workload(120, 120, key_universe=30, seed=1)),
        ("spatial/sweep", SpatialOverlap(), uniform_rectangles_workload(120, 120, seed=1)),
        (
            "containment/inverted",
            SetContainment(),
            zipf_sets_workload(80, 80, universe=25, left_size=2, right_size=6, seed=1),
        ),
    ]

    def run():
        table = Table(
            ["predicate", "m", "accelerated_s", "naive_s", "speedup"],
            title="Ablation: accelerated join-graph extraction vs naive",
        )
        for name, predicate, (left, right) in workloads:
            start = time.perf_counter()
            fast = build_join_graph(left, right, predicate)
            fast_s = time.perf_counter() - start
            start = time.perf_counter()
            slow = build_join_graph(left, right, predicate, accelerate=False)
            slow_s = time.perf_counter() - start
            assert fast == slow
            table.add_row(
                [
                    name,
                    fast.num_edges,
                    round(fast_s, 4),
                    round(slow_s, 4),
                    round(slow_s / max(fast_s, 1e-9), 1),
                ]
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_join_graph_acceleration", table)


def test_ablation_auto_method_choice(benchmark, emit):
    """The auto router picks a guaranteed-optimal method whenever cheap."""
    cases = [
        ("equijoin graph", union_of_bicliques([(3, 3)] * 20)),
        ("small hard graph", worst_case_family(6)),
        ("large graph", worst_case_family(50)),
    ]

    def run():
        table = Table(
            ["instance", "m", "chosen_method", "optimal_flag", "pi"],
            title="Ablation: automatic solver selection",
        )
        for name, g in cases:
            result = solve(g)
            table.add_row([name, g.num_edges, result.method, result.optimal,
                           result.effective_cost])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_auto_method", table)
