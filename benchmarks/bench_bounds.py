"""E-L2.1 / E-L2.2: cost bounds and additivity (Lemmas 2.1–2.3).

Regenerates: the bounds table (m ≤ π ≤ 1.25m on random instances) and an
additivity check.  Times: the exact solver on a bounds-sweep instance.
"""

from repro.analysis.experiments import bounds_experiment
from repro.analysis.report import Table
from repro.graphs.components import disjoint_union
from repro.graphs.generators import random_connected_bipartite
from repro.core.families import worst_case_family
from repro.core.solvers.exact import solve_exact


def test_bounds_table(benchmark, emit):
    table = benchmark(bounds_experiment, 10)
    emit("E-L2.1_bounds", table)
    assert len(table) == 10


def test_additivity_table(benchmark, emit):
    pairs = [
        (random_connected_bipartite(3, 3, extra_edges=1, seed=s), worst_case_family(3))
        for s in range(4)
    ]

    def run():
        table = Table(
            ["case", "pi_G", "pi_H", "pi_union", "additive"],
            title="E-L2.2: additivity of pi over disjoint union (Lemma 2.2)",
        )
        for index, (g, h) in enumerate(pairs):
            pi_g = solve_exact(g).effective_cost
            pi_h = solve_exact(h).effective_cost
            pi_u = solve_exact(disjoint_union(g, h)).effective_cost
            table.add_row([index, pi_g, pi_h, pi_u, pi_u == pi_g + pi_h])
        return table

    table = benchmark(run)
    emit("E-L2.2_additivity", table)
    assert all(row[-1] == "True" for row in table._rows)
