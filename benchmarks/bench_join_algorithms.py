"""E-JOINS: real join algorithms measured inside the pebbling model.

Regenerates: the pebbling-cost table of actual executions — sort-merge
achieves π/m = 1 on equijoins (Theorem 3.2 made operational), hash and
index-nested-loops pay jumps, and on the adversarial containment instance
*no* algorithm can reach ratio 1 (Theorem 3.3).  Times: the trace pipeline
and the individual join algorithms.
"""

from repro.analysis.experiments import join_algorithm_experiment
from repro.analysis.report import Table
from repro.joins.algorithms import (
    hash_join,
    inverted_index_join,
    pbsm_join,
    plane_sweep_join,
    rtree_join,
    signature_nested_loops,
    sort_merge_join,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SetContainment, SpatialOverlap
from repro.joins.trace import trace_report
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import uniform_rectangles_workload


def test_join_algorithm_table(benchmark, emit):
    table = benchmark.pedantic(join_algorithm_experiment, rounds=1, iterations=1)
    emit("E-JOINS_pebbling_costs", table)
    rows = {tuple(r[:2]): r for r in table._rows}
    assert rows[("equijoin/zipf", "sort-merge")][4] == "1"  # pi/m


def test_spatial_algorithms_traced(benchmark, emit):
    left, right = uniform_rectangles_workload(60, 60, mean_side=6.0, seed=21)
    graph = build_join_graph(left, right, SpatialOverlap())

    def run():
        table = Table(
            ["algorithm", "m", "pi", "pi/m", "jumps"],
            title="E-JOINS: spatial join algorithm pebbling costs",
        )
        for name, algo in (
            ("plane-sweep", plane_sweep_join),
            ("rtree", rtree_join),
            ("pbsm", pbsm_join),
        ):
            report = trace_report(graph, algo(left, right), name)
            table.add_row(list(report.row())[:2] + [report.effective_cost,
                          round(report.cost_ratio, 4), report.jumps])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("E-JOINS_spatial", table)


def test_set_algorithms_traced(benchmark, emit):
    left, right = zipf_sets_workload(
        25, 25, universe=10, left_size=2, right_size=6, seed=13
    )
    graph = build_join_graph(left, right, SetContainment())

    def run():
        table = Table(
            ["algorithm", "m", "pi", "pi/m", "jumps"],
            title="E-JOINS: containment join algorithm pebbling costs",
        )
        for name, algo in (
            ("signature-NL", signature_nested_loops),
            ("inverted-index", inverted_index_join),
        ):
            report = trace_report(graph, algo(left, right), name)
            table.add_row([name, report.output_size, report.effective_cost,
                           round(report.cost_ratio, 4), report.jumps])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("E-JOINS_sets", table)


def test_sort_merge_throughput(benchmark):
    from repro.workloads.equijoin import zipf_equijoin_workload

    left, right = zipf_equijoin_workload(300, 300, key_universe=40, seed=2)
    output = benchmark(sort_merge_join, left, right)
    assert output


def test_hash_join_throughput(benchmark):
    from repro.workloads.equijoin import zipf_equijoin_workload

    left, right = zipf_equijoin_workload(300, 300, key_universe=40, seed=2)
    output = benchmark(hash_join, left, right)
    assert output
