"""E-T4.2: NP-completeness exhibited as exponential exact-search scaling.

Regenerates: the hard-vs-easy effort table — exact search-node counts on
tree-plus-chords instances grow explosively while the equijoin solver
stays linear.  Times: one hard exact solve (budget-capped).
"""

from repro.analysis.experiments import hardness_scaling_experiment
from repro.errors import InstanceTooLargeError
from repro.graphs.generators import random_connected_bipartite
from repro.core.solvers.exact import solve_exact


def test_hardness_table(benchmark, emit):
    table = benchmark.pedantic(
        hardness_scaling_experiment,
        kwargs={"sizes": (6, 7, 8, 9, 10), "node_budget": 1_500_000},
        rounds=1,
        iterations=1,
    )
    emit("E-T4.2_hardness_scaling", table)
    # A budget-stopped search renders as ">N"; strip the marker for the
    # shape check (the budget is a lower bound on the true effort there).
    nodes = [int(row[2].lstrip(">")) for row in table._rows]
    # Shape check: the largest instance needs orders of magnitude more
    # search effort than the smallest.
    assert max(nodes) > 100 * max(1, min(nodes))


def test_hard_instance_solve(benchmark):
    g = random_connected_bipartite(9, 9, extra_edges=2, seed=1)

    def run():
        try:
            return solve_exact(g, node_budget=1_500_000).search_nodes
        except InstanceTooLargeError:
            return 1_500_000

    nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert nodes > 0
