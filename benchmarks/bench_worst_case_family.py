"""E-T3.3 / Figure 1: the worst-case family G_n.

Regenerates: the G_n table (exact optimum vs the 1.25m − 1 formula, the
deficiency lower bound, and the explicit optimal tour) plus a structural
verification of Fig 1(b)'s corona line graph.  Times: the exact solver on
the family.
"""

from repro.analysis.experiments import worst_case_experiment
from repro.analysis.report import Table
from repro.graphs.line_graph import line_graph
from repro.core.families import (
    corona_line_graph,
    is_corona_of_clique,
    worst_case_family,
)
from repro.core.solvers.exact import solve_exact


def test_worst_case_table(benchmark, emit):
    table = benchmark(worst_case_experiment, 8)
    emit("E-T3.3_worst_case_family", table)
    # pi_exact equals the formula on every row.
    for row in table._rows:
        assert row[2] == row[3]


def test_figure1_line_graph_structure(benchmark, emit):
    ns = (3, 4, 5, 6, 8)

    def run():
        table = Table(
            ["n", "L(G_n)_nodes", "corona_match", "is_corona"],
            title="Figure 1(b): L(G_n) is the corona K_n with n pendants",
        )
        for n in ns:
            lg = line_graph(worst_case_family(n))
            table.add_row(
                [n, lg.num_vertices, lg == corona_line_graph(n), is_corona_of_clique(lg)]
            )
        return table

    table = benchmark(run)
    emit("Fig1_corona", table)
    assert all(row[2] == "True" and row[3] == "True" for row in table._rows)


def test_family_exact_solve(benchmark):
    g = worst_case_family(12)
    result = benchmark(solve_exact, g)
    assert result.effective_cost == 29
