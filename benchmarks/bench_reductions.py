"""E-T4.3 / E-T4.4 / Figure 2: the L-reductions and the diamond gadget.

Regenerates: the measured α/β tables for both reductions and the gadget's
certification summary (including the documented negative finding on full
Fig-2 gadgets).  Times: the reduction experiment driver.
"""

from repro.analysis.experiments import reduction_experiment
from repro.analysis.report import Table
from repro.core.gadgets import default_gadget


def test_reduction_tables(benchmark, emit):
    diamond, incidence = benchmark.pedantic(
        reduction_experiment, kwargs={"seeds": 5}, rounds=1, iterations=1
    )
    emit("E-T4.3_diamond_reduction", diamond)
    emit("E-T4.4_incidence_reduction", incidence)
    # Beta stays within the paper's beta = 1 on every probe.
    for table in (diamond, incidence):
        for row in table._rows:
            assert float(row[-1]) <= 1.0 + 1e-9


def test_figure2_gadget_certificate(benchmark, emit):
    def run():
        gadget = default_gadget()
        cert = gadget.certify()
        table = Table(
            ["property", "status"],
            title="Figure 2: shipped diamond gadget certificate (10 nodes)",
        )
        table.add_row(["degree bound (corners 2, centrals <= 3)", cert.degree_ok])
        table.add_row(["endpoint property (all Ham paths end at corners)", cert.endpoints_ok])
        table.add_row(
            ["corner connectivity", f"5/6 pairs (missing {gadget.missing_pairs()})"]
        )
        table.add_row(
            [
                "negative finding",
                "exhaustive template search: no <=14-node gadget has all three",
            ]
        )
        return table

    table = benchmark(run)
    emit("Fig2_gadget", table)
