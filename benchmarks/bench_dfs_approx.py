"""E-T3.1: the 1.25-approximation (Theorem 3.1 / Lemma 3.1).

Regenerates: the DFS-vs-exact quality table.  Times: the DFS algorithm on a
growing series, exhibiting its near-linear scaling (Lemma 3.1's "linear
time" claim — our implementation is near-linear, which preserves the shape
against the exponential exact solver).
"""

import time

from repro.analysis.experiments import dfs_approx_experiment
from repro.analysis.report import Table
from repro.graphs.generators import random_connected_bipartite
from repro.core.solvers.dfs_approx import solve_dfs_approx


def test_dfs_quality_table(benchmark, emit):
    table = benchmark(dfs_approx_experiment, 8, 6)
    emit("E-T3.1_dfs_quality", table)


def test_dfs_runtime_series(benchmark, emit):
    sizes = (20, 40, 80, 160)
    graphs = {
        n: random_connected_bipartite(n, n, extra_edges=n // 2, seed=1)
        for n in sizes
    }

    def series():
        table = Table(
            ["n", "m", "pi_dfs", "guarantee", "seconds"],
            title="E-T3.1: DFS algorithm runtime scaling (Lemma 3.1)",
        )
        for n in sizes:
            g = graphs[n]
            start = time.perf_counter()
            result = solve_dfs_approx(g)
            elapsed = time.perf_counter() - start
            table.add_row(
                [n, g.num_edges, result.effective_cost, result.guarantee, round(elapsed, 4)]
            )
        return table

    table = benchmark.pedantic(series, rounds=1, iterations=1)
    emit("E-T3.1_dfs_runtime", table)


def test_dfs_single_solve(benchmark):
    g = random_connected_bipartite(40, 40, extra_edges=20, seed=3)
    result = benchmark(solve_dfs_approx, g)
    assert result.effective_cost <= result.guarantee
