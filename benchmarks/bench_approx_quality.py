"""E-APPROX: the approximation ladder (§4's approximation discussion).

Regenerates: per-method π against the exact optimum, plus aggregate
ratios.  Times: the ladder driver and the individual polished solvers.
"""

from repro.analysis.experiments import approx_ladder_experiment
from repro.analysis.report import Table
from repro.graphs.generators import random_connected_bipartite
from repro.core.families import worst_case_family
from repro.core.solvers.registry import solve


def test_approx_ladder_table(benchmark, emit):
    table = benchmark.pedantic(
        approx_ladder_experiment, kwargs={"seeds": 6}, rounds=1, iterations=1
    )
    emit("E-APPROX_ladder", table)
    for row in table._rows:
        exact = int(row[2])
        for cell in row[3:]:
            assert int(cell) >= exact  # nothing beats the optimum


def test_ratio_summary(benchmark, emit):
    methods = ("dfs", "dfs+polish", "greedy+polish", "matching+polish")
    graphs = [
        random_connected_bipartite(5, 5, extra_edges=3, seed=500 + s)
        for s in range(10)
    ] + [worst_case_family(n) for n in (4, 6, 8)]

    def run():
        table = Table(
            ["method", "mean_ratio", "worst_ratio"],
            title="E-APPROX: mean/worst pi ratio vs exact optimum",
        )
        for method in methods:
            ratios = []
            for g in graphs:
                exact = solve(g, "exact").effective_cost
                approx = solve(g, method).effective_cost
                ratios.append(approx / exact)
            table.add_row(
                [method, round(sum(ratios) / len(ratios), 4), round(max(ratios), 4)]
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("E-APPROX_summary", table)
    # Only the DFS algorithm carries a proven 1.25 certificate (Thm 3.1);
    # the other heuristics are reported without a guarantee.
    for row in table._rows:
        if row[0].startswith("dfs"):
            assert float(row[2]) <= 1.25 + 1e-9
