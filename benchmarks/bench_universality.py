"""E-L3.3 / E-L3.4: universality of containment and spatial joins.

Regenerates: tables showing arbitrary bipartite graphs (and the worst-case
family) realized exactly as set-containment instances (Lemma 3.3) and as
rectangle/comb-polygon spatial instances (Lemma 3.4 + the comb
construction).  Times: realization + join-graph round trips.
"""

from repro.analysis.report import Table
from repro.graphs.generators import random_bipartite_gnm
from repro.geometry.realize import (
    realize_bipartite_with_combs,
    realize_worst_case_family,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.predicates import SetContainment, SpatialOverlap
from repro.relations.relation import TupleRef
from repro.core.families import worst_case_family
from repro.sets.realize import realize_bipartite_as_containment


def _isomorphic(join_graph, target) -> bool:
    left_map = {TupleRef("R", i): v for i, v in enumerate(target.left)}
    right_map = {TupleRef("S", j): v for j, v in enumerate(target.right)}
    got = {(left_map[u], right_map[v]) for u, v in join_graph.edges()}
    return got == set(target.edges())


def test_containment_universality_table(benchmark, emit):
    targets = [random_bipartite_gnm(4, 4, 4 + s, seed=s) for s in range(6)]
    targets.append(worst_case_family(5))

    def run():
        table = Table(
            ["case", "m", "exact_realization"],
            title="E-L3.3: any bipartite graph as a set-containment join",
        )
        for index, target in enumerate(targets):
            left, right = realize_bipartite_as_containment(target)
            join_graph = build_join_graph(left, right, SetContainment())
            table.add_row([index, target.num_edges, _isomorphic(join_graph, target)])
        return table

    table = benchmark(run)
    emit("E-L3.3_containment_universality", table)
    assert all(row[-1] == "True" for row in table._rows)


def test_spatial_universality_table(benchmark, emit):
    targets = [random_bipartite_gnm(3, 4, 5 + s, seed=40 + s) for s in range(4)]

    def run():
        table = Table(
            ["case", "m", "realization", "exact_match"],
            title="E-L3.4: spatial realizations (rectangles & intervals for G_n; combs universally)",
        )
        for n in (3, 5):
            left, right = realize_worst_case_family(n)
            join_graph = build_join_graph(left, right, SpatialOverlap())
            table.add_row(
                [f"G_{n}", 2 * n, "rectangles", _isomorphic(join_graph, worst_case_family(n))]
            )
        # The 1D nesting realization: even temporal joins attain Thm 3.3.
        from repro.geometry.interval import realize_worst_case_intervals
        from repro.relations.relation import Relation

        for n in (3, 5):
            left_values, right_values = realize_worst_case_intervals(n)
            join_graph = build_join_graph(
                Relation("R", left_values), Relation("S", right_values), SpatialOverlap()
            )
            table.add_row(
                [f"G_{n}", 2 * n, "intervals", _isomorphic(join_graph, worst_case_family(n))]
            )
        for index, target in enumerate(targets):
            left, right = realize_bipartite_with_combs(target)
            join_graph = build_join_graph(left, right, SpatialOverlap())
            table.add_row(
                [f"random_{index}", target.num_edges, "comb polygons", _isomorphic(join_graph, target)]
            )
        return table

    table = benchmark(run)
    emit("E-L3.4_spatial_universality", table)
    for row in table._rows:
        assert "False" not in row
