"""E-P2.1 / E-P2.2: the TSP correspondence (Propositions 2.1 and 2.2).

Regenerates: the perfect-pebbling-vs-Hamiltonicity table and the
tour-cost identity.  Times: the combined correspondence check.
"""

from repro.analysis.experiments import perfect_iff_hamiltonian_experiment
from repro.analysis.report import Table
from repro.graphs.generators import random_connected_bipartite
from repro.core.solvers.exact import solve_exact
from repro.core.tsp import scheme_to_tour, tour_cost


def test_perfect_iff_hamiltonian_table(benchmark, emit):
    table = benchmark(perfect_iff_hamiltonian_experiment, 10)
    emit("E-P2.1_perfect_iff_hamiltonian", table)
    assert all(row[-1] == "True" for row in table._rows)


def test_tour_cost_identity_table(benchmark, emit):
    graphs = [
        random_connected_bipartite(4, 4, extra_edges=s % 4, seed=200 + s)
        for s in range(8)
    ]

    def run():
        table = Table(
            ["case", "pi", "tour_cost", "identity(pi-1)"],
            title="E-P2.2: optimal tour cost = pi(G) - 1 (Prop 2.2)",
        )
        for index, g in enumerate(graphs):
            result = solve_exact(g)
            cost = tour_cost(scheme_to_tour(g, result.scheme))
            table.add_row(
                [index, result.effective_cost, cost, cost == result.effective_cost - 1]
            )
        return table

    table = benchmark(run)
    emit("E-P2.2_tour_cost", table)
    assert all(row[-1] == "True" for row in table._rows)
