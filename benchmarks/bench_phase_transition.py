"""E-PHASE: the perfect-pebbling phase transition.

Regenerates: the fraction of random connected join graphs admitting a
perfect pebbling (π = m), as a function of edge density — the empirical
picture behind Prop 2.1 (perfect ⇔ traceable line graph): tree-like join
graphs strand pendant line-graph nodes, a handful of chords make perfect
schemes near-certain.  Times: the sweep driver.
"""

from repro.analysis.experiments import traceability_phase_experiment


def test_phase_transition_table(benchmark, emit):
    table = benchmark.pedantic(
        traceability_phase_experiment,
        kwargs={"side": 5, "extra_range": (0, 1, 2, 4, 8), "trials": 15},
        rounds=1,
        iterations=1,
    )
    emit("E-PHASE_traceability", table)
    fractions = [float(row[2]) for row in table._rows]
    ratios = [float(row[3]) for row in table._rows]
    # Shape: denser graphs are perfect at least as often as the sparsest,
    # and the mean ratio never exceeds the 1.25 ceiling.
    assert fractions[-1] >= fractions[0]
    assert all(r <= 1.25 for r in ratios)
