"""Shared benchmark helpers.

Every benchmark regenerates one paper artifact (a theorem-validation table)
and times its core operation with pytest-benchmark.  Tables are printed to
stdout *and* appended to ``benchmarks/results/<name>.txt`` so the artifact
survives pytest's output capturing and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    written: set[str] = set()

    def _emit(name: str, table) -> None:
        text = table.render() if hasattr(table, "render") else str(table)
        print(f"\n{text}\n")
        path = RESULTS_DIR / f"{name}.txt"
        mode = "a" if name in written else "w"
        with open(path, mode) as handle:
            handle.write(text + "\n\n")
        written.add(name)

    return _emit
