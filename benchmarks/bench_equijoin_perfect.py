"""E-T3.2 / E-T4.1: equijoin perfect pebbling in linear time.

Regenerates: the perfect-pebbling table (π = m on every equijoin graph)
and the linear-runtime series of Theorem 4.1.  Times: the linear solver on
a mid-size instance.
"""

import time

from repro.analysis.experiments import equijoin_perfect_experiment
from repro.analysis.report import Table
from repro.graphs.generators import union_of_bicliques
from repro.core.solvers.equijoin import solve_equijoin


def test_equijoin_perfect_table(benchmark, emit):
    table = benchmark(equijoin_perfect_experiment, (2, 8, 32))
    emit("E-T3.2_equijoin_perfect", table)
    assert all(row[3] == "True" for row in table._rows)


def test_linear_time_series(benchmark, emit):
    block_counts = (50, 100, 200, 400, 800)
    graphs = {b: union_of_bicliques([(3, 3)] * b) for b in block_counts}

    def series():
        table = Table(
            ["blocks", "m", "seconds", "us_per_edge"],
            title="E-T4.1: equijoin PEBBLE runtime scaling (linear time)",
        )
        for b in block_counts:
            g = graphs[b]
            start = time.perf_counter()
            solve_equijoin(g)
            elapsed = time.perf_counter() - start
            table.add_row(
                [b, g.num_edges, round(elapsed, 5),
                 round(1e6 * elapsed / g.num_edges, 2)]
            )
        return table

    table = benchmark.pedantic(series, rounds=1, iterations=1)
    emit("E-T4.1_linear_time", table)


def test_equijoin_single_solve(benchmark):
    g = union_of_bicliques([(4, 4)] * 100)
    scheme = benchmark(solve_equijoin, g)
    assert scheme.effective_cost(g) == g.num_edges
