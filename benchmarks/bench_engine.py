"""Engine benchmarks: planner decisions and execution throughput.

Regenerates: a table of planner choices with their per-execution pebbling
ratios across workload shapes.  Times: whole-query execution for each
predicate class, and a three-way chain.
"""

from repro.analysis.report import Table
from repro.engine import ChainQuery, JoinQuery, execute, execute_chain, plan
from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
from repro.workloads.equijoin import fk_pk_workload, zipf_equijoin_workload
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import (
    sessions_interval_workload,
    uniform_rectangles_workload,
)


def test_planner_choice_table(benchmark, emit):
    cases = [
        ("zipf equijoin", JoinQuery(*zipf_equijoin_workload(40, 40, key_universe=8, seed=1), Equality())),
        ("fk-pk", JoinQuery(*fk_pk_workload(60, 40, seed=1), Equality())),
        ("rectangles", JoinQuery(*uniform_rectangles_workload(30, 30, seed=1), SpatialOverlap())),
        ("sessions", JoinQuery(*sessions_interval_workload(30, 30, seed=1), SpatialOverlap())),
        ("zipf sets", JoinQuery(*zipf_sets_workload(20, 20, universe=30, seed=1), SetContainment())),
        ("tiny-universe sets", JoinQuery(*zipf_sets_workload(20, 20, universe=8, seed=1), SetContainment())),
    ]

    def run():
        table = Table(
            ["workload", "plan", "m", "pi/m", "jumps"],
            title="Engine: planner choices with execution pebbling metrics",
        )
        for name, query in cases:
            result = execute(query)
            assert result.trace is not None
            table.add_row(
                [
                    name,
                    result.plan.algorithm_name,
                    result.output_size,
                    round(result.trace.cost_ratio, 4),
                    result.trace.jumps,
                ]
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("engine_planner", table)


def test_equijoin_query_throughput(benchmark):
    query = JoinQuery(
        *zipf_equijoin_workload(200, 200, key_universe=40, seed=3), Equality()
    )
    result = benchmark(execute, query, None, False)
    assert result.output_size > 0


def test_spatial_query_throughput(benchmark):
    query = JoinQuery(
        *uniform_rectangles_workload(150, 150, seed=3), SpatialOverlap()
    )
    result = benchmark(execute, query, None, False)
    assert result.rows is not None


def test_chain_throughput(benchmark):
    a, b = zipf_equijoin_workload(80, 80, key_universe=20, seed=4)
    _, c = zipf_equijoin_workload(1, 80, key_universe=20, seed=5)
    chain = ChainQuery([a, b, c], [Equality(), Equality()])
    result = benchmark(execute_chain, chain, False)
    assert result.stages
