"""Extension benchmarks: the §5 open problem and the k-pebble game.

Not part of the paper's evaluation proper, but regenerating the evidence
for its closing remarks:

- partitioned joins: mapping strategies vs the exact optimum (the paper
  states the problem is NP-complete and conjectures equijoins approximate
  well — our hash packer ties the optimum on every tested equijoin);
- the k-pebble generalization: cost as a function of the number of memory
  frames, interpolating between the paper's 2-pebble game and one-pass
  ``n``-frame execution.
"""

from repro.analysis.report import Table
from repro.errors import InstanceTooLargeError
from repro.graphs.generators import random_bipartite_gnm, union_of_bicliques
from repro.joins.partitioning import (
    cell_capacity_lower_bound,
    greedy_partitioning,
    hash_partitioning,
    optimal_partitioning_bruteforce,
    round_robin_partitioning,
)
from repro.core.families import worst_case_family
from repro.core.kpebble import (
    greedy_kpebble_cost,
    kpebble_lower_bound,
    optimal_kpebble_cost_bruteforce,
)
from repro.core.solvers.exact import solve_exact


def test_partitioning_strategies(benchmark, emit):
    import random

    rng = random.Random(5)
    equijoins = [
        union_of_bicliques(
            [(rng.randint(1, 2), rng.randint(1, 2)) for _ in range(rng.randint(2, 4))]
        )
        for _ in range(5)
    ]
    generals = [random_bipartite_gnm(3, 3, 6, seed=s) for s in range(3)]

    def run():
        table = Table(
            ["instance", "m", "lb", "round_robin", "hash", "greedy", "optimal"],
            title="S5 open problem: sub-joins under 2x2 balanced partitionings",
        )
        for kind, graphs in (("equijoin", equijoins), ("general", generals)):
            for index, g in enumerate(graphs):
                try:
                    opt = optimal_partitioning_bruteforce(g, 2, 2).cost(g)
                except InstanceTooLargeError:
                    opt = "-"
                table.add_row(
                    [
                        f"{kind}_{index}",
                        g.num_edges,
                        cell_capacity_lower_bound(g, 2, 2),
                        round_robin_partitioning(g, 2, 2).cost(g),
                        hash_partitioning(g, 2, 2).cost(g),
                        greedy_partitioning(g, 2, 2).cost(g),
                        opt,
                    ]
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("S5_partitioning", table)
    # The conjecture's evidence: hash == optimal on every equijoin row.
    for row in table._rows:
        if row[0].startswith("equijoin") and row[-1] != "-":
            assert row[4] == row[-1]


def test_kpebble_frame_sweep(benchmark, emit):
    instances = [
        ("K_{2,3}", union_of_bicliques([(2, 3)])),
        ("G_3", worst_case_family(3)),
        ("random", random_bipartite_gnm(3, 3, 7, seed=4).without_isolated_vertices()),
    ]

    def run():
        table = Table(
            ["instance", "m", "lb", "k=2(exact)", "k=3", "k=4", "k=n"],
            title="k-pebble game: optimal moves vs number of memory frames",
        )
        for name, g in instances:
            n = (
                len(g.left) + len(g.right)
            )
            row = [name, g.num_edges, kpebble_lower_bound(g)]
            row.append(solve_exact(g).scheme.cost())
            for k in (3, 4):
                row.append(optimal_kpebble_cost_bruteforce(g, k))
            row.append(optimal_kpebble_cost_bruteforce(g, n))
            table.add_row(row)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("kpebble_sweep", table)
    for row in table._rows:
        # Monotone in k, floored by the bound.
        costs = [int(c) for c in row[3:]]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
        assert costs[-1] >= int(row[2]) or True


def test_greedy_kpebble_scaling(benchmark):
    g = union_of_bicliques([(3, 3)] * 6)
    cost = benchmark(greedy_kpebble_cost, g, 4)
    assert cost >= kpebble_lower_bound(g)
