"""Setup shim for environments with legacy setuptools (editable installs)."""
from setuptools import setup

setup()
