"""Gate for ``make wcoj-smoke``: the worst-case-optimality separation.

The multiway engine promises (see ``docs/MULTIWAY.md``) that Leapfrog
Triejoin's intermediate work is bounded by the AGM bound, while a binary
hash-join cascade on the skewed (star + co-star) triangle materializes a
super-linear first stage that *exceeds* that bound — and that the
planner's cascade estimate sees the blowup coming.  This script checks
that promise on the ``BENCH_*.json`` the smoke target produced:

- ``wcoj-triangle`` (skewed): status ok, nonzero output, the plan chose
  ``lftj``, ``lftj_intermediates <= agm_bound``, and both the cascade's
  *measured* intermediates and its *estimated* bottleneck stage exceed
  ``agm_bound``;
- ``wcoj-4cycle`` (uniform): status ok and
  ``lftj_intermediates <= agm_bound`` (on uniform instances the cascade
  is competitive, so no separation is gated there).

The LFTJ-vs-cascade wall-clock speedup is printed as information, never
gated: smoke inputs are small and timing ratios are machine-dependent.

    python tools/check_wcoj_smoke.py .wcoj-smoke/BENCH_*.json

Exit status 0 when every check passes; 1 otherwise, one line per
problem; 2 on usage errors.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED = ("wcoj-triangle", "wcoj-4cycle")


def _check_triangle(results: dict, problems: list[str]) -> None:
    agm = results["agm_bound"]
    if results["m"] <= 0:
        problems.append("wcoj-triangle: empty output — instance degenerate")
    if results["plan"] != "lftj":
        problems.append(
            f"wcoj-triangle: planner chose {results['plan']!r}, expected lftj"
        )
    if results["lftj_intermediates"] > agm:
        problems.append(
            f"wcoj-triangle: lftj intermediates {results['lftj_intermediates']}"
            f" exceed AGM bound {agm} — not worst-case optimal"
        )
    if results["cascade_intermediates"] <= agm:
        problems.append(
            f"wcoj-triangle: cascade intermediates "
            f"{results['cascade_intermediates']} within AGM bound {agm} — "
            "instance not skewed enough to separate"
        )
    if results["cascade_estimate"] <= agm:
        problems.append(
            f"wcoj-triangle: cascade estimate {results['cascade_estimate']} "
            f"within AGM bound {agm} — planner would not see the blowup"
        )


def _check_four_cycle(results: dict, problems: list[str]) -> None:
    if results["lftj_intermediates"] > results["agm_bound"]:
        problems.append(
            f"wcoj-4cycle: lftj intermediates {results['lftj_intermediates']}"
            f" exceed AGM bound {results['agm_bound']}"
        )


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_wcoj_smoke.py <BENCH_json>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    report = json.loads(path.read_text())
    by_name = {s["name"]: s for s in report.get("scenarios", [])}

    problems: list[str] = []
    for name in REQUIRED:
        scenario = by_name.get(name)
        if scenario is None:
            problems.append(f"{name}: scenario missing from {path.name}")
            continue
        if scenario["status"] != "ok":
            problems.append(
                f"{name}: status {scenario['status']}: "
                f"{scenario.get('error')}"
            )
            continue
        results = scenario["results"]
        if name == "wcoj-triangle":
            _check_triangle(results, problems)
        else:
            _check_four_cycle(results, problems)
        print(
            f"{name}: m={results['m']}, AGM={results['agm_bound']}, "
            f"lftj im={results['lftj_intermediates']}, "
            f"cascade im={results['cascade_intermediates']}, "
            f"speedup {results['speedup_vs_cascade']:.2f}x "
            "(informational)"
        )

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print("wcoj-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
