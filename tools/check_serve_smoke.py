"""Gate for ``make serve-smoke``: the solve server end to end.

Starts a real ``repro serve`` process (Unix socket, worker pool, run
directory), drives it with two waves of the async zipf-skewed load
generator — one cold, one warm repeat of the *same* seeded mix — and
checks the promises docs/PARALLEL.md makes for the server:

- every request reaches a clean terminal outcome: ``ok`` answers plus
  explicit ``overloaded`` rejections account for the whole mix, and no
  request errors or hangs;
- the warm wave demonstrably engages the shared solve cache: server-side
  ``stats`` must report a hit rate above zero;
- the ``shutdown`` op stops the server, which exits 0;
- the run directory's ``events.jsonl`` validates against the closed
  event vocabulary and records the server lifecycle.

    PYTHONPATH=src python tools/check_serve_smoke.py .serve-smoke

Exit status 0 when every check passes; 1 otherwise, one line per
problem.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs import events as obs_events  # noqa: E402
from repro.server.client import ServeClient  # noqa: E402
from repro.workloads.loadgen import LoadSpec, run_load  # noqa: E402

STARTUP_TIMEOUT = 20.0
SPEC = LoadSpec(requests=40, concurrency=6, universe=8, edges=14, seed=0)


def _start_server(scratch: Path) -> tuple[subprocess.Popen, Path]:
    socket_path = scratch / "serve.sock"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--unix",
            str(socket_path),
            "--jobs",
            "2",
            "--run-dir",
            str(scratch / "run"),
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if socket_path.exists():
            return process, socket_path
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited during startup: {process.stderr.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"server socket never appeared at {socket_path}")


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_serve_smoke.py <scratch-dir>", file=sys.stderr)
        return 2
    scratch = Path(argv[0])
    shutil.rmtree(scratch, ignore_errors=True)
    scratch.mkdir(parents=True)
    problems: list[str] = []

    process, socket_path = _start_server(scratch)
    try:
        waves = {
            "cold": run_load(SPEC, unix_path=socket_path),
            "warm": run_load(SPEC, unix_path=socket_path),
        }
        for name, wave in waves.items():
            summary = wave.as_dict()
            print(
                f"{name}: {summary['ok']} ok, {summary['rejected']} "
                f"rejected, {summary['errors']} errors, "
                f"{summary['throughput_rps']} req/s, "
                f"p50 {summary['p50_ms']}ms, p99 {summary['p99_ms']}ms"
            )
            if wave.ok + wave.rejected + wave.errors != wave.requests:
                problems.append(f"{name}: outcomes do not sum to the mix size")
            if wave.errors:
                problems.append(
                    f"{name}: {wave.errors} errored request(s): "
                    f"{summary['error_codes']}"
                )
            if not wave.ok:
                problems.append(f"{name}: no request succeeded")

        with ServeClient(unix_path=socket_path) as client:
            stats = client.stats()["result"]
            cache = stats["cache"]
            hits = cache["memory_hits"] + cache["persistent_hits"]
            lookups = hits + cache["misses"]
            hit_rate = hits / lookups if lookups else 0.0
            print(
                f"server: {stats['requests_total']} requests, cache hit "
                f"rate {hit_rate:.2f} ({hits}/{lookups})"
            )
            if hit_rate <= 0.0:
                problems.append(
                    "warm wave never hit the shared cache (hit rate 0)"
                )
            if stats["requests_total"] < 2 * SPEC.requests:
                problems.append(
                    f"server counted {stats['requests_total']} requests, "
                    f"expected >= {2 * SPEC.requests}"
                )
            client.shutdown()

        try:
            status = process.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            process.kill()
            problems.append("server did not exit after the shutdown op")
        else:
            if status != 0:
                problems.append(
                    f"server exited {status}: {process.stderr.read()}"
                )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    events_path = scratch / "run" / "events.jsonl"
    if not events_path.is_file():
        problems.append("run dir has no events.jsonl")
    else:
        text = events_path.read_text()
        for problem in obs_events.validate_jsonl(text):
            problems.append(f"events.jsonl: {problem}")
        names = {
            json.loads(line)["name"]
            for line in text.splitlines()
            if line.strip()
        }
        for expected in ("server.start", "server.request_end", "server.stop"):
            if expected not in names:
                problems.append(f"events.jsonl missing {expected}")

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print("serve-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
