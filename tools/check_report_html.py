"""Validate a cross-run HTML report (``repro report --html`` output): the
page must be well-formed and **every** link must resolve.

The report-smoke CI job's assertion::

    python tools/check_report_html.py report.html

Checks, with stdlib ``html.parser`` only:

- tags balance (no truncated document from a killed render);
- exactly one ``<html>``/``<head>``/``<body>``;
- no ``<script>`` and no external ``href``/``src`` URLs — the report
  promises to be self-contained and offline-readable;
- every fragment link (``#anchor``) targets an ``id`` in the document;
- every relative link resolves to an existing file next to the report.

Exit status 0 when every file validates; 1 otherwise, with one line per
problem.
"""

from __future__ import annotations

import sys
from html.parser import HTMLParser
from pathlib import Path

# elements that never take a closing tag (HTML voids + the SVG shapes the
# sparklines emit as self-closing)
_VOID = {
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link",
    "meta", "source", "track", "wbr",
    "circle", "ellipse", "line", "path", "polygon", "polyline", "rect",
}


class _ReportChecker(HTMLParser):
    def __init__(self, context: str) -> None:
        super().__init__()
        self.context = context
        self.stack: list[str] = []
        self.counts: dict[str, int] = {}
        self.hrefs: list[str] = []
        self.ids: set[str] = set()
        self.problems: list[str] = []

    def _note_tag(self, tag: str, attrs) -> None:
        self.counts[tag] = self.counts.get(tag, 0) + 1
        for key, value in attrs:
            if key == "id" and value:
                self.ids.add(value)
            if key in ("href", "src") and value:
                if value.startswith(("http://", "https://", "//")):
                    self.problems.append(
                        f"{self.context}: external URL {value!r} "
                        "(report must be self-contained)"
                    )
                elif key == "href":
                    self.hrefs.append(value)
        if tag == "script":
            self.problems.append(f"{self.context}: <script> tag present")

    def handle_starttag(self, tag, attrs):
        self._note_tag(tag, attrs)
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self._note_tag(tag, attrs)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.problems.append(
                f"{self.context}: unbalanced closing </{tag}>"
            )
        else:
            self.stack.pop()


def validate_file(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    checker = _ReportChecker(str(path))
    checker.feed(text)
    checker.close()
    problems = checker.problems
    if checker.stack:
        problems.append(f"{path}: unclosed tags at EOF: {checker.stack}")
    for tag in ("html", "head", "body"):
        if checker.counts.get(tag, 0) != 1:
            problems.append(
                f"{path}: expected exactly one <{tag}>, "
                f"found {checker.counts.get(tag, 0)}"
            )
    base = path.resolve().parent
    for href in checker.hrefs:
        if href.startswith("#"):
            if href[1:] not in checker.ids:
                problems.append(f"{path}: dangling fragment link {href!r}")
        elif not (base / href).is_file():
            problems.append(f"{path}: broken link {href!r}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: python tools/check_report_html.py REPORT.html [...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in argv:
        problems = validate_file(Path(name))
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
