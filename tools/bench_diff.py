"""Compare two BENCH_*.json files scenario by scenario: the perf gate.

Usage::

    python tools/bench_diff.py benchmarks/baseline.json NEW.json \
        [--tolerance 0.25] [--metric best|mean]

For every scenario present in the baseline, the candidate's wall-clock
(``best`` nanoseconds by default — the repeat least disturbed by noise)
is compared against the baseline's.  A scenario **regresses** when

- its timing ratio exceeds ``1 + tolerance``,
- it failed in the candidate but was ok in the baseline, or
- it disappeared from the candidate entirely (coverage loss).

Scenarios that only exist in the candidate are reported informationally;
scenarios that already failed in the baseline are skipped (nothing sound
to compare against).  Both ``repro-bench/v1`` and ``v2`` payloads are
accepted; v1 scenarios are treated as ok.

Comparing runs of different modes (smoke vs full) is refused — their
input sizes differ, so every ratio would be meaningless.

Exit status: 0 when no scenario regresses (identical files always exit
0), 1 on any regression, 2 on unreadable/invalid inputs or usage errors.

Like every ``tools/`` script this is dependency-free and standalone, so
CI can run it before the package is even installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.25
METRICS = ("best", "mean")


class BenchDiffError(Exception):
    """Unusable input: unreadable file, bad schema, mode mismatch."""


def load_bench(path: str | Path) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchDiffError(f"{path}: unreadable ({exc})") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("scenarios"), list
    ):
        raise BenchDiffError(f"{path}: not a bench payload (no scenario list)")
    return payload


def scenario_map(payload: dict) -> dict[str, dict]:
    scenarios = {}
    for scenario in payload["scenarios"]:
        if isinstance(scenario, dict) and isinstance(scenario.get("name"), str):
            scenarios[scenario["name"]] = scenario
    return scenarios


def _wall(scenario: dict, metric: str) -> float | None:
    wall = scenario.get("wall_ns")
    if not isinstance(wall, dict):
        return None
    value = wall.get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def _status(scenario: dict) -> str:
    return scenario.get("status", "ok")  # v1 payloads carry no status


def diff_scenarios(
    base: dict,
    new: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    metric: str = "best",
) -> tuple[list[list], list[str]]:
    """Per-scenario comparison rows plus the list of regression messages.

    Rows are ``[name, base_ms, new_ms, ratio, verdict]`` (``-`` where a
    side has no timing), ordered by scenario name.
    """
    if metric not in METRICS:
        raise BenchDiffError(f"metric must be one of {METRICS}, got {metric!r}")
    base_mode, new_mode = base.get("mode"), new.get("mode")
    if base_mode != new_mode:
        raise BenchDiffError(
            f"mode mismatch: baseline is {base_mode!r}, candidate is "
            f"{new_mode!r} — compare like against like"
        )
    base_map, new_map = scenario_map(base), scenario_map(new)
    rows: list[list] = []
    regressions: list[str] = []
    for name in sorted(base_map.keys() | new_map.keys()):
        old, fresh = base_map.get(name), new_map.get(name)
        if old is None:
            assert fresh is not None
            rows.append([name, "-", _fmt_ms(_wall(fresh, metric)), "-", "new"])
            continue
        if fresh is None:
            rows.append([name, _fmt_ms(_wall(old, metric)), "-", "-", "MISSING"])
            regressions.append(f"{name}: present in baseline but not in candidate")
            continue
        if _status(old) != "ok":
            rows.append([name, "-", "-", "-", "baseline-failed"])
            continue
        if _status(fresh) != "ok":
            rows.append([name, _fmt_ms(_wall(old, metric)), "-", "-", "FAILED"])
            regressions.append(
                f"{name}: ok in baseline but failed in candidate "
                f"({fresh.get('error') or 'no error recorded'})"
            )
            continue
        old_ns, new_ns = _wall(old, metric), _wall(fresh, metric)
        if old_ns is None or new_ns is None or old_ns <= 0:
            rows.append([name, _fmt_ms(old_ns), _fmt_ms(new_ns), "-", "no-timing"])
            continue
        ratio = new_ns / old_ns
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {metric} {new_ns / 1e6:.3f} ms vs baseline "
                f"{old_ns / 1e6:.3f} ms ({ratio:.2f}x > "
                f"{1.0 + tolerance:.2f}x tolerance)"
            )
        elif ratio < 1.0 - tolerance:
            verdict = "faster"
        else:
            verdict = "ok"
        rows.append([name, _fmt_ms(old_ns), _fmt_ms(new_ns), f"{ratio:.2f}x", verdict])
    return rows, regressions


def _fmt_ms(ns: float | None) -> str:
    return "-" if ns is None else f"{ns / 1e6:.3f}"


def render_rows(rows: list[list], metric: str) -> str:
    header = ["scenario", f"base {metric} ms", f"new {metric} ms", "ratio", "verdict"]
    table = [header] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff",
        description="Compare two bench JSON files and fail on regression.",
    )
    parser.add_argument("baseline", help="baseline BENCH json (e.g. benchmarks/baseline.json)")
    parser.add_argument("candidate", help="fresh BENCH json to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed slowdown fraction (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--metric", default="best", choices=list(METRICS),
        help="which wall_ns statistic to compare (default best)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        print("error: tolerance must be non-negative", file=sys.stderr)
        return 2
    try:
        base = load_bench(args.baseline)
        new = load_bench(args.candidate)
        rows, regressions = diff_scenarios(
            base, new, tolerance=args.tolerance, metric=args.metric
        )
    except BenchDiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"bench diff: {args.baseline} ({base.get('git_sha', '?')}) -> "
        f"{args.candidate} ({new.get('git_sha', '?')}), "
        f"tolerance {args.tolerance:.0%}"
    )
    print(render_rows(rows, args.metric))
    if regressions:
        print()
        for message in regressions:
            print(f"regression: {message}", file=sys.stderr)
        print(f"{len(regressions)} regression(s)", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
