"""Validate structured event logs (``runs/*/events.jsonl``) against the
event-log schema check.

The companion of ``tools/check_trace_json.py`` for event logs::

    python tools/check_events_jsonl.py runs/*/events.jsonl

Every line must parse as JSON, carry the full event envelope (seq, name,
ts_unix, run_id, span_id, attrs), keep ``seq`` strictly increasing, and
use a name from the closed event vocabulary.  The validator itself lives
in :mod:`repro.obs.events` so the library, the test-suite, and this CLI
agree on one definition.

Exit status 0 when every file validates; 1 otherwise, with one line per
problem.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.events import validate_jsonl  # noqa: E402


def validate_file(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    return validate_jsonl(text, context=str(path))


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: python tools/check_events_jsonl.py EVENTS.jsonl [...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in argv:
        problems = validate_file(Path(name))
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
