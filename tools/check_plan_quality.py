"""Validate plan records and gate plan-quality calibration.

The planner's counterpart of ``tools/bench_diff.py``: where the perf
gate holds scenario *timings* to a committed trajectory, this gate holds
the planner's *calibration* — per-predicate-class q-error percentiles
and shadow-execution choice accuracy — to a committed baseline
(``benchmarks/plan_baseline.json``).

Modes::

    # schema validation: plans.jsonl files and/or `repro explain --json`
    # documents (repro-plan/v1)
    python tools/check_plan_quality.py --validate runs/*/plans.jsonl explain.json

    # gate: recompute calibration from record files and compare
    python tools/check_plan_quality.py --baseline benchmarks/plan_baseline.json \
        runs/*/plans.jsonl

    # regenerate the committed baseline from record files
    python tools/check_plan_quality.py --write-baseline benchmarks/plan_baseline.json \
        runs/*/plans.jsonl

The gate's vocabulary and tolerance semantics mirror ``bench_diff.py``:
``ok`` / ``better`` / ``REGRESSION`` / ``MISSING`` per (predicate,
metric), with a symmetric tolerance band.  ``q_p90`` regresses when it
*grows* past ``baseline * (1 + tolerance)``; ``choice_accuracy``
regresses when it *shrinks* below ``baseline * (1 - tolerance)`` — the
bad direction flips, exactly as in the registry's ``plan_trend``.

Exit status: 0 on success, 1 on any validation problem or regression,
2 on unreadable inputs or usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.planquality import (  # noqa: E402
    PLAN_SCHEMA,
    PlanRecord,
    calibration,
    validate_explain_document,
    validate_jsonl,
)

BASELINE_SCHEMA = "repro-plan-baseline/v1"
DEFAULT_TOLERANCE = 0.25

# The calibration scalars the gate compares, with their bad direction.
GATED_METRICS = (
    ("q_p90", "up"),  # q-error p90 regresses when it grows
    ("choice_accuracy", "down"),  # accuracy regresses when it shrinks
)


def _load_text(path: Path) -> str | None:
    try:
        return path.read_text()
    except OSError as exc:
        print(f"{path}: unreadable ({exc})", file=sys.stderr)
        return None


def _looks_like_document(text: str) -> bool:
    """An explain document is one JSON object carrying ``records``;
    plans.jsonl is one record object per line."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return False
    return isinstance(payload, dict) and "records" in payload


def validate_file(path: Path) -> list[str]:
    """Schema-validate one file (auto-detecting document vs JSONL)."""
    text = _load_text(path)
    if text is None:
        return [f"{path}: unreadable"]
    if _looks_like_document(text):
        return validate_explain_document(json.loads(text), context=str(path))
    return validate_jsonl(text, context=str(path))


def load_records(path: Path) -> tuple[list[PlanRecord], list[str]]:
    """Parse one file's plan records; problems are schema failures."""
    problems = validate_file(path)
    if problems:
        return [], problems
    text = _load_text(path)
    assert text is not None  # validate_file already read it
    if _looks_like_document(text):
        raw = json.loads(text)["records"]
    else:
        raw = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [PlanRecord.from_dict(entry) for entry in raw], []


def gather(paths: list[Path]) -> tuple[list[dict], int]:
    """Calibration rows over every record in ``paths`` + failure count."""
    records: list[PlanRecord] = []
    failures = 0
    for path in paths:
        loaded, problems = load_records(path)
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        records.extend(loaded)
    return calibration(records), failures


def write_baseline(path: Path, rows: list[dict], tolerance: float) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "predicates": {
            row["predicate"]: {
                "plans": row["plans"],
                "q_p50": row["q_p50"],
                "q_p90": row["q_p90"],
                "q_max": row["q_max"],
                "misestimates": row["misestimates"],
                "choice_accuracy": row["choice_accuracy"],
            }
            for row in rows
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> dict | None:
    text = _load_text(path)
    if text is None:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"{path}: unparseable JSON ({exc})", file=sys.stderr)
        return None
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        print(
            f"{path}: not a {BASELINE_SCHEMA} document",
            file=sys.stderr,
        )
        return None
    return payload


def _verdict(
    metric: str, direction: str, base: float | None, new: float | None, tolerance: float
) -> tuple[str, str]:
    """One (ratio, verdict) cell; ``-`` ratio where incomparable."""
    if base is None and new is None:
        return "-", "ok"  # neither side has data (e.g. accuracy unshadowed)
    if new is None:
        return "-", "MISSING"
    if base is None or base <= 0:
        return "-", "new"
    ratio = new / base
    worse = ratio > 1.0 + tolerance
    better = ratio < 1.0 - tolerance
    if direction == "down":
        worse, better = better, worse
    if worse:
        return f"{ratio:.2f}x", "REGRESSION"
    if better:
        return f"{ratio:.2f}x", "better"
    return f"{ratio:.2f}x", "ok"


def compare(baseline: dict, rows: list[dict], tolerance: float) -> int:
    """Print the gate table; returns the number of regressions."""
    by_predicate = {row["predicate"]: row for row in rows}
    regressions = 0
    header = f"{'predicate':<16} {'metric':<16} {'base':>8} {'new':>8} {'ratio':>7} verdict"
    print(header)
    print("-" * len(header))
    predicates = sorted(set(baseline["predicates"]) | set(by_predicate))
    for predicate in predicates:
        base_row = baseline["predicates"].get(predicate)
        new_row = by_predicate.get(predicate)
        for metric, direction in GATED_METRICS:
            base = None if base_row is None else base_row.get(metric)
            new = None if new_row is None else new_row.get(metric)
            ratio, verdict = _verdict(metric, direction, base, new, tolerance)
            if verdict in ("REGRESSION", "MISSING"):
                regressions += 1
            fmt = lambda v: "-" if v is None else f"{v:.4f}"  # noqa: E731
            print(
                f"{predicate:<16} {metric:<16} {fmt(base):>8} {fmt(new):>8} "
                f"{ratio:>7} {verdict}"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate plan records / gate plan-quality calibration"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--validate",
        action="store_true",
        help="schema-validate plans.jsonl files and explain documents",
    )
    mode.add_argument(
        "--baseline",
        metavar="BASELINE.json",
        help="gate the files' calibration against this committed baseline",
    )
    mode.add_argument(
        "--write-baseline",
        metavar="BASELINE.json",
        help="regenerate the committed baseline from the files",
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed worsening fraction (default: the baseline's own, "
        f"or {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    paths = [Path(name) for name in args.files]

    if args.validate:
        failures = 0
        for path in paths:
            problems = validate_file(path)
            if problems:
                failures += 1
                for problem in problems:
                    print(problem, file=sys.stderr)
            else:
                print(f"{path}: ok ({PLAN_SCHEMA})")
        return 1 if failures else 0

    if args.write_baseline:
        rows, failures = gather(paths)
        if failures:
            return 2
        if not rows:
            print("error: no plan records in the given files", file=sys.stderr)
            return 2
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        target = Path(args.write_baseline)
        write_baseline(target, rows, tolerance)
        print(f"baseline for {len(rows)} predicate class(es) written to {target}")
        return 0

    baseline = load_baseline(Path(args.baseline))
    if baseline is None:
        return 2
    rows, failures = gather(paths)
    if failures:
        return 2
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    regressions = compare(baseline, rows, tolerance)
    if regressions:
        print(f"{regressions} plan-quality regression(s)", file=sys.stderr)
        return 1
    print("plan quality within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
