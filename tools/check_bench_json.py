"""Validate BENCH_*.json files against the repro-bench/v1 schema.

A hand-rolled structural check (the repo is dependency-free, so no
``jsonschema``): every perf-trajectory point must carry provenance
(git SHA, seed, mode) and per-scenario timings with positive repeat
counts, or CI rejects it before upload.

    python tools/check_bench_json.py BENCH_*.json

Exit status 0 when every file validates; 1 otherwise, with one line per
problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

EXPECTED_SCHEMA = "repro-bench/v1"

TOP_LEVEL_FIELDS = {
    "schema": str,
    "run_id": str,
    "mode": str,
    "seed": int,
    "git_sha": str,
    "created_unix": (int, float),
    "date": str,
    "scenarios": list,
}

SCENARIO_FIELDS = {
    "name": str,
    "repeats": int,
    "wall_ns": dict,
    "results": dict,
    "counters": dict,
}

WALL_FIELDS = {
    "best": (int, float),
    "mean": (int, float),
    "all": list,
}


def _check_fields(obj: dict, spec: dict, context: str, problems: list[str]) -> None:
    for field, expected in spec.items():
        if field not in obj:
            problems.append(f"{context}: missing field {field!r}")
        elif not isinstance(obj[field], expected):
            problems.append(
                f"{context}: field {field!r} has type "
                f"{type(obj[field]).__name__}, expected {expected}"
            )


def validate_bench_payload(payload: object, context: str = "BENCH") -> list[str]:
    """All schema problems found in one parsed payload (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{context}: top level must be an object"]
    _check_fields(payload, TOP_LEVEL_FIELDS, context, problems)
    if payload.get("schema") not in (None, EXPECTED_SCHEMA):
        problems.append(
            f"{context}: schema is {payload['schema']!r}, expected {EXPECTED_SCHEMA!r}"
        )
    if payload.get("mode") not in (None, "smoke", "full"):
        problems.append(f"{context}: mode must be 'smoke' or 'full'")
    scenarios = payload.get("scenarios")
    if isinstance(scenarios, list):
        if not scenarios:
            problems.append(f"{context}: scenarios must be non-empty")
        for position, scenario in enumerate(scenarios):
            where = f"{context}.scenarios[{position}]"
            if not isinstance(scenario, dict):
                problems.append(f"{where}: must be an object")
                continue
            _check_fields(scenario, SCENARIO_FIELDS, where, problems)
            if isinstance(scenario.get("repeats"), int) and scenario["repeats"] < 1:
                problems.append(f"{where}: repeats must be >= 1")
            wall = scenario.get("wall_ns")
            if isinstance(wall, dict):
                _check_fields(wall, WALL_FIELDS, f"{where}.wall_ns", problems)
                timings = wall.get("all")
                if isinstance(timings, list):
                    if not timings:
                        problems.append(f"{where}.wall_ns.all: must be non-empty")
                    for t in timings:
                        if not isinstance(t, (int, float)) or t < 0:
                            problems.append(
                                f"{where}.wall_ns.all: non-negative numbers only"
                            )
                            break
    return problems


def validate_file(path: Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return validate_bench_payload(payload, context=str(path))


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python tools/check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        problems = validate_file(Path(name))
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
