"""Validate BENCH_*.json files against the repro-bench schemas.

A hand-rolled structural check (the repo is dependency-free, so no
``jsonschema``): every perf-trajectory point must carry provenance
(git SHA, seed, mode) and per-scenario timings with positive repeat
counts, or CI rejects it before upload.

Both ``repro-bench/v1`` and ``repro-bench/v2`` are accepted.  v2 adds
per-scenario failure records: ``status`` (``ok`` | ``failed``),
``attempts`` and ``error``; failed scenarios must carry a non-empty
error string and may have empty timings, while ok scenarios must have
at least one timing sample.

    python tools/check_bench_json.py BENCH_*.json

Exit status 0 when every file validates; 1 otherwise, with one line per
problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_V1 = "repro-bench/v1"
SCHEMA_V2 = "repro-bench/v2"
KNOWN_SCHEMAS = (SCHEMA_V1, SCHEMA_V2)

TOP_LEVEL_FIELDS = {
    "schema": str,
    "run_id": str,
    "mode": str,
    "seed": int,
    "git_sha": str,
    "created_unix": (int, float),
    "date": str,
    "scenarios": list,
}

SCENARIO_FIELDS = {
    "name": str,
    "repeats": int,
    "wall_ns": dict,
    "results": dict,
    "counters": dict,
}

SCENARIO_FIELDS_V2 = {
    **SCENARIO_FIELDS,
    "status": str,
    "attempts": int,
}

SCENARIO_STATUSES = ("ok", "failed")

WALL_FIELDS = {
    "best": (int, float),
    "mean": (int, float),
    "all": list,
}


def _check_fields(obj: dict, spec: dict, context: str, problems: list[str]) -> None:
    for field, expected in spec.items():
        if field not in obj:
            problems.append(f"{context}: missing field {field!r}")
        elif not isinstance(obj[field], expected):
            problems.append(
                f"{context}: field {field!r} has type "
                f"{type(obj[field]).__name__}, expected {expected}"
            )


def validate_bench_payload(payload: object, context: str = "BENCH") -> list[str]:
    """All schema problems found in one parsed payload (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{context}: top level must be an object"]
    _check_fields(payload, TOP_LEVEL_FIELDS, context, problems)
    schema = payload.get("schema")
    if schema not in (None, *KNOWN_SCHEMAS):
        problems.append(
            f"{context}: schema is {payload['schema']!r}, "
            f"expected one of {KNOWN_SCHEMAS}"
        )
    is_v2 = schema == SCHEMA_V2
    if payload.get("mode") not in (None, "smoke", "full"):
        problems.append(f"{context}: mode must be 'smoke' or 'full'")
    failed_count = 0
    scenarios = payload.get("scenarios")
    if isinstance(scenarios, list):
        if not scenarios:
            problems.append(f"{context}: scenarios must be non-empty")
        for position, scenario in enumerate(scenarios):
            where = f"{context}.scenarios[{position}]"
            if not isinstance(scenario, dict):
                problems.append(f"{where}: must be an object")
                continue
            spec = SCENARIO_FIELDS_V2 if is_v2 else SCENARIO_FIELDS
            _check_fields(scenario, spec, where, problems)
            if isinstance(scenario.get("repeats"), int) and scenario["repeats"] < 1:
                problems.append(f"{where}: repeats must be >= 1")
            status = scenario.get("status", "ok") if is_v2 else "ok"
            if is_v2:
                if status not in SCENARIO_STATUSES:
                    problems.append(
                        f"{where}: status must be one of {SCENARIO_STATUSES}"
                    )
                attempts = scenario.get("attempts")
                if isinstance(attempts, int) and attempts < 1:
                    problems.append(f"{where}: attempts must be >= 1")
                error = scenario.get("error")
                if status == "failed":
                    failed_count += 1
                    if not isinstance(error, str) or not error:
                        problems.append(
                            f"{where}: failed scenario must carry a "
                            "non-empty 'error' string"
                        )
                elif error not in (None, ""):
                    problems.append(
                        f"{where}: ok scenario must not carry an error"
                    )
            wall = scenario.get("wall_ns")
            if isinstance(wall, dict):
                _check_fields(wall, WALL_FIELDS, f"{where}.wall_ns", problems)
                timings = wall.get("all")
                if isinstance(timings, list):
                    if not timings and status != "failed":
                        problems.append(f"{where}.wall_ns.all: must be non-empty")
                    for t in timings:
                        if not isinstance(t, (int, float)) or t < 0:
                            problems.append(
                                f"{where}.wall_ns.all: non-negative numbers only"
                            )
                            break
    if is_v2:
        declared = payload.get("failed")
        if not isinstance(declared, int):
            problems.append(f"{context}: v2 payload must carry a 'failed' count")
        elif declared != failed_count:
            problems.append(
                f"{context}: 'failed' is {declared}, but {failed_count} "
                "scenario(s) have status 'failed'"
            )
    return problems


def validate_file(path: Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return validate_bench_payload(payload, context=str(path))


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python tools/check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        problems = validate_file(Path(name))
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
