"""Validate exported Chrome trace-event files (``repro trace --format
perfetto`` output) against the structural schema check.

The companion of ``tools/check_bench_json.py`` for traces::

    python tools/check_trace_json.py trace.json runs/*/trace.json

Every event must be a complete ``ph: "X"`` event with a non-negative
``dur``, or one half of a correctly nested ``B``/``E`` pair — the
invariant Perfetto and ``chrome://tracing`` rely on.  The validator
itself lives in :mod:`repro.obs.export` so the library, the test-suite,
and this CLI agree on one definition.

Exit status 0 when every file validates; 1 otherwise, with one line per
problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.export import validate_chrome_trace  # noqa: E402


def validate_file(path: Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return validate_chrome_trace(payload, context=str(path))


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: python tools/check_trace_json.py TRACE.json [...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in argv:
        problems = validate_file(Path(name))
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
