"""Gate for ``make telemetry-smoke``: live telemetry and request tracing.

Starts a real ``repro serve`` process (Unix socket, worker pool, run
directory, journal), drives it with the seeded load generator plus one
hand-addressed solve, and checks the promises docs/OBSERVABILITY.md
makes for the telemetry subsystem:

- the ``metrics`` op answers a valid Prometheus text-format v0.0.4
  document (``validate_exposition``) carrying the required families,
  including a per-op latency histogram;
- the per-op request counters account for everything the load sent;
- after shutdown, the run directory's ``trace.jsonl`` assembles — for
  the hand-addressed request id — into a single validated Chrome trace
  (``validate_chrome_trace``) whose events include both server-side
  dispatch spans and worker-process solver spans sharing one trace_id.

    PYTHONPATH=src python tools/check_metrics_exposition.py .telemetry-smoke

Exit status 0 when every check passes; 1 otherwise, one line per
problem.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.graphs.generators import random_connected_bipartite  # noqa: E402
from repro.graphs.io import dump_bipartite  # noqa: E402
from repro.obs import export as obs_export  # noqa: E402
from repro.obs import telemetry as obs_telemetry  # noqa: E402
from repro.server.client import ServeClient  # noqa: E402
from repro.workloads.loadgen import LoadSpec, run_load  # noqa: E402

STARTUP_TIMEOUT = 20.0
SPEC = LoadSpec(requests=24, concurrency=4, universe=6, edges=14, seed=3)
SMOKE_REQUEST_ID = "telemetry-smoke-1"

# The families the server promises to expose (name -> kind); see
# SolveServer.exposition().
REQUIRED_FAMILIES = {
    "repro_server_requests_total": "counter",
    "repro_server_request_outcomes_total": "counter",
    "repro_server_request_latency_ms": "histogram",
    "repro_server_window_rps": "gauge",
    "repro_server_uptime_seconds": "gauge",
    "repro_server_admitted_total": "counter",
    "repro_server_admission_rejected_total": "counter",
}


def _start_server(scratch: Path) -> tuple[subprocess.Popen, Path]:
    socket_path = scratch / "serve.sock"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--unix",
            str(socket_path),
            "--jobs",
            "2",
            "--run-dir",
            str(scratch / "run"),
            "--journal",
            str(scratch / "journal"),
            "--metrics",
            "--metrics-window",
            "30",
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if socket_path.exists():
            return process, socket_path
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited during startup: {process.stderr.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"server socket never appeared at {socket_path}")


def _check_exposition(text: str, problems: list[str]) -> None:
    for problem in obs_telemetry.validate_exposition(
        text, required=REQUIRED_FAMILIES
    ):
        problems.append(f"exposition: {problem}")
    families, _parse_problems = obs_telemetry.parse_exposition(text)
    requests = families.get("repro_server_requests_total")
    counted = 0
    if requests is not None:
        counted = sum(
            int(sample.value)
            for sample in requests.samples
            if sample.labels.get("op") in ("solve", "plan")
        )
    if counted < SPEC.requests + 1:
        problems.append(
            f"requests_total counts {counted} solve/plan requests, "
            f"expected >= {SPEC.requests + 1}"
        )
    latency = families.get("repro_server_request_latency_ms")
    ops_with_latency = (
        {s.labels.get("op") for s in latency.samples} if latency else set()
    )
    if "solve" not in ops_with_latency:
        problems.append("latency histogram has no op=\"solve\" series")


def _check_request_trace(run_dir: Path, problems: list[str]) -> None:
    trace_path = run_dir / "trace.jsonl"
    if not trace_path.is_file():
        problems.append("run dir has no trace.jsonl")
        return
    records = []
    for line in trace_path.read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    try:
        document = obs_export.request_trace(records, SMOKE_REQUEST_ID)
    except ValueError as exc:
        problems.append(f"trace.jsonl: {exc}")
        return
    for problem in obs_export.validate_chrome_trace(document):
        problems.append(f"request trace: {problem}")
    events = document["traceEvents"]
    trace_ids = {
        event["args"]["trace_id"]
        for event in events
        if "trace_id" in event.get("args", {})
    }
    names = {event["name"] for event in events}
    pids = {event["pid"] for event in events}
    print(
        f"request {SMOKE_REQUEST_ID}: {len(events)} event(s), "
        f"{len(trace_ids)} trace id(s), pids {sorted(pids)}"
    )
    if len(trace_ids) != 1:
        problems.append(
            f"request trace spans {len(trace_ids)} trace ids, expected 1"
        )
    if "server.dispatch" not in names:
        problems.append("request trace has no server.dispatch span")
    if 2 not in pids:
        problems.append(
            "request trace has no worker-origin span (pid 2): the solve "
            "never crossed the pool, or worker spans were not adopted"
        )


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_metrics_exposition.py <scratch-dir>", file=sys.stderr)
        return 2
    scratch = Path(argv[0])
    shutil.rmtree(scratch, ignore_errors=True)
    scratch.mkdir(parents=True)
    problems: list[str] = []

    process, socket_path = _start_server(scratch)
    try:
        wave = run_load(SPEC, unix_path=socket_path)
        summary = wave.as_dict()
        print(
            f"load: {summary['ok']} ok, {summary['rejected']} rejected, "
            f"{summary['errors']} errors, per-op {summary['per_op']}"
        )
        if wave.errors:
            problems.append(f"load errored: {summary['error_codes']}")

        with ServeClient(unix_path=socket_path) as client:
            # One hand-addressed solve on a graph outside the load pool:
            # a guaranteed cache miss, so the solve crosses the worker
            # pool and its request id is a handle into trace.jsonl.
            graph_text = dump_bipartite(
                random_connected_bipartite(4, 4, 14, seed=999_999)
            )
            rid = client.send(
                "solve", graph_text, request_id=SMOKE_REQUEST_ID
            )
            response = client.recv(rid)
            if not response.get("ok"):
                problems.append(
                    f"addressed solve failed: {response.get('error')}"
                )
            elif not response["result"].get("trace_id"):
                problems.append("addressed solve result carries no trace_id")

            metrics = client.metrics()
            if not metrics.get("ok"):
                problems.append(f"metrics op failed: {metrics.get('error')}")
            else:
                result = metrics["result"]
                if result.get("content_type") != obs_telemetry.CONTENT_TYPE:
                    problems.append(
                        f"metrics content_type {result.get('content_type')!r}"
                    )
                _check_exposition(result.get("text", ""), problems)
            client.shutdown()

        try:
            status = process.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            process.kill()
            problems.append("server did not exit after the shutdown op")
        else:
            if status != 0:
                problems.append(
                    f"server exited {status}: {process.stderr.read()}"
                )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    _check_request_trace(scratch / "run", problems)

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print("telemetry-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
