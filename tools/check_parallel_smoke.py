"""Gate for ``make parallel-smoke``: jobs-invariance and warm-cache hits.

The parallel solve service promises that the job count and the solve
cache are pure *performance* knobs (see ``docs/PARALLEL.md``).  This
script checks that promise on the artifacts the smoke target produced:

- ``j1/`` and ``j4/`` — the batch bench scenario at ``--jobs 1`` and
  ``--jobs 4``: per-scenario ``results`` must be byte-identical
  (compared as sorted-key JSON), and the reports must record the right
  ``jobs`` value;
- ``warm1/`` and ``warm2/`` — two runs sharing one persistent cache:
  results must match, and the second run's ``events.jsonl`` must
  contain ``cache.hit`` events (the cache demonstrably engaged).

The jobs-1-vs-4 speedup is printed as information, never gated: smoke
inputs are too small for a stable ratio, and pool startup can dominate.

    python tools/check_parallel_smoke.py .parallel-smoke

Exit status 0 when every check passes; 1 otherwise, one line per
problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _load_bench(directory: Path) -> dict | None:
    matches = sorted(directory.glob("BENCH_*.json"))
    if len(matches) != 1:
        return None
    return json.loads(matches[0].read_text())


def _scenario_results(report: dict) -> dict[str, str]:
    """Scenario name -> canonical JSON of its results (byte-comparable)."""
    return {
        s["name"]: json.dumps(s["results"], sort_keys=True)
        for s in report["scenarios"]
    }


def _best_ns(report: dict) -> dict[str, int]:
    return {s["name"]: s["wall_ns"]["best"] for s in report["scenarios"]}


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_parallel_smoke.py <smoke-dir>", file=sys.stderr)
        return 2
    root = Path(argv[0])
    problems: list[str] = []

    reports: dict[str, dict] = {}
    for leg in ("j1", "j4", "warm1", "warm2"):
        report = _load_bench(root / leg)
        if report is None:
            problems.append(f"{leg}: expected exactly one BENCH_*.json")
        else:
            reports[leg] = report
            for scenario in report["scenarios"]:
                if scenario["status"] != "ok":
                    problems.append(
                        f"{leg}: scenario {scenario['name']} "
                        f"{scenario['status']}: {scenario['error']}"
                    )

    if "j1" in reports and "j4" in reports:
        if reports["j1"].get("jobs") != 1 or reports["j4"].get("jobs") != 4:
            problems.append(
                f"reports record jobs={reports['j1'].get('jobs')} / "
                f"{reports['j4'].get('jobs')}, expected 1 / 4"
            )
        r1, r4 = _scenario_results(reports["j1"]), _scenario_results(reports["j4"])
        if set(r1) != set(r4):
            problems.append(f"scenario sets differ: {sorted(r1)} vs {sorted(r4)}")
        for name in sorted(set(r1) & set(r4)):
            if r1[name] != r4[name]:
                problems.append(
                    f"jobs-variant results for {name}: {r1[name]} != {r4[name]}"
                )
        for name, ns1 in sorted(_best_ns(reports["j1"]).items()):
            ns4 = _best_ns(reports["j4"]).get(name)
            if ns4:
                print(f"{name}: jobs=1 {ns1 / 1e6:.1f}ms, jobs=4 "
                      f"{ns4 / 1e6:.1f}ms ({ns1 / ns4:.2f}x)")

    if "warm1" in reports and "warm2" in reports:
        cold, warm = _scenario_results(reports["warm1"]), _scenario_results(
            reports["warm2"]
        )
        for name in sorted(set(cold) & set(warm)):
            if cold[name] != warm[name]:
                problems.append(
                    f"warm-cache results drifted for {name}: "
                    f"{cold[name]} != {warm[name]}"
                )
        hit_count = 0
        for events_path in (root / "warm2").glob("runs/*/events.jsonl"):
            for line in events_path.read_text().splitlines():
                if line.strip() and json.loads(line).get("name") == "cache.hit":
                    hit_count += 1
        if hit_count == 0:
            problems.append("warm2: no cache.hit events — the cache never engaged")
        else:
            print(f"warm run: {hit_count} cache.hit event(s)")

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print("parallel-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
