"""Gate for ``make crash-smoke``: journaled serving survives SIGKILL.

The crash-tolerance story of docs/ROBUSTNESS.md, enacted against real
processes:

1. start a journaled ``repro serve`` (Unix socket, ``--journal``);
2. pipeline a wave of solve requests on one connection and SIGKILL the
   server while some are admitted but unanswered — the write-ahead
   journal must already hold those entries, fsync'd;
3. restart with ``--recover`` over the same journal: the successor must
   replay every incomplete entry (``stats`` reports ``recovered_total``),
   emit ``server.recover`` events, and mark the journal clean;
4. the stale socket file left by the SIGKILL must not block the restart,
   and the recovered run's ``events.jsonl`` must validate against the
   closed event vocabulary.

    PYTHONPATH=src python tools/check_crash_smoke.py .crash-smoke

Exit status 0 when every check passes; 1 otherwise, one line per
problem.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.graphs.generators import random_connected_bipartite  # noqa: E402
from repro.graphs.io import dump_bipartite  # noqa: E402
from repro.obs import events as obs_events  # noqa: E402
from repro.server.client import ServeClient  # noqa: E402
from repro.server.journal import (  # noqa: E402
    JOURNAL_NAME,
    incomplete_entries,
    load_records,
    validate_records,
)

STARTUP_TIMEOUT = 20.0
WAVE_SIZE = 30


def _spawn(scratch: Path, *extra: str) -> subprocess.Popen:
    socket_path = scratch / "serve.sock"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--unix",
            str(socket_path),
            "--jobs",
            "1",
            *extra,
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_ready(process: subprocess.Popen, socket_path: Path) -> None:
    """Block until a ping answers (socket-file existence is not enough:
    a SIGKILL'd predecessor leaves a stale file the successor replaces)."""
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited during startup: {process.stderr.read()}"
            )
        with contextlib.suppress(OSError, ConnectionError):
            with ServeClient(unix_path=socket_path, timeout=2.0) as client:
                if client.ping().get("ok"):
                    return
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("server never answered a ping")


def _wave_graphs() -> list[str]:
    return [
        dump_bipartite(random_connected_bipartite(5, 5, 18, seed=index))
        for index in range(WAVE_SIZE)
    ]


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_crash_smoke.py <scratch-dir>", file=sys.stderr)
        return 2
    scratch = Path(argv[0])
    shutil.rmtree(scratch, ignore_errors=True)
    scratch.mkdir(parents=True)
    journal_dir = scratch / "journal"
    journal_path = journal_dir / JOURNAL_NAME
    socket_path = scratch / "serve.sock"
    problems: list[str] = []

    # -- wave 1: journaled serving, killed mid-wave --------------------
    first = _spawn(scratch, "--journal", str(journal_dir))
    try:
        _wait_ready(first, socket_path)
        client = ServeClient(unix_path=socket_path)
        for graph_text in _wave_graphs():
            client.send("solve", graph_text)
        # Kill as soon as the journal proves a backlog: entries admitted
        # (fsync'd to disk) but not yet marked complete.
        deadline = time.monotonic() + STARTUP_TIMEOUT
        pending = 0
        while time.monotonic() < deadline:
            if journal_path.is_file():
                pending = len(incomplete_entries(load_records(journal_path)))
                admitted = sum(
                    1
                    for record in load_records(journal_path)
                    if record.get("kind") == "admitted"
                )
                if pending >= 3 and admitted >= 5:
                    break
            time.sleep(0.01)
        first.send_signal(signal.SIGKILL)
        first.wait()
        with contextlib.suppress(OSError, ConnectionError):
            client.close()
    finally:
        if first.poll() is None:
            first.kill()
            first.wait()

    records = load_records(journal_path)
    lost = incomplete_entries(records)
    print(
        f"killed mid-wave: {len(records)} journal record(s), "
        f"{len(lost)} admitted-but-unanswered"
    )
    for problem in validate_records(records):
        problems.append(f"journal (post-kill): {problem}")
    if not lost:
        problems.append(
            "SIGKILL left no incomplete journal entries — the wave "
            "finished before the kill; nothing exercised recovery"
        )
    if not socket_path.exists():
        problems.append("SIGKILL should leave the stale socket file behind")

    # -- wave 2: recover over the same journal -------------------------
    run_dir = scratch / "run"
    second = _spawn(
        scratch, "--recover", str(journal_dir), "--run-dir", str(run_dir)
    )
    try:
        _wait_ready(second, socket_path)
        with ServeClient(unix_path=socket_path) as client:
            stats = client.stats()["result"]
            recovered = stats.get("recovered_total", 0)
            print(f"recovered: {recovered} entry(ies) replayed on startup")
            if recovered != len(lost):
                problems.append(
                    f"recovered_total {recovered} != {len(lost)} "
                    "incomplete entries left by the kill"
                )
            client.shutdown()
        try:
            status = second.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            second.kill()
            problems.append("recovered server did not exit after shutdown op")
        else:
            if status != 0:
                problems.append(
                    f"recovered server exited {status}: {second.stderr.read()}"
                )
    finally:
        if second.poll() is None:
            second.kill()
            second.wait()

    # -- the journal must close clean ----------------------------------
    records = load_records(journal_path)
    for problem in validate_records(records):
        problems.append(f"journal (post-recover): {problem}")
    still_lost = incomplete_entries(records)
    if still_lost:
        problems.append(
            f"{len(still_lost)} journal entry(ies) still incomplete "
            "after recovery"
        )
    recovered_marks = [
        record
        for record in records
        if record.get("kind") == "complete" and record.get("recovered")
    ]
    if len(recovered_marks) != len(lost):
        problems.append(
            f"{len(recovered_marks)} complete(recovered=true) record(s), "
            f"expected {len(lost)}"
        )

    # -- the recovered run's event log must tell the story -------------
    events_path = run_dir / "events.jsonl"
    if not events_path.is_file():
        problems.append("recovered run dir has no events.jsonl")
    else:
        text = events_path.read_text()
        for problem in obs_events.validate_jsonl(text):
            problems.append(f"events.jsonl: {problem}")
        names = [
            json.loads(line)["name"]
            for line in text.splitlines()
            if line.strip()
        ]
        recover_events = names.count("server.recover")
        if recover_events != len(lost):
            problems.append(
                f"{recover_events} server.recover event(s), "
                f"expected {len(lost)}"
            )
        for expected in ("server.start", "server.stop"):
            if expected not in names:
                problems.append(f"events.jsonl missing {expected}")

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print("crash-smoke: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
