"""Bounded admission for the solve server.

A persistent front-end that accepts everything it is sent has two
failure modes: unbounded queueing (every request eventually answered,
none answered in time) and unbounded buffering (request bytes pile up in
memory until the process dies).  The :class:`AdmissionController` bounds
both with two independent limits:

- ``max_queue_depth`` — how many requests may be admitted-but-unfinished
  at once (queued *or* executing);
- ``max_inflight_bytes`` — the summed wire size of those requests, so a
  few giant graphs cannot starve many small ones.

Admission is all-or-nothing and O(1): a request either receives a
:class:`Ticket` (and must :meth:`~AdmissionController.release` it when
the response is written) or a :class:`RejectedError` carrying a
``retry_after_ms`` hint — the client-visible backoff, proportional to
the current queue depth so a deeper backlog pushes retries further out.

The controller is synchronous and unlocked by design: the server calls
it only from the event-loop thread, where asyncio's cooperative
scheduling already serializes access.  Every decision is observable —
``server.admit`` / ``server.reject`` events, admission counters, and a
``server.queue_depth`` gauge updated on every transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_MAX_INFLIGHT_BYTES = 32 * 1024 * 1024

# The retry-after hint grows linearly with backlog: roughly the time one
# queue slot takes to drain on a warm cache, per request ahead of you.
# Sustained rejection streaks grow it further (each consecutive reject
# adds a slot), but never past the cap — an unbounded hint would park
# polite clients forever on a server that is already draining.
_RETRY_AFTER_PER_SLOT_MS = 25
RETRY_AFTER_MAX_MS = 1000


class RejectedError(ReproError):
    """Admission denied; ``retry_after_ms`` is the client's backoff hint."""

    def __init__(self, message: str, retry_after_ms: int, reason: str) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.reason = reason


@dataclass
class Ticket:
    """Proof of admission; release it exactly once when the request ends."""

    nbytes: int
    released: bool = False


class AdmissionController:
    """Two-limit admission: queue depth and in-flight request bytes."""

    def __init__(
        self,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, got {max_inflight_bytes}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_inflight_bytes = max_inflight_bytes
        self.depth = 0
        self.inflight_bytes = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.consecutive_rejections = 0

    def retry_after_ms(self) -> int:
        """The backoff hint for a rejection issued right now: one slot
        per queued request plus one per consecutive rejection, capped at
        :data:`RETRY_AFTER_MAX_MS` (growth resets on the next admit)."""
        slots = self.depth + 1 + self.consecutive_rejections
        return min(RETRY_AFTER_MAX_MS, _RETRY_AFTER_PER_SLOT_MS * slots)

    def admit(self, nbytes: int) -> Ticket:
        """Admit a request of ``nbytes`` wire bytes or raise
        :class:`RejectedError` with a retry-after hint."""
        reason = None
        if self.depth >= self.max_queue_depth:
            reason = "queue_depth"
        elif self.inflight_bytes + nbytes > self.max_inflight_bytes:
            reason = "inflight_bytes"
        if reason is not None:
            self.rejected_total += 1
            self.consecutive_rejections += 1
            hint = self.retry_after_ms()
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("server.rejected")
                obs_metrics.inc(f"server.rejected.{reason}")
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SERVER_REJECT,
                    reason=reason,
                    depth=self.depth,
                    inflight_bytes=self.inflight_bytes,
                    nbytes=nbytes,
                    retry_after_ms=hint,
                )
            raise RejectedError(
                f"admission denied ({reason}): depth={self.depth}/"
                f"{self.max_queue_depth}, inflight={self.inflight_bytes}/"
                f"{self.max_inflight_bytes} bytes",
                retry_after_ms=hint,
                reason=reason,
            )
        self.depth += 1
        self.inflight_bytes += nbytes
        self.admitted_total += 1
        self.consecutive_rejections = 0
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("server.admitted")
            obs_metrics.set_gauge("server.queue_depth", self.depth)
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_SERVER_ADMIT,
                depth=self.depth,
                inflight_bytes=self.inflight_bytes,
                nbytes=nbytes,
            )
        return Ticket(nbytes=nbytes)

    def release(self, ticket: Ticket) -> None:
        """Return a ticket's slot and bytes; idempotent per ticket."""
        if ticket.released:
            return
        ticket.released = True
        self.depth = max(0, self.depth - 1)
        self.inflight_bytes = max(0, self.inflight_bytes - ticket.nbytes)
        if obs_metrics.METRICS.enabled:
            obs_metrics.set_gauge("server.queue_depth", self.depth)

    def stats(self) -> dict[str, int]:
        """Current state plus lifetime counters (the ``stats`` op payload)."""
        return {
            "depth": self.depth,
            "inflight_bytes": self.inflight_bytes,
            "max_queue_depth": self.max_queue_depth,
            "max_inflight_bytes": self.max_inflight_bytes,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
        }


__all__ = [
    "AdmissionController",
    "DEFAULT_MAX_INFLIGHT_BYTES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "RETRY_AFTER_MAX_MS",
    "RejectedError",
    "Ticket",
]
