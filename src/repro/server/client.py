"""Clients for the solve server: one synchronous, one asyncio.

:class:`ServeClient` is the workhorse for sequential callers — the
``repro client`` CLI, the test-suite, and ``tools/check_serve_smoke.py``.
It speaks over a raw socket (TCP or Unix) and, because the server may
answer pipelined requests out of order, matches responses to requests by
``id``, parking strays until their request asks for them.

:class:`AsyncServeClient` is the load generator's client: many in-flight
requests on one connection, each ``request()`` awaiting a future that a
single background reader task resolves as response lines arrive.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from pathlib import Path
from typing import Any

from repro.server import protocol
from repro.server.protocol import ProtocolError


class ServeClient:
    """A blocking newline-delimited-JSON client (context manager)."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        unix_path: str | Path | None = None,
        timeout: float = 30.0,
    ) -> None:
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(unix_path))
        else:
            if host is None or port is None:
                raise ValueError("host and port (or unix_path) are required")
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self._parked: dict[str | None, dict[str, Any]] = {}

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ----------------------------------------------------------
    def send(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
        request_id: str | None = None,
    ) -> str:
        """Write one request line; returns the request id (no read)."""
        rid = request_id if request_id is not None else f"c{next(self._ids)}"
        line = protocol.encode_request(
            rid, op, graph_text, method=method, deadline=deadline, options=options
        )
        self._sock.sendall(line.encode("utf-8"))
        return rid

    def recv(self, request_id: str) -> dict[str, Any]:
        """Read until the response for ``request_id`` arrives.

        Responses for other in-flight requests are parked and handed out
        when *their* ``recv`` is called; ``id: null`` error responses
        (lines too defective to carry an id) match any waiter.
        """
        if request_id in self._parked:
            return self._parked.pop(request_id)
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.parse_response(line)
            rid = response.get("id")
            if rid == request_id or rid is None:
                return response
            self._parked[rid] = response

    def request(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Send one request and block for its response."""
        rid = self.send(
            op, graph_text, method=method, deadline=deadline, options=options
        )
        return self.recv(rid)

    # -- conveniences ---------------------------------------------------
    def solve(self, graph_text: str, **kwargs: Any) -> dict[str, Any]:
        return self.request(protocol.OP_SOLVE, graph_text, **kwargs)

    def plan(self, graph_text: str, **kwargs: Any) -> dict[str, Any]:
        return self.request(protocol.OP_PLAN, graph_text, **kwargs)

    def ping(self) -> dict[str, Any]:
        return self.request(protocol.OP_PING)

    def stats(self) -> dict[str, Any]:
        return self.request(protocol.OP_STATS)

    def shutdown(self) -> dict[str, Any]:
        return self.request(protocol.OP_SHUTDOWN)


class AsyncServeClient:
    """An asyncio client multiplexing many requests on one connection."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._ids = itertools.count(1)

    @classmethod
    async def connect(
        cls,
        host: str | None = None,
        port: int | None = None,
        unix_path: str | Path | None = None,
    ) -> "AsyncServeClient":
        client = cls()
        if unix_path is not None:
            client._reader, client._writer = await asyncio.open_unix_connection(
                str(unix_path)
            )
        else:
            if host is None or port is None:
                raise ValueError("host and port (or unix_path) are required")
            client._reader, client._writer = await asyncio.open_connection(
                host, port
            )
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = protocol.parse_response(line)
                except ProtocolError:
                    continue
                rid = response.get("id")
                future = self._pending.pop(rid, None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            # Connection gone: fail every waiter instead of hanging them.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    async def request(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Send one request; await its (possibly out-of-order) response."""
        assert self._writer is not None
        rid = f"a{next(self._ids)}"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        line = protocol.encode_request(
            rid, op, graph_text, method=method, deadline=deadline, options=options
        )
        self._writer.write(line.encode("utf-8"))
        await self._writer.drain()
        return await future

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass


__all__ = ["AsyncServeClient", "ServeClient"]
