"""Clients for the solve server: one synchronous, one asyncio.

:class:`ServeClient` is the workhorse for sequential callers — the
``repro client`` CLI, the test-suite, and ``tools/check_serve_smoke.py``.
It speaks over a raw socket (TCP or Unix) and, because the server may
answer pipelined requests out of order, matches responses to requests by
``id``, parking strays until their request asks for them.

:class:`AsyncServeClient` is the load generator's client: many in-flight
requests on one connection, each ``request()`` awaiting a future that a
single background reader task resolves as response lines arrive.

Both clients optionally carry the repo's crash-tolerance pair
(docs/ROBUSTNESS.md): a shared
:class:`~repro.runtime.retry.RetryPolicy` — connection failures
reconnect and retry under seeded backoff, ``overloaded`` rejections
retry honoring the server's ``retry_after_ms`` hint as a floor — and a
:class:`~repro.runtime.retry.CircuitBreaker`, so a fleet of in-flight
requests stops hammering a restarting server after a few consecutive
failures and probes its way back once it returns.  Without a policy
(the default) behaviour is exactly the bare wire protocol.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from pathlib import Path
from typing import Any

from repro.obs.context import TraceContext
from repro.runtime.retry import CircuitBreaker, RetryPolicy
from repro.server import protocol
from repro.server.protocol import ProtocolError

# Requests that mutate nothing and always answer instantly; retried
# exactly like solves.
_RETRY_ERRORS = (ConnectionError, OSError, EOFError)


def _overload_hint(response: dict[str, Any]) -> int | None:
    hint = response.get("retry_after_ms")
    return hint if isinstance(hint, int) else None


def _is_overloaded(response: dict[str, Any]) -> bool:
    if response.get("ok"):
        return False
    error = response.get("error")
    return (
        isinstance(error, dict)
        and error.get("code") == protocol.ERROR_OVERLOADED
    )


class ServeClient:
    """A blocking newline-delimited-JSON client (context manager).

    With ``retry=`` (and optionally ``breaker=``) a request that hits a
    connection failure or an ``overloaded`` rejection is retried under
    the policy — reconnecting as needed — instead of surfacing the first
    failure.  The breaker refuses fast while open and lets one probe
    through per cooldown.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        unix_path: str | Path | None = None,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if unix_path is None and (host is None or port is None):
            raise ValueError("host and port (or unix_path) are required")
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._timeout = timeout
        self._retry = retry
        self._breaker = breaker
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._ids = itertools.count(1)
        self._parked: dict[str | None, dict[str, Any]] = {}
        self._connect()

    def _connect(self) -> None:
        if self._unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            try:
                sock.connect(str(self._unix_path))
            except BaseException:
                sock.close()
                raise
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._parked.clear()

    def _teardown(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ----------------------------------------------------------
    def send(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
        request_id: str | None = None,
        trace: TraceContext | None = None,
        extra: dict[str, Any] | None = None,
    ) -> str:
        """Write one request line; returns the request id (no read)."""
        if self._sock is None:
            raise ConnectionError("client is closed")
        rid = request_id if request_id is not None else f"c{next(self._ids)}"
        line = protocol.encode_request(
            rid,
            op,
            graph_text,
            method=method,
            deadline=deadline,
            options=options,
            trace=trace,
            extra=extra,
        )
        self._sock.sendall(line.encode("utf-8"))
        return rid

    def recv(self, request_id: str) -> dict[str, Any]:
        """Read until the response for ``request_id`` arrives.

        Responses for other in-flight requests are parked and handed out
        when *their* ``recv`` is called; ``id: null`` error responses
        (lines too defective to carry an id) match any waiter.
        """
        if request_id in self._parked:
            return self._parked.pop(request_id)
        if self._reader is None:
            raise ConnectionError("client is closed")
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.parse_response(line)
            rid = response.get("id")
            if rid == request_id or rid is None:
                return response
            self._parked[rid] = response

    def request(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
        trace: TraceContext | None = None,
        extra: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Send one request and block for its response (retrying under
        the client's policy, when one was given)."""
        if self._retry is None:
            rid = self.send(
                op,
                graph_text,
                method=method,
                deadline=deadline,
                options=options,
                trace=trace,
                extra=extra,
            )
            return self.recv(rid)
        controller = self._retry.controller(f"client.{op}")
        while True:
            if self._breaker is not None and not self._breaker.allow():
                time.sleep(max(self._breaker.retry_in(), 0.001))
                continue
            try:
                if self._sock is None:
                    self._connect()
                rid = self.send(
                    op,
                    graph_text,
                    method=method,
                    deadline=deadline,
                    options=options,
                    trace=trace,
                    extra=extra,
                )
                response = self.recv(rid)
            except _RETRY_ERRORS as exc:
                if self._breaker is not None:
                    self._breaker.record_failure()
                self._teardown()
                delay = controller.next_delay(reason=type(exc).__name__)
                if delay is None:
                    raise
                time.sleep(delay)
                continue
            if _is_overloaded(response):
                if self._breaker is not None:
                    self._breaker.record_failure()
                delay = controller.next_delay(
                    hint_ms=_overload_hint(response), reason="overloaded"
                )
                if delay is None:
                    return response  # surfaced, not raised: same shape as before
                time.sleep(delay)
                continue
            if self._breaker is not None:
                self._breaker.record_success()
            return response

    # -- conveniences ---------------------------------------------------
    def solve(self, graph_text: str, **kwargs: Any) -> dict[str, Any]:
        return self.request(protocol.OP_SOLVE, graph_text, **kwargs)

    def plan(self, graph_text: str, **kwargs: Any) -> dict[str, Any]:
        return self.request(protocol.OP_PLAN, graph_text, **kwargs)

    def explain(
        self,
        left_text: str,
        right_text: str,
        predicate: str = "equality",
        band_width: float | None = None,
        analyze: bool = False,
        shadow: bool = False,
        **kwargs: Any,
    ) -> dict[str, Any]:
        """Ask the server to plan (``analyze=True``: execute) one join
        over two relation texts and return its plan record."""
        extra: dict[str, Any] = {
            "left": left_text,
            "right": right_text,
            "predicate": predicate,
        }
        if band_width is not None:
            extra["band_width"] = band_width
        options: dict[str, Any] = dict(kwargs.pop("options", None) or {})
        if analyze:
            options["analyze"] = True
        if shadow:
            options["shadow"] = True
        return self.request(
            protocol.OP_EXPLAIN,
            options=options or None,
            extra=extra,
            **kwargs,
        )

    def ping(self) -> dict[str, Any]:
        return self.request(protocol.OP_PING)

    def stats(self) -> dict[str, Any]:
        return self.request(protocol.OP_STATS)

    def metrics(self) -> dict[str, Any]:
        return self.request(protocol.OP_METRICS)

    def shutdown(self) -> dict[str, Any]:
        return self.request(protocol.OP_SHUTDOWN)


class AsyncServeClient:
    """An asyncio client multiplexing many requests on one connection.

    With ``retry=``/``breaker=`` every :meth:`request` rides the shared
    crash-tolerance pair: connection failures tear the transport down,
    reconnect (serialized by one lock, so a hundred concurrent requests
    trigger a single reconnect) and retry; ``overloaded`` rejections
    back off at least the server's hint.  One breaker may be shared by
    many clients — the load generator's workers trip it together.
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._ids = itertools.count(1)
        self._retry = retry
        self._breaker = breaker
        self._connect_args: tuple[Any, Any, Any] = (None, None, None)
        self._conn_lock: asyncio.Lock | None = None

    @classmethod
    async def connect(
        cls,
        host: str | None = None,
        port: int | None = None,
        unix_path: str | Path | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> "AsyncServeClient":
        if unix_path is None and (host is None or port is None):
            raise ValueError("host and port (or unix_path) are required")
        client = cls(retry=retry, breaker=breaker)
        client._connect_args = (host, port, unix_path)
        client._conn_lock = asyncio.Lock()
        await client._open()
        return client

    async def _open(self) -> None:
        host, port, unix_path = self._connect_args
        if unix_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                str(unix_path)
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                host, port
            )
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @property
    def _connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def _ensure_connected(self) -> None:
        assert self._conn_lock is not None
        async with self._conn_lock:
            if self._connected:
                return
            await self._drop_transport()
            await self._open()

    async def _drop_transport(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._reader = None

    async def _read_loop(self) -> None:
        assert self._reader is not None
        reader = self._reader
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = protocol.parse_response(line)
                except ProtocolError:
                    continue
                rid = response.get("id")
                future = self._pending.pop(rid, None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            # Connection gone: fail every waiter instead of hanging them,
            # and close the writer so `_connected` reports the truth (a
            # retrying request must reconnect, not enqueue futures that
            # no reader will ever resolve).
            if self._reader is reader and self._writer is not None:
                self._writer.close()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    async def _request_once(
        self,
        op: str,
        graph_text: str | None,
        method: str,
        deadline: float | None,
        options: dict[str, Any] | None,
        trace: TraceContext | None,
    ) -> dict[str, Any]:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        rid = f"a{next(self._ids)}"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        line = protocol.encode_request(
            rid,
            op,
            graph_text,
            method=method,
            deadline=deadline,
            options=options,
            trace=trace,
        )
        self._writer.write(line.encode("utf-8"))
        await self._writer.drain()
        return await future

    async def request(
        self,
        op: str,
        graph_text: str | None = None,
        method: str = "auto",
        deadline: float | None = None,
        options: dict[str, Any] | None = None,
        trace: TraceContext | None = None,
    ) -> dict[str, Any]:
        """Send one request; await its (possibly out-of-order) response."""
        if self._retry is None:
            return await self._request_once(
                op, graph_text, method, deadline, options, trace
            )
        controller = self._retry.controller(f"client.{op}")
        while True:
            if self._breaker is not None and not self._breaker.allow():
                await asyncio.sleep(max(self._breaker.retry_in(), 0.001))
                continue
            try:
                if not self._connected:
                    await self._ensure_connected()
                response = await self._request_once(
                    op, graph_text, method, deadline, options, trace
                )
            except _RETRY_ERRORS as exc:
                if self._breaker is not None:
                    self._breaker.record_failure()
                delay = controller.next_delay(reason=type(exc).__name__)
                if delay is None:
                    raise
                await asyncio.sleep(delay)
                continue
            if _is_overloaded(response):
                if self._breaker is not None:
                    self._breaker.record_failure()
                delay = controller.next_delay(
                    hint_ms=_overload_hint(response), reason="overloaded"
                )
                if delay is None:
                    return response
                await asyncio.sleep(delay)
                continue
            if self._breaker is not None:
                self._breaker.record_success()
            return response

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass


__all__ = ["AsyncServeClient", "ServeClient"]
