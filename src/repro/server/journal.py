"""Write-ahead request journal: no admitted request is ever lost.

The durability story of ``repro serve`` (docs/ROBUSTNESS.md): before the
dispatcher touches an admitted ``solve``/``plan`` request, its raw wire
line is appended — fsync'd — to ``journal.jsonl`` in the journal
directory; when the response is ready the entry is marked complete.  A
server killed mid-request therefore leaves an ``admitted`` record with
no matching ``complete`` record, and ``repro serve --recover <dir>``
replays exactly those entries on startup (re-solving them into the
shared cache, emitting one ``server.recover`` event each) before
appending new ones to the same file.

Records are single JSON lines, append-only, two kinds::

    {"schema": "repro-journal/v1", "kind": "admitted", "entry": 3,
     "request": "{...the raw request line...}",
     "trace": {"trace_id": "...", "parent_span_id": 0}}
    {"schema": "repro-journal/v1", "kind": "complete", "entry": 3,
     "recovered": false}

The optional ``trace`` object on an admitted record is the request's
resolved :class:`repro.obs.context.TraceContext` — the id the server
*actually served under* (client-supplied or server-minted), so a
``--recover`` replay keeps the original trace identity instead of
minting a new one.  Absent on journals written before tracing existed;
readers must tolerate both.

A crash can truncate the *final* line mid-write; the loader tolerates
exactly that (an unparseable tail is dropped, an unparseable interior
line is a validation problem).  Entry ids keep increasing across
restarts — a recovered server continues numbering where its predecessor
died, so the journal stays a single totally-ordered history.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

JOURNAL_SCHEMA = "repro-journal/v1"
JOURNAL_NAME = "journal.jsonl"

KIND_ADMITTED = "admitted"
KIND_COMPLETE = "complete"


@dataclass(frozen=True)
class JournalEntry:
    """One admitted request as recorded in the journal."""

    entry_id: int
    request_line: str
    trace: dict[str, Any] | None = None  # serialized TraceContext, if any


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal file, tolerating a crash-truncated final line.

    Only the *last* line may be defective (the fsync discipline
    guarantees every earlier line landed whole); a defective interior
    line is surfaced by :func:`validate_records`, not here.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn tail: the crash interrupted this append
            records.append({"_defective_line": number})
            continue
        records.append(record if isinstance(record, dict) else {"_defective_line": number})
    return records


def incomplete_entries(records: list[dict[str, Any]]) -> list[JournalEntry]:
    """The admitted-but-never-completed entries, in admission order."""
    admitted: dict[int, tuple[str, dict[str, Any] | None]] = {}
    completed: set[int] = set()
    for record in records:
        kind = record.get("kind")
        entry = record.get("entry")
        if not isinstance(entry, int):
            continue
        if kind == KIND_ADMITTED and isinstance(record.get("request"), str):
            trace = record.get("trace")
            admitted[entry] = (
                record["request"],
                trace if isinstance(trace, dict) else None,
            )
        elif kind == KIND_COMPLETE:
            completed.add(entry)
    return [
        JournalEntry(
            entry_id=entry,
            request_line=admitted[entry][0],
            trace=admitted[entry][1],
        )
        for entry in sorted(admitted)
        if entry not in completed
    ]


def validate_records(
    records: list[dict[str, Any]], context: str = "journal"
) -> list[str]:
    """Structural problems in parsed journal records (empty = valid).

    Checked: schema tag, known kinds, strictly increasing positions per
    entry id (admitted before complete), completes referencing an
    admitted entry, and no defective interior lines.
    """
    problems: list[str] = []
    admitted: set[int] = set()
    completed: set[int] = set()
    for position, record in enumerate(records):
        where = f"{context}[{position}]"
        if "_defective_line" in record:
            problems.append(
                f"{where}: unparseable interior line "
                f"{record['_defective_line']} (only the tail may be torn)"
            )
            continue
        if record.get("schema") != JOURNAL_SCHEMA:
            problems.append(f"{where}: missing schema {JOURNAL_SCHEMA!r}")
        kind = record.get("kind")
        entry = record.get("entry")
        if not isinstance(entry, int) or entry < 1:
            problems.append(f"{where}: 'entry' must be a positive integer")
            continue
        if kind == KIND_ADMITTED:
            if not isinstance(record.get("request"), str):
                problems.append(f"{where}: admitted record missing 'request'")
            if "trace" in record and not isinstance(record["trace"], dict):
                problems.append(f"{where}: 'trace' must be an object")
            if entry in admitted:
                problems.append(f"{where}: duplicate admitted entry {entry}")
            admitted.add(entry)
        elif kind == KIND_COMPLETE:
            if entry not in admitted:
                problems.append(
                    f"{where}: complete for unknown entry {entry}"
                )
            if entry in completed:
                problems.append(f"{where}: duplicate complete entry {entry}")
            completed.add(entry)
        else:
            problems.append(f"{where}: unknown kind {kind!r}")
    return problems


class RequestJournal:
    """The append-only, fsync'd journal one server writes and recovers.

    Opening a journal loads whatever a predecessor left in the same
    directory: :meth:`incomplete` exposes its unfinished entries and new
    entry ids continue after its highest.  Every append is flushed *and*
    fsync'd before the call returns — the write-ahead guarantee the
    recovery contract rests on.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        records = load_records(self.path)
        self._incomplete = incomplete_entries(records)
        highest = max(
            (
                record["entry"]
                for record in records
                if isinstance(record.get("entry"), int)
            ),
            default=0,
        )
        self._next_entry = highest + 1
        self._handle = open(self.path, "a", encoding="utf-8")

    def incomplete(self) -> list[JournalEntry]:
        """The predecessor's admitted-but-unanswered entries (replay set)."""
        return list(self._incomplete)

    def record_admitted(
        self, request_line: str, trace: dict[str, Any] | None = None
    ) -> int:
        """Journal one admitted request *before* it is dispatched.

        ``trace`` is the request's resolved trace context (wire form) —
        recorded so a recovery replay serves under the original id.
        """
        entry_id = self._next_entry
        self._next_entry += 1
        record: dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "kind": KIND_ADMITTED,
            "entry": entry_id,
            "request": request_line,
        }
        if trace is not None:
            record["trace"] = trace
        self._append(record)
        return entry_id

    def record_complete(self, entry_id: int, recovered: bool = False) -> None:
        """Mark one entry answered (or replayed, when ``recovered``)."""
        self._append(
            {
                "schema": JOURNAL_SCHEMA,
                "kind": KIND_COMPLETE,
                "entry": entry_id,
                "recovered": recovered,
            }
        )

    def _append(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "KIND_ADMITTED",
    "KIND_COMPLETE",
    "RequestJournal",
    "incomplete_entries",
    "load_records",
    "validate_records",
]
