"""The persistent solve server behind ``repro serve``.

One :class:`SolveServer` owns the long-lived resources — a
:class:`~repro.parallel.pool.WorkerPool`, a shared two-tier
:class:`~repro.parallel.cache.SolveCache`, an
:class:`~repro.server.admission.AdmissionController` — and an asyncio
listener (TCP ``host:port`` or a Unix socket ``path``) speaking the
newline-delimited JSON protocol of :mod:`repro.server.protocol`.

Connection handling is pipelined: every request line spawns its own
asyncio task, so a slow solve on one connection never blocks a ping on
another — or a later request on the *same* connection; responses carry
the request ``id`` precisely because they may come back out of order.
A per-connection lock serializes writes so response lines never
interleave mid-line.

Lifecycle of one request::

    read line ─ parse ─ admit ─ dispatch ─ respond ─ release
        │          │       │        │
        │          │       │        └─ budget_exhausted/timed_out are
        │          │       │           *ok* responses with degraded
        │          │       │           status — a tripped deadline never
        │          │       │           kills the connection or server
        │          │       └─ overloaded ⇒ error + retry_after_ms
        └──────────┴─ defects ⇒ bad_request/... error response

Every stage is observable: ``server.request_start`` / ``server.request_end``
events (end carries per-request latency and the trace id), request
counters, and admission events/gauges from the controller.  When the
server is given a run directory, shutdown writes ``events.jsonl`` +
``metrics.json`` (+ ``trace.jsonl`` when tracing is enabled) there —
the same artifact shapes as a bench run — and only then does a
``server.latency_ms`` histogram (p50/p99) enter the metrics snapshot:
bench-run metrics must stay timing-free so same-seed runs stay
byte-identical.

Two *live* surfaces exist besides the artifacts: every solve/plan
request is served under a :class:`repro.obs.context.TraceContext`
(client-supplied or minted) whose id is echoed in the result payload as
``trace_id``, and an always-on :class:`repro.obs.telemetry.TelemetryWindow`
feeds the ``metrics`` op's Prometheus exposition (per-op counters,
latency histograms, rolling-window rates — what ``repro top`` renders).

:func:`serve_background` runs a server on a daemon thread with its own
event loop — the harness used by tests, the smoke checker, and the
``server-load`` bench scenario (whose driving client is synchronous).
"""

from __future__ import annotations

import asyncio
import contextlib
import stat
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.obs.context import TraceContext
from repro.obs.telemetry import TelemetryWindow
from repro.parallel.cache import SolveCache
from repro.parallel.pool import WorkerPool
from repro.runtime.anytime import DEGRADED_STATUSES
from repro.server import protocol
from repro.server.admission import (
    AdmissionController,
    RejectedError,
)
from repro.server.dispatch import Dispatcher
from repro.server.journal import RequestJournal

DEFAULT_HOST = "127.0.0.1"

# Runtime counters surfaced by the stats op (crash-tolerance activity:
# retry/backoff, breaker trips, pool healing) — read from the global
# metrics registry, so nonzero only on observed (``--run-dir``) servers.
RUNTIME_STAT_COUNTERS = {
    "retry_attempts": "runtime.retry.attempts",
    "retry_give_ups": "runtime.retry.give_ups",
    "breaker_opens": "runtime.breaker.opens",
    "worker_crashes": "parallel.pool.worker_crashes",
    "quarantines": "parallel.pool.quarantines",
    "spans_adopted": "parallel.pool.spans_adopted",
}


class SolveServer:
    """A solve/plan server over TCP or a Unix socket.

    Exactly one of ``port`` (TCP on ``host``) or ``unix_path`` selects
    the transport; ``port=0`` binds an ephemeral port (read it back from
    :attr:`address` once started — the test/bench pattern).

    ``jobs=1`` means no worker pool: components solve inline on the
    event-loop thread, which is the right shape for tests and for
    cache-hit-dominated serving.  ``jobs>1`` builds a shared
    :class:`WorkerPool` that lives as long as the server.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int | None = None,
        unix_path: str | Path | None = None,
        jobs: int = 1,
        cache: SolveCache | None = None,
        admission: AdmissionController | None = None,
        default_deadline: float | None = None,
        memo_cap: int | None = None,
        run_dir: str | Path | None = None,
        journal_dir: str | Path | None = None,
        recover: bool = False,
        telemetry: TelemetryWindow | None = None,
    ) -> None:
        if (port is None) == (unix_path is None):
            raise ValueError("exactly one of port= or unix_path= must be set")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if recover and journal_dir is None:
            raise ValueError("recover=True requires journal_dir=")
        self.host = host
        self.port = port
        self.unix_path = Path(unix_path) if unix_path is not None else None
        self.jobs = jobs
        self.cache = cache
        self.pool = WorkerPool(jobs) if jobs > 1 else None
        self.admission = admission if admission is not None else AdmissionController()
        self.dispatcher = Dispatcher(
            cache=cache,
            pool=self.pool,
            default_deadline=default_deadline,
            memo_cap=memo_cap,
        )
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.journal = (
            RequestJournal(journal_dir) if journal_dir is not None else None
        )
        self.recover = recover
        # Live telemetry is always on: a handful of dict updates per
        # request, and the `metrics` op must answer on any server.  Pass
        # a custom window to control its span (or inject a test clock).
        self.telemetry = telemetry if telemetry is not None else TelemetryWindow()
        self.requests_total = 0
        self.recovered_total = 0
        self._server: asyncio.base_events.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int] | str:
        """Where the server actually listens: ``(host, port)`` or the
        Unix socket path.  Valid once :meth:`start` has returned."""
        if self.unix_path is not None:
            return str(self.unix_path)
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listener, replay the journal, record the start event.

        Anything failing *after* the bind closes the listener (and
        unlinks a Unix socket) on the way out — a failed startup must
        never leave the address occupied (the ``serve_background``
        regression of docs/ROBUSTNESS.md).  Recovery runs here, before
        ``start`` returns, so a caller that saw the server come up also
        knows the replay finished.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.unix_path is not None:
            # The server owns its socket path: a stale socket file from a
            # SIGKILL'd predecessor must not block the restart-and-recover
            # path with EADDRINUSE.  Only socket files are removed.
            self._unlink_socket()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(self.unix_path)
            )
        else:
            assert self.port is not None
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        try:
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SERVER_START,
                    transport="unix" if self.unix_path is not None else "tcp",
                    jobs=self.jobs,
                )
            if self.journal is not None and self.recover:
                await self._recover()
        except BaseException:
            await self.abort()
            raise

    async def abort(self) -> None:
        """Close the listener without serving (the startup-failure path);
        idempotent, and also unlinks a Unix socket path."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        if self.journal is not None:
            self.journal.close()
        self._unlink_socket()

    def _unlink_socket(self) -> None:
        """Remove the Unix socket file, if ours to remove."""
        if self.unix_path is None:
            return
        with contextlib.suppress(OSError):
            if stat.S_ISSOCK(self.unix_path.stat().st_mode):
                self.unix_path.unlink()

    async def _recover(self) -> None:
        """Replay the predecessor's admitted-but-unanswered requests.

        Each incomplete journal entry is re-parsed and re-solved through
        the normal dispatcher (warming the shared cache, so the original
        client's retry is served instantly), emits one ``server.recover``
        event, and is marked complete with ``recovered: true``.  Entries
        whose replay fails are still marked complete — replaying a
        poison request forever would wedge every restart.
        """
        assert self.journal is not None
        entries = self.journal.incomplete()
        for entry in entries:
            request = None
            with contextlib.suppress(protocol.ProtocolError):
                request = protocol.parse_request(entry.request_line)
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SERVER_RECOVER,
                    entry=entry.entry_id,
                    id=None if request is None else request.id,
                    op=None if request is None else request.op,
                )
            if request is not None and request.op in protocol.SOLVE_OPS:
                # Replay under the *original* trace identity: the journal
                # recorded the context the request was served with, so
                # recovered work joins the same trace, not a fresh one.
                ctx = obs_context.from_wire(entry.trace) or request.trace
                if ctx is None:
                    ctx = TraceContext(obs_context.new_trace_id())
                with contextlib.suppress(Exception):
                    await self._dispatch_traced(request, ctx, recovered=True)
            self.recovered_total += 1
            self.journal.record_complete(entry.entry_id, recovered=True)
        if entries and obs_metrics.METRICS.enabled:
            obs_metrics.inc("server.recovered", len(entries))

    async def run_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown` fires, then clean up."""
        if self._server is None:
            await self.start()
        assert self._server is not None and self._shutdown is not None
        async with self._server:
            await self._shutdown.wait()
        # Drain open connections *before* the loop tears down, so their
        # handler tasks finish normally instead of being cancelled.
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.pool is not None:
            self.pool.close()
        if self.journal is not None:
            self.journal.close()
        self._unlink_socket()
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_SERVER_STOP,
                requests_total=self.requests_total,
            )
        self._write_artifacts()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit; safe from any thread, idempotent."""
        if self._loop is None or self._shutdown is None:
            return
        # The loop may already be gone (e.g. an in-band ``shutdown`` op
        # stopped it); a second request is then a no-op, not an error.
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._shutdown.set)

    def _write_artifacts(self) -> None:
        """Drop run artifacts (events.jsonl, metrics.json, trace.jsonl)
        on shutdown."""
        if self.run_dir is None:
            return
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if obs_events.EVENTS.enabled:
            obs_events.write_events(self.run_dir / "events.jsonl")
        if obs_metrics.METRICS.enabled:
            (self.run_dir / "metrics.json").write_text(obs_metrics.to_json())
        if obs_trace.TRACER.enabled:
            # One Span.as_dict per line, every span tagged with its
            # request's trace_id — the input `repro runs trace-request`
            # assembles per-request Chrome traces from.
            from repro.obs import export as obs_export

            obs_export.write_trace(self.run_dir / "trace.jsonl", "jsonl")

    # -- connection plumbing -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # One task per request line: pipelining.  The task set
                # keeps strong references and lets close wait for drains.
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            self._writers.discard(writer)
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.monotonic()
        request_id: str | None = None
        op_label = "invalid"  # telemetry label for unparseable lines
        outcome = "error"
        error_code: str | None = None
        trace_ctx: TraceContext | None = None
        ticket = None
        journal_entry: int | None = None
        self.requests_total += 1
        try:
            request = protocol.parse_request(line)
            request_id = request.id
            op_label = request.op
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SERVER_REQUEST_START,
                    id=request.id,
                    op=request.op,
                    nbytes=request.nbytes,
                )
            if request.op == protocol.OP_PING:
                response = protocol.ok_response(request.id, request.op, {})
                outcome = "ok"
            elif request.op == protocol.OP_STATS:
                response = protocol.ok_response(
                    request.id, request.op, self._stats_payload()
                )
                outcome = "ok"
            elif request.op == protocol.OP_METRICS:
                response = protocol.ok_response(
                    request.id, request.op, self._metrics_payload()
                )
                outcome = "ok"
            elif request.op == protocol.OP_SHUTDOWN:
                response = protocol.ok_response(request.id, request.op, {})
                self.request_shutdown()
                outcome = "ok"
            else:
                # The request's trace identity: the client's context when
                # it sent a well-formed one, a server-minted id otherwise.
                trace_ctx = request.trace or TraceContext(
                    obs_context.new_trace_id()
                )
                ticket = self.admission.admit(request.nbytes)
                if self.journal is not None:
                    # Write-ahead: the raw line lands fsync'd in the
                    # journal before any solving starts, so a crash from
                    # here on leaves a replayable record.  The resolved
                    # trace rides along so recovery replays the same id.
                    journal_entry = self.journal.record_admitted(
                        line.decode("utf-8", errors="replace").strip(),
                        trace=trace_ctx.as_wire(),
                    )
                result = await self._dispatch_traced(request, trace_ctx)
                response = protocol.ok_response(request.id, request.op, result)
                outcome = (
                    "degraded"
                    if result.get("status") in DEGRADED_STATUSES
                    else "ok"
                )
        except RejectedError as exc:
            outcome = "rejected"
            error_code = protocol.ERROR_OVERLOADED
            response = protocol.error_response(
                request_id,
                protocol.ERROR_OVERLOADED,
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        except protocol.ProtocolError as exc:
            outcome = "error"
            error_code = exc.code
            response = protocol.error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 — the server must survive
            outcome = "error"
            error_code = protocol.ERROR_INTERNAL
            response = protocol.error_response(
                request_id,
                protocol.ERROR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            if ticket is not None:
                self.admission.release(ticket)
            if journal_entry is not None:
                # Answered (even with an error response): replaying it on
                # recovery would just repeat the same outcome.
                self.journal.record_complete(journal_entry)
        latency_ms = (time.monotonic() - started) * 1000.0
        self.telemetry.record(
            op_label, latency_ms, outcome=outcome, code=error_code
        )
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("server.requests")
            # The latency histogram belongs to *observed server runs*
            # (``--run-dir``), whose metrics.json is this server's own
            # artifact.  Inside a bench run the process-global registry
            # must stay timing-free so same-seed metrics.json files are
            # byte-identical; there, p50/p99 come from the load
            # generator's client-side measurements instead.
            if self.run_dir is not None:
                obs_metrics.observe("server.latency_ms", latency_ms)
        if obs_events.EVENTS.enabled:
            # The trace attr joins events.jsonl to trace.jsonl per request.
            obs_events.emit(
                obs_events.EVENT_SERVER_REQUEST_END,
                id=request_id,
                latency_ms=round(latency_ms, 3),
                trace=None if trace_ctx is None else trace_ctx.trace_id,
            )
        async with write_lock:
            try:
                writer.write(response.encode("utf-8"))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; the work is already done

    async def _dispatch_traced(
        self, request: protocol.Request, ctx: TraceContext, recovered: bool = False
    ) -> dict[str, Any]:
        """One solve/plan dispatch under its trace identity.

        The root ``server.request`` span is *detached* (stack-free): it
        stays open across ``await`` points while other requests
        interleave on the loop, so it must never sit on the span stack
        where it would corrupt their nesting.  Children attach through
        the ambient context instead — re-rooted under the root span's
        index before the dispatcher runs.
        """
        with obs_context.use(ctx):
            attrs: dict[str, Any] = {"id": request.id, "op": request.op}
            if recovered:
                attrs["recovered"] = True
            with obs_trace.detached_span("server.request", **attrs) as root:
                inner = ctx.child(root.index) if root is not None else ctx
                with obs_context.use(inner):
                    result = await self.dispatcher.handle(request)
        result["trace_id"] = ctx.trace_id
        return result

    def _stats_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "requests_total": self.requests_total,
            "jobs": self.jobs,
            "admission": self.admission.stats(),
            # Crash-tolerance activity (PR 7), read from the global
            # metrics registry: zeros on unobserved servers (the registry
            # only records under --run-dir), live counts on observed ones.
            "runtime": {
                key: obs_metrics.counter(name)
                for key, name in sorted(RUNTIME_STAT_COUNTERS.items())
            },
        }
        if self.journal is not None:
            payload["journal"] = str(self.journal.path)
            payload["recovered_total"] = self.recovered_total
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
        return payload

    def _metrics_payload(self) -> dict[str, Any]:
        return {
            "content_type": obs_telemetry.CONTENT_TYPE,
            "text": self.exposition(),
        }

    def exposition(self) -> str:
        """The server's live telemetry as Prometheus text format v0.0.4.

        Cumulative per-op request/outcome/error counters and latency
        histograms, rolling-window gauges (rps, error rate, live
        quantiles), admission and cache state, and the runtime
        crash-tolerance counters — everything ``repro top`` renders.
        """
        totals = self.telemetry.totals()
        window = self.telemetry.window()
        admission = self.admission.stats()
        families: list[list[str]] = [
            obs_telemetry.scalar_family(
                "repro_server_requests_total",
                "counter",
                "Requests received, by protocol op.",
                [({"op": op}, data["requests"]) for op, data in totals.items()],
            ),
            obs_telemetry.scalar_family(
                "repro_server_request_outcomes_total",
                "counter",
                "Terminal request outcomes (ok/degraded/rejected/error).",
                [
                    ({"op": op, "outcome": outcome}, count)
                    for op, data in totals.items()
                    for outcome, count in data["outcomes"].items()
                    if count
                ],
            ),
            obs_telemetry.scalar_family(
                "repro_server_errors_total",
                "counter",
                "Error responses by op and protocol error code.",
                [
                    ({"op": op, "code": code}, count)
                    for op, data in totals.items()
                    for code, count in data["errors"].items()
                ],
            ),
        ]
        latency_samples = [
            ({"op": op}, data["latency"]) for op, data in totals.items()
        ]
        if latency_samples:
            families.append(
                obs_telemetry.histogram_family(
                    "repro_server_request_latency_ms",
                    "Request latency in milliseconds, by op "
                    "(log-spaced buckets, cumulative since start).",
                    latency_samples,
                )
            )
        families.extend(
            [
                obs_telemetry.scalar_family(
                    "repro_server_window_rps",
                    "gauge",
                    "Requests per second over the rolling window, by op.",
                    [({"op": op}, view["rps"]) for op, view in window.items()],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_window_error_rate",
                    "gauge",
                    "Error+rejection fraction over the rolling window, by op.",
                    [
                        ({"op": op}, view["error_rate"])
                        for op, view in window.items()
                    ],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_window_p50_ms",
                    "gauge",
                    "Rolling-window median latency estimate, by op.",
                    [
                        ({"op": op}, view["p50_ms"])
                        for op, view in window.items()
                        if view["p50_ms"] is not None
                    ],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_window_p99_ms",
                    "gauge",
                    "Rolling-window p99 latency estimate, by op.",
                    [
                        ({"op": op}, view["p99_ms"])
                        for op, view in window.items()
                        if view["p99_ms"] is not None
                    ],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_uptime_seconds",
                    "gauge",
                    "Seconds since this server's telemetry began.",
                    [({}, self.telemetry.uptime_seconds())],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_jobs",
                    "gauge",
                    "Worker processes (1 = inline solving).",
                    [({}, self.jobs)],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_queue_depth",
                    "gauge",
                    "Admitted requests currently in flight.",
                    [({}, admission["depth"])],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_inflight_bytes",
                    "gauge",
                    "Wire bytes of admitted in-flight requests.",
                    [({}, admission["inflight_bytes"])],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_admitted_total",
                    "counter",
                    "Requests past admission control.",
                    [({}, admission["admitted_total"])],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_admission_rejected_total",
                    "counter",
                    "Requests rejected by admission control.",
                    [({}, admission["rejected_total"])],
                ),
                obs_telemetry.scalar_family(
                    "repro_server_recovered_total",
                    "counter",
                    "Journal entries replayed by --recover.",
                    [({}, self.recovered_total)],
                ),
            ]
        )
        if self.cache is not None:
            stats = self.cache.stats
            families.append(
                obs_telemetry.scalar_family(
                    "repro_server_cache_hits_total",
                    "counter",
                    "Solve-cache hits, by tier.",
                    [
                        ({"tier": "memory"}, stats.memory_hits),
                        ({"tier": "persistent"}, stats.persistent_hits),
                    ],
                )
            )
            families.append(
                obs_telemetry.scalar_family(
                    "repro_server_cache_misses_total",
                    "counter",
                    "Solve-cache misses.",
                    [({}, stats.misses)],
                )
            )
            families.append(
                obs_telemetry.scalar_family(
                    "repro_server_cache_stores_total",
                    "counter",
                    "Solve-cache stores.",
                    [({}, stats.stores)],
                )
            )
        families.append(
            obs_telemetry.scalar_family(
                "repro_server_runtime_total",
                "counter",
                "Crash-tolerance activity (retry/breaker/pool healing), "
                "by kind; live only on observed (--run-dir) servers.",
                [
                    ({"kind": key}, obs_metrics.counter(name))
                    for key, name in sorted(RUNTIME_STAT_COUNTERS.items())
                ],
            )
        )
        return obs_telemetry.render_exposition(families)


@contextlib.contextmanager
def serve_background(
    server: SolveServer, startup_timeout: float = 10.0
) -> Iterator[SolveServer]:
    """Run ``server`` on a daemon thread with its own event loop.

    Yields once the listener is bound (so :attr:`SolveServer.address` is
    readable); on exit requests shutdown and joins the thread.  This is
    how synchronous callers — tests, the smoke checker, the bench
    scenario — stand a server up without an event loop of their own.
    """
    ready = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # propagate bind errors to the caller
            # start() already closed the listener and unlinked the
            # socket on its own error path, so nothing leaks here.
            failure.append(exc)
            ready.set()
            raise
        ready.set()
        await server.run_until_shutdown()

    def _thread_main() -> None:
        try:
            asyncio.run(_main())
        except BaseException:
            if not failure:
                raise

    thread = threading.Thread(
        target=_thread_main, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(startup_timeout):
        server.request_shutdown()
        raise TimeoutError("server failed to start within timeout")
    if failure:
        raise failure[0]
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=startup_timeout)


__all__ = ["DEFAULT_HOST", "SolveServer", "serve_background"]
