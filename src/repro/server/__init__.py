"""The persistent solve front-end (``repro serve``; ``docs/PARALLEL.md``).

A small asyncio subsystem serving PEBBLE solves and join-plan summaries
over a newline-delimited JSON protocol, sharing one long-lived
:class:`~repro.parallel.pool.WorkerPool` and one two-tier
:class:`~repro.parallel.cache.SolveCache` across all concurrent
requests:

- :mod:`repro.server.protocol` — the versioned wire schema
  (``repro-serve/v1``), request parsing/validation, response encoding;
- :mod:`repro.server.admission` — bounded admission (queue depth +
  in-flight bytes) with retry-after rejections;
- :mod:`repro.server.dispatch` — the per-request solve pipeline
  (decompose → cache → fan out → reassemble) on the event loop;
- :mod:`repro.server.journal` — the fsync'd write-ahead request journal
  behind ``repro serve --journal/--recover`` (docs/ROBUSTNESS.md);
- :mod:`repro.server.server` — the listener, connection pipelining, and
  lifecycle (plus :func:`serve_background` for synchronous harnesses);
- :mod:`repro.server.client` — sync and asyncio clients, optionally
  armed with the shared retry policy and circuit breaker.
"""

from repro.server.admission import AdmissionController, RejectedError
from repro.server.client import AsyncServeClient, ServeClient
from repro.server.dispatch import Dispatcher
from repro.server.journal import RequestJournal
from repro.server.protocol import (
    PROTOCOL_SCHEMA,
    ProtocolError,
    Request,
    parse_request,
)
from repro.server.server import SolveServer, serve_background

__all__ = [
    "AdmissionController",
    "AsyncServeClient",
    "Dispatcher",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "RejectedError",
    "Request",
    "RequestJournal",
    "ServeClient",
    "SolveServer",
    "parse_request",
    "serve_background",
]
