"""The wire protocol of ``repro serve``: versioned newline-delimited JSON.

One request is one JSON object on one line; one response is one JSON
object on one line.  Responses echo the request ``id``, so a client may
pipeline many requests on a single connection and match answers out of
order.  The schema is versioned (``repro-serve/v1``) and every response
carries it, mirroring the repo's other serialized artifacts
(``repro-bench/v2``, ``repro-events/v1``).

Request shape::

    {"schema": "repro-serve/v1", "id": "r1", "op": "solve",
     "graph": "# bipartite\\nL a\\nR b\\nE a b\\n",
     "method": "auto", "deadline": 1.5, "options": {}}

Operations:

``solve``
    Solve PEBBLE on the graph (the text format of
    :mod:`repro.graphs.io`); the result carries costs, status, and the
    full scheme as vertex pairs.
``plan``
    Same pipeline, but the response omits the scheme — a join-*plan*
    summary (per-component shape, costs, status) at a fraction of the
    response bytes.
``explain``
    Plan (and with ``options.analyze`` execute) a join described by two
    relation texts (``left``/``right``, the format of
    :mod:`repro.relations.io`) and a ``predicate`` name; the result
    carries the plan's structured record (``repro-plan/v1``) plus its
    text renderings — the same record ``repro explain`` serializes
    locally, so the two surfaces cannot drift.
``ping``
    Liveness probe; carries no payload.
``stats``
    Server statistics: request/admission counters, queue depth,
    in-flight bytes, cache hit/miss/store counts, pool shape.
``metrics``
    Live telemetry as Prometheus text format v0.0.4 (see
    :mod:`repro.obs.telemetry`): per-op request counters and latency
    histograms over the server's rolling window, admission/cache/runtime
    counters.  The result carries the exposition under ``text`` plus its
    ``content_type``.
``shutdown``
    Ask the server to stop accepting work and exit gracefully after
    in-flight requests drain.

Error responses carry a stable ``code`` from :data:`ERROR_CODES`;
``overloaded`` rejections additionally carry ``retry_after_ms`` — the
admission controller's backoff hint (see
:mod:`repro.server.admission`).

Requests may carry an optional ``trace`` object (a serialized
:class:`repro.obs.context.TraceContext`) correlating the server-side
span tree with the caller's: a well-formed one is adopted as the
request's trace identity, a malformed one degrades to "untraced".
Forward compatibility is part of the contract: unknown top-level request
fields from newer clients are ignored, never rejected, so the ``trace``
field (and future additions) need no schema bump.

Parsing is strict but total: any defective line produces a
:class:`ProtocolError` (which the server turns into a ``bad_request``
response), never a traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.obs import context as obs_context
from repro.obs.context import TraceContext

PROTOCOL_SCHEMA = "repro-serve/v1"

OP_SOLVE = "solve"
OP_PLAN = "plan"
OP_EXPLAIN = "explain"
OP_PING = "ping"
OP_STATS = "stats"
OP_METRICS = "metrics"
OP_SHUTDOWN = "shutdown"

OPS = (OP_SOLVE, OP_PLAN, OP_EXPLAIN, OP_PING, OP_STATS, OP_METRICS, OP_SHUTDOWN)

# Ops that carry a graph payload and run through the dispatcher.
SOLVE_OPS = (OP_SOLVE, OP_PLAN)

# Wire names the explain op accepts for 'predicate' (the CLI's
# --predicate vocabulary); "band" additionally carries 'band_width'.
EXPLAIN_PREDICATES = ("band", "containment", "equality", "overlap", "set-overlap")

# Stable machine-readable error codes.
ERROR_BAD_REQUEST = "bad_request"
ERROR_UNSUPPORTED_SCHEMA = "unsupported_schema"
ERROR_UNKNOWN_OP = "unknown_op"
ERROR_INVALID_GRAPH = "invalid_graph"
ERROR_OVERLOADED = "overloaded"
ERROR_INTERNAL = "internal"

ERROR_CODES = (
    ERROR_BAD_REQUEST,
    ERROR_UNSUPPORTED_SCHEMA,
    ERROR_UNKNOWN_OP,
    ERROR_INVALID_GRAPH,
    ERROR_OVERLOADED,
    ERROR_INTERNAL,
)

# One request line is capped (a graph this large should not travel over
# a line-oriented protocol; it also bounds admission accounting).
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ReproError):
    """A defective request line; ``code`` is from :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One parsed, validated request."""

    id: str
    op: str
    graph_text: str | None = None
    method: str = "auto"
    deadline: float | None = None
    options: dict[str, Any] = field(default_factory=dict)
    nbytes: int = 0  # wire size, the admission controller's currency
    trace: TraceContext | None = None  # client-supplied trace identity
    # The explain op's payload: two relation texts and a predicate name.
    left_text: str | None = None
    right_text: str | None = None
    predicate: str | None = None
    band_width: float = 0.0


def parse_request(line: str | bytes) -> Request:
    """Parse one request line; raise :class:`ProtocolError` on any defect."""
    if isinstance(line, bytes):
        nbytes = len(line)
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(ERROR_BAD_REQUEST, f"not UTF-8: {exc}") from exc
    else:
        nbytes = len(line.encode("utf-8"))
    if nbytes > MAX_LINE_BYTES:
        raise ProtocolError(
            ERROR_BAD_REQUEST,
            f"request line is {nbytes} bytes (limit {MAX_LINE_BYTES})",
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERROR_BAD_REQUEST, f"unparseable JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "request must be a JSON object")
    schema = payload.get("schema", PROTOCOL_SCHEMA)
    if schema != PROTOCOL_SCHEMA:
        raise ProtocolError(
            ERROR_UNSUPPORTED_SCHEMA,
            f"unsupported schema {schema!r} (this server speaks {PROTOCOL_SCHEMA})",
        )
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(ERROR_BAD_REQUEST, "'id' must be a non-empty string")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(ERROR_BAD_REQUEST, "'op' must be a non-empty string")
    if op not in OPS:
        raise ProtocolError(
            ERROR_UNKNOWN_OP, f"unknown op {op!r} (ops: {', '.join(OPS)})"
        )
    graph_text = payload.get("graph")
    if op in SOLVE_OPS:
        if not isinstance(graph_text, str) or not graph_text.strip():
            raise ProtocolError(
                ERROR_BAD_REQUEST, f"op {op!r} requires a non-empty 'graph' string"
            )
    else:
        graph_text = None
    left_text = payload.get("left")
    right_text = payload.get("right")
    predicate = payload.get("predicate")
    band_width = payload.get("band_width", 0.0)
    if op == OP_EXPLAIN:
        for name, value in (("left", left_text), ("right", right_text)):
            if not isinstance(value, str) or not value.strip():
                raise ProtocolError(
                    ERROR_BAD_REQUEST,
                    f"op 'explain' requires a non-empty {name!r} relation string",
                )
        if not isinstance(predicate, str) or predicate not in EXPLAIN_PREDICATES:
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                "'predicate' must be one of "
                + ", ".join(EXPLAIN_PREDICATES),
            )
        if isinstance(band_width, bool) or not isinstance(
            band_width, (int, float)
        ):
            raise ProtocolError(ERROR_BAD_REQUEST, "'band_width' must be a number")
        band_width = float(band_width)
    else:
        left_text = right_text = predicate = None
        band_width = 0.0
    method = payload.get("method", "auto")
    if not isinstance(method, str):
        raise ProtocolError(ERROR_BAD_REQUEST, "'method' must be a string")
    deadline = payload.get("deadline")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ProtocolError(
                ERROR_BAD_REQUEST, "'deadline' must be a number of seconds"
            )
        deadline = float(deadline)
        if deadline < 0:
            # A negative deadline is an already-overrun budget: clamp to
            # zero so the solve degrades instantly instead of erroring.
            deadline = 0.0
    options = payload.get("options", {})
    if not isinstance(options, dict) or any(
        not isinstance(k, str) for k in options
    ):
        raise ProtocolError(
            ERROR_BAD_REQUEST, "'options' must be an object with string keys"
        )
    # Lenient by design: trace context is a correlation hint, so a
    # malformed (or absent) 'trace' yields None rather than an error.
    trace = obs_context.from_wire(payload.get("trace"))
    return Request(
        id=request_id,
        op=op,
        graph_text=graph_text,
        method=method,
        deadline=deadline,
        options=dict(options),
        nbytes=nbytes,
        trace=trace,
        left_text=left_text,
        right_text=right_text,
        predicate=predicate,
        band_width=band_width,
    )


def encode_request(
    request_id: str,
    op: str,
    graph_text: str | None = None,
    method: str = "auto",
    deadline: float | None = None,
    options: dict[str, Any] | None = None,
    trace: TraceContext | None = None,
    extra: dict[str, Any] | None = None,
) -> str:
    """One request as a single JSON line (trailing newline included).

    ``extra`` merges additional top-level fields (the explain op's
    ``left``/``right``/``predicate``, or future additions — servers
    ignore fields they do not know) without ever overriding the named
    parameters.
    """
    payload: dict[str, Any] = {
        "schema": PROTOCOL_SCHEMA,
        "id": request_id,
        "op": op,
    }
    if graph_text is not None:
        payload["graph"] = graph_text
    if method != "auto":
        payload["method"] = method
    if deadline is not None:
        payload["deadline"] = deadline
    if options:
        payload["options"] = options
    if trace is not None:
        payload["trace"] = trace.as_wire()
    if extra:
        for key, value in extra.items():
            payload.setdefault(key, value)
    return json.dumps(payload, sort_keys=True) + "\n"


def ok_response(request_id: str, op: str, result: dict[str, Any]) -> str:
    """A success response as a single JSON line."""
    return (
        json.dumps(
            {
                "schema": PROTOCOL_SCHEMA,
                "id": request_id,
                "op": op,
                "ok": True,
                "result": result,
            },
            sort_keys=True,
        )
        + "\n"
    )


def error_response(
    request_id: str | None,
    code: str,
    message: str,
    retry_after_ms: int | None = None,
) -> str:
    """An error response as a single JSON line.

    ``request_id`` may be ``None`` when the line was too defective to
    recover an id; the client then correlates by connection order.
    """
    payload: dict[str, Any] = {
        "schema": PROTOCOL_SCHEMA,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if retry_after_ms is not None:
        payload["retry_after_ms"] = retry_after_ms
    return json.dumps(payload, sort_keys=True) + "\n"


def parse_response(line: str | bytes) -> dict[str, Any]:
    """Parse one response line (client side); raise on malformed lines."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"unparseable response: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError(ERROR_BAD_REQUEST, "response must carry 'ok'")
    return payload


__all__ = [
    "ERROR_CODES",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_INVALID_GRAPH",
    "ERROR_OVERLOADED",
    "ERROR_UNKNOWN_OP",
    "ERROR_UNSUPPORTED_SCHEMA",
    "EXPLAIN_PREDICATES",
    "MAX_LINE_BYTES",
    "OPS",
    "OP_EXPLAIN",
    "OP_METRICS",
    "OP_PING",
    "OP_PLAN",
    "OP_SHUTDOWN",
    "OP_SOLVE",
    "OP_STATS",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "Request",
    "SOLVE_OPS",
    "encode_request",
    "error_response",
    "ok_response",
    "parse_request",
    "parse_response",
]
