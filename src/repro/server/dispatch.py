"""The server's dispatcher: one request through the parallel solve pipeline.

This is :func:`repro.parallel.service.solve_many` re-plumbed for an
event loop.  The stages are the same — decompose into components,
fingerprint, consult the shared two-tier cache, fan the misses out,
reassemble per Lemma 2.2 — but the fan-out *awaits* worker futures
instead of blocking on them, so many requests interleave on one
:class:`~repro.parallel.pool.WorkerPool` without a thread per request.

Single-threading discipline: every cache consult/store and every
observability emission happens on the event-loop thread; only the pure
component solve crosses into a worker process (as a picklable
:class:`~repro.parallel.pool.SolveTask`), and its shipped observations
are merged back on the loop thread.  With ``pool=None`` components solve
inline on the loop thread — the test and smoke configuration, and the
degenerate ``jobs=1`` server.

Deadlines propagate as plain numbers: the request's
:class:`~repro.runtime.budget.Budget` is armed on admission, and each
component task gets :func:`~repro.parallel.service.split_deadline` of
``budget.remaining()`` — so time spent queueing behind other requests
*counts against* the request's own deadline, and an already-exhausted
budget yields zero-share solves that degrade instantly to an answer
instead of erroring.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.solvers.registry import solve as registry_solve
from repro.engine.executor import execute as engine_execute
from repro.engine.planner import plan as engine_plan
from repro.engine.query import JoinQuery
from repro.errors import GraphError, PredicateError, RelationError
from repro.graphs.components import component_vertex_sets
from repro.graphs.io import load_bipartite, load_graph
from repro.joins import predicates as predicate_module
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import planquality
from repro.obs import trace as obs_trace
from repro.parallel import pool as pool_mod
from repro.parallel.cache import CacheToken, SolveCache, cache_key, use_cache
from repro.parallel.fingerprint import CanonicalForm, canonical_form
from repro.parallel.service import (
    assemble_components,
    rebind_result,
    split_deadline,
)
from repro.relations.io import load_relation
from repro.runtime import faults
from repro.runtime.budget import Budget
from repro.server.protocol import (
    ERROR_INVALID_GRAPH,
    OP_EXPLAIN,
    OP_SOLVE,
    ProtocolError,
    Request,
)

AnyGraph = pool_mod.AnyGraph

# The explain op's wire predicate names, mapped to their constructors
# ("band" is special-cased: it carries a width).
EXPLAIN_PREDICATES = {
    "containment": predicate_module.SetContainment,
    "equality": predicate_module.Equality,
    "overlap": predicate_module.SpatialOverlap,
    "set-overlap": predicate_module.SetOverlap,
}


def parse_graph_text(text: str) -> AnyGraph:
    """Load a request's graph payload, sniffing the variant.

    The text format declares plain graphs with ``V`` lines and bipartite
    graphs with ``L``/``R`` lines (:mod:`repro.graphs.io`); the first
    tagged line decides.  Defects become ``invalid_graph`` protocol
    errors, never tracebacks.
    """
    variant = "bipartite"
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "graph" in line and "bipartite" not in line:
                variant = "graph"
            break
        tag = line.split(None, 1)[0]
        if tag == "V":
            variant = "graph"
        break
    try:
        if variant == "graph":
            return load_graph(text)
        return load_bipartite(text)
    except GraphError as exc:
        raise ProtocolError(ERROR_INVALID_GRAPH, str(exc)) from exc


class Dispatcher:
    """Shared solve machinery behind every connection of one server.

    One dispatcher owns the server's :class:`SolveCache` and (optionally)
    its :class:`~repro.parallel.pool.WorkerPool`; :meth:`handle` is
    called once per admitted solve/plan request, concurrently.
    """

    def __init__(
        self,
        cache: SolveCache | None = None,
        pool: pool_mod.WorkerPool | None = None,
        default_deadline: float | None = None,
        memo_cap: int | None = None,
    ) -> None:
        self.cache = cache
        self.pool = pool
        self.default_deadline = default_deadline
        self.memo_cap = memo_cap

    async def handle(self, request: Request) -> dict[str, Any]:
        """Serve one ``solve``/``plan``/``explain`` request; returns the
        result payload.

        Raises :class:`ProtocolError` for defective graphs; budget
        exhaustion is *not* an error — it surfaces as a degraded
        ``status`` in an ok response, exactly like the CLI.

        When tracing is enabled the whole dispatch is timed as a
        *detached* ``server.dispatch`` span (stack-free, because the
        region stays open across ``await`` points while other requests
        interleave) and the ambient trace context is re-rooted under it,
        so every solver span — inline or shipped home from a worker —
        hangs off this request's dispatch.
        """
        ctx = obs_context.current()
        with obs_trace.detached_span(
            "server.dispatch",
            id=request.id,
            op=request.op,
            method=request.method,
        ) as dispatch_span:
            if ctx is not None and dispatch_span is not None:
                ctx = ctx.child(dispatch_span.index)
            with obs_context.use(ctx):
                if request.op == OP_EXPLAIN:
                    return await self._explain(request)
                return await self._dispatch(request)

    async def _explain(self, request: Request) -> dict[str, Any]:
        """Plan (and with ``options.analyze`` execute) one join described
        by relation texts; returns the plan's structured record plus its
        renderings.

        ``options.shadow`` (with ``analyze``) additionally shadow-executes
        the runner-up candidates on small inputs so the record carries
        plan-regret.  The ``record`` payload is byte-for-byte what
        ``repro explain --json`` emits locally — one source of truth for
        both surfaces.
        """
        assert request.left_text is not None and request.right_text is not None
        faults.maybe_fail("server.dispatch")
        try:
            left = load_relation("R", request.left_text)
            right = load_relation("S", request.right_text)
        except RelationError as exc:
            raise ProtocolError(ERROR_INVALID_GRAPH, str(exc)) from exc
        if request.predicate == "band":
            predicate = predicate_module.Band(request.band_width)
        else:
            predicate = EXPLAIN_PREDICATES[request.predicate]()
        deadline = request.deadline
        if deadline is None:
            deadline = self.default_deadline
        budget = Budget(deadline=deadline) if deadline is not None else None
        if budget is not None:
            budget.start()
        options = request.options
        try:
            query = JoinQuery(left, right, predicate)
            if options.get("analyze"):
                result = engine_execute(
                    query, budget=budget, shadow=bool(options.get("shadow"))
                )
                the_plan = result.plan
                text = result.explain_analyze()
            else:
                the_plan = engine_plan(query, budget=budget)
                text = the_plan.explain()
        except PredicateError as exc:
            # Relations that do not fit the predicate (e.g. equality over
            # mixed domains) are a client input defect, not a server bug.
            raise ProtocolError(ERROR_INVALID_GRAPH, str(exc)) from exc
        payload: dict[str, Any] = {
            "schema": planquality.PLAN_SCHEMA,
            "explain": text,
            "algorithm": the_plan.algorithm_name,
        }
        record = the_plan.record
        if record is not None:
            payload["render"] = record.render()
            payload["record"] = record.as_dict()
        return payload

    async def _dispatch(self, request: Request) -> dict[str, Any]:
        assert request.graph_text is not None
        # Chaos hook: an installed FaultPlan may fail the dispatch
        # outright (the server answers `internal` and lives on) ...
        faults.maybe_fail("server.dispatch")
        graph = parse_graph_text(request.graph_text)
        deadline = request.deadline
        if deadline is None:
            deadline = self.default_deadline
        # Armed now: queue time and cache time burn the request's budget.
        budget = Budget(deadline=deadline) if deadline is not None else None
        plan = faults.active_plan()
        if budget is not None and plan is not None and plan.starvation > 1:
            # ... or starve the request's budget (a machine `k` times
            # slower than the deadline was sized for), pushing solves
            # down the degradation ladder instead of past the deadline.
            budget = plan.starve(budget)
        if budget is not None:
            budget.start()

        method = request.method
        options = dict(request.options)
        working = graph.without_isolated_vertices()

        # Decompose + dedupe + consult the shared cache (loop thread).
        keys: list[tuple[str, CanonicalForm]] = []
        solved: dict[str, Any] = {}
        rep_forms: dict[str, CanonicalForm] = {}
        pending: dict[str, AnyGraph] = {}
        for vertex_set in component_vertex_sets(working):
            component = working.subgraph(vertex_set)
            form = canonical_form(component)
            key = cache_key(form, method, options)
            keys.append((key, form))
            if key in solved or key in pending:
                continue
            rep_forms[key] = form
            if self.cache is not None:
                hit, _token = self.cache.consult(component, method, options)
                if hit is not None:
                    solved[key] = hit
                    continue
            pending[key] = component

        cached_components = len(solved)
        tasks = list(pending.items())
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("server.components", len(keys))
            obs_metrics.inc("server.components.solved", len(tasks))

        # Fan the misses out — or solve inline when there is no pool.
        if tasks:
            jobs = self.pool.jobs if self.pool is not None else 1
            share = split_deadline(
                budget.remaining() if budget is not None else None,
                len(tasks),
                jobs,
            )
            if self.pool is None:
                # Inline on the loop thread — registry.solve directly, as
                # in solve_many's jobs=1 path (pool_mod.solve_task is
                # worker-only: it resets this process's collectors).  The
                # ambient cache is masked: it was consulted above.
                for key, component in tasks:
                    with use_cache(None):
                        solved[key] = registry_solve(
                            component,
                            method,
                            deadline=share,
                            memo_cap=self.memo_cap,
                            **options,
                        )
                    # Yield between inline solves so ping/stats requests
                    # on other connections stay responsive.
                    await asyncio.sleep(0)
            else:
                loop = asyncio.get_running_loop()
                payloads = [
                    pool_mod.SolveTask(
                        graph=component,
                        method=method,
                        options=options,
                        deadline=share,
                        memo_cap=self.memo_cap,
                        metrics_enabled=obs_metrics.METRICS.enabled,
                        trace=obs_context.current(),
                        trace_enabled=obs_trace.TRACER.enabled,
                    )
                    for _key, component in tasks
                ]
                # The whole batch goes through the self-healing
                # dispatcher on a harness thread: it blocks on worker
                # futures (collecting in submission order — deterministic
                # obs merging and reassembly, same rule as solve_many)
                # and survives killed workers by healing the shared pool
                # and re-dispatching only the lost tasks.  The loop
                # thread just awaits the batch, so other requests keep
                # interleaving.
                outcomes = await loop.run_in_executor(
                    None,
                    lambda: pool_mod.dispatch_resilient(
                        self.pool,
                        payloads,
                        keys=[key for key, _component in tasks],
                    ),
                )
                for (key, _component), outcome in zip(tasks, outcomes):
                    pool_mod.merge_observations(outcome)
                    solved[key] = outcome.result
            if self.cache is not None:
                for key, component in tasks:
                    self.cache.store(
                        CacheToken(
                            key=key, form=rep_forms[key], graph=component
                        ),
                        solved[key],
                    )

        result = assemble_components(
            graph,
            method,
            [
                rebind_result(solved[key], rep_forms[key], form)
                for key, form in keys
            ],
        )

        payload: dict[str, Any] = {
            "method": result.method,
            "effective_cost": result.effective_cost,
            "raw_cost": result.raw_cost,
            "jumps": result.jumps,
            "optimal": result.optimal,
            "status": result.status,
            "components": len(keys),
            "cached_components": cached_components,
            "solved_components": len(tasks),
        }
        if result.provenance is not None:
            payload["degradations"] = list(result.provenance.degradations)
        if request.op == OP_SOLVE:
            payload["scheme"] = [
                [str(a), str(b)] for a, b in result.scheme.configurations
            ]
        return payload


__all__ = ["Dispatcher", "parse_graph_text"]
