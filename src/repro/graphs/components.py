"""Connected components, Betti numbers, and disjoint unions.

The paper's effective cost ``π(G) = π̂(G) − β₀(G)`` subtracts the number of
connected components ``β₀`` (Def 2.2), and the additivity lemma (Lemma 2.2)
shows that disjoint join problems decompose.  These are the supporting
operations.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex

AnyGraph = Graph | BipartiteGraph


def _vertices(graph: AnyGraph) -> list[Vertex]:
    if isinstance(graph, BipartiteGraph):
        return graph.left + graph.right
    return graph.vertices


def component_vertex_sets(graph: AnyGraph) -> list[set[Vertex]]:
    """Vertex sets of the connected components, by BFS.

    Components are returned in order of their first vertex, so the output is
    deterministic for a deterministically-built graph.
    """
    seen: set[Vertex] = set()
    components: list[set[Vertex]] = []
    for start in _vertices(graph):
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        seen |= component
        components.append(component)
    return components


def connected_components(graph: AnyGraph) -> list[AnyGraph]:
    """The connected components as induced subgraphs of the same type."""
    return [graph.subgraph(vs) for vs in component_vertex_sets(graph)]


def betti_number(graph: AnyGraph, ignore_isolated: bool = True) -> int:
    """``β₀(G)``: the number of connected components (paper Def 2.2).

    By default isolated vertices are ignored, matching the paper's
    convention that they are removed a priori (§2); pass
    ``ignore_isolated=False`` to count them as singleton components.
    """
    components = component_vertex_sets(graph)
    if not ignore_isolated:
        return len(components)
    return sum(
        1
        for vs in components
        if any(graph.neighbors(v) for v in vs)
    )


def is_connected(graph: AnyGraph) -> bool:
    """True iff the graph has at most one connected component.

    An empty graph counts as connected.
    """
    return len(component_vertex_sets(graph)) <= 1


def disjoint_union(first: BipartiteGraph, second: BipartiteGraph) -> BipartiteGraph:
    """The disjoint union ``G ⊎ H`` of two bipartite graphs (Lemma 2.2).

    Vertices are tagged with 0/1 to guarantee disjointness: a vertex ``v`` of
    ``first`` becomes ``(0, v)`` and a vertex ``w`` of ``second`` becomes
    ``(1, w)``.
    """
    out = BipartiteGraph(
        left=[(0, v) for v in first.left] + [(1, v) for v in second.left],
        right=[(0, v) for v in first.right] + [(1, v) for v in second.right],
    )
    for u, v in first.edges():
        out.add_edge((0, u), (0, v))
    for u, v in second.edges():
        out.add_edge((1, u), (1, v))
    return out


def disjoint_union_many(graphs: Iterable[BipartiteGraph]) -> BipartiteGraph:
    """Disjoint union of arbitrarily many bipartite graphs.

    Vertex ``v`` of the ``i``-th input becomes ``(i, v)``.
    """
    out = BipartiteGraph()
    count = 0
    for index, graph in enumerate(graphs):
        count += 1
        for v in graph.left:
            out.add_left_vertex((index, v))
        for v in graph.right:
            out.add_right_vertex((index, v))
        for u, v in graph.edges():
            out.add_edge((index, u), (index, v))
    if count == 0:
        raise GraphError("disjoint_union_many needs at least one graph")
    return out
