"""Bipartite-graph generators for instances, workloads, and tests.

Vertex naming convention: left vertices are ``"u{i}"`` and right vertices are
``"v{j}"``; generators that combine blocks tag names with the block index.
Everything that is randomized takes a :class:`random.Random` instance (or a
seed), never touching the global RNG, so every instance is reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.errors import GraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import disjoint_union_many
from repro.graphs.simple import Graph


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def complete_bipartite(k: int, l: int) -> BipartiteGraph:
    """``K_{k,l}``: the join graph of one equijoin key group (Lemma 3.2)."""
    if k < 0 or l < 0:
        raise GraphError("side sizes must be non-negative")
    g = BipartiteGraph(
        left=[f"u{i}" for i in range(k)],
        right=[f"v{j}" for j in range(l)],
    )
    for i in range(k):
        for j in range(l):
            g.add_edge(f"u{i}", f"v{j}")
    return g


def matching_graph(m: int) -> BipartiteGraph:
    """A perfect matching with ``m`` edges (Lemma 2.4: ``π̂ = 2m``)."""
    g = BipartiteGraph()
    for i in range(m):
        g.add_edge(f"u{i}", f"v{i}")
    return g


def path_graph(m: int) -> BipartiteGraph:
    """A path with ``m`` edges (``m + 1`` vertices), alternating sides.

    Paths pebble perfectly: their line graphs are paths, hence Hamiltonian.
    """
    if m < 1:
        raise GraphError("path needs at least one edge")
    g = BipartiteGraph()
    names = [f"u{i // 2}" if i % 2 == 0 else f"v{i // 2}" for i in range(m + 1)]
    for a, b in zip(names, names[1:]):
        g.add_edge(*((a, b) if a.startswith("u") else (b, a)))
    return g


def cycle_graph(m: int) -> BipartiteGraph:
    """An even cycle with ``m`` edges (``m`` must be even and ≥ 4)."""
    if m < 4 or m % 2:
        raise GraphError("bipartite cycles need an even number ≥ 4 of edges")
    g = BipartiteGraph()
    half = m // 2
    for i in range(half):
        g.add_edge(f"u{i}", f"v{i}")
        g.add_edge(f"u{(i + 1) % half}", f"v{i}")
    return g


def star_graph(n: int) -> BipartiteGraph:
    """``K_{1,n}``: one left hub joined to ``n`` right leaves."""
    if n < 1:
        raise GraphError("star needs at least one leaf")
    g = BipartiteGraph(left=["u0"], right=[f"v{j}" for j in range(n)])
    for j in range(n):
        g.add_edge("u0", f"v{j}")
    return g


def double_star(a: int, b: int) -> BipartiteGraph:
    """Two stars with adjacent hubs: hub ``u0`` with ``a`` leaves, hub ``v0``
    with ``b`` leaves, plus the bridge edge ``(u0, v0)``.

    Its line graph is two cliques sharing a vertex — always traceable, so
    double stars pebble perfectly despite not being complete bipartite.
    """
    if a < 0 or b < 0:
        raise GraphError("leaf counts must be non-negative")
    g = BipartiteGraph(left=["u0"], right=["v0"])
    g.add_edge("u0", "v0")
    for j in range(a):
        g.add_edge("u0", f"v{j + 1}")
    for i in range(b):
        g.add_edge(f"u{i + 1}", "v0")
    return g


def union_of_bicliques(sizes: Sequence[tuple[int, int]]) -> BipartiteGraph:
    """A disjoint union of complete bipartite blocks.

    This is exactly the shape of an equijoin join graph (§3.1): one
    ``K_{k,l}`` per distinct join-key value with ``k`` matching tuples in
    ``R`` and ``l`` in ``S``.
    """
    if not sizes:
        raise GraphError("need at least one block")
    return disjoint_union_many(complete_bipartite(k, l) for k, l in sizes)


def random_bipartite_gnm(
    n_left: int,
    n_right: int,
    m: int,
    seed: int | random.Random | None = None,
) -> BipartiteGraph:
    """A uniform random bipartite graph with exactly ``m`` distinct edges."""
    if m > n_left * n_right:
        raise GraphError(f"cannot place {m} edges in a {n_left}x{n_right} grid")
    rng = _rng(seed)
    g = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        pair = (rng.randrange(n_left), rng.randrange(n_right))
        if pair not in chosen:
            chosen.add(pair)
            g.add_edge(f"u{pair[0]}", f"v{pair[1]}")
    return g


def random_bipartite_gnp(
    n_left: int,
    n_right: int,
    p: float,
    seed: int | random.Random | None = None,
) -> BipartiteGraph:
    """A random bipartite graph where each of the ``n_left · n_right``
    possible edges is present independently with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    rng = _rng(seed)
    g = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    for i in range(n_left):
        for j in range(n_right):
            if rng.random() < p:
                g.add_edge(f"u{i}", f"v{j}")
    return g


def random_connected_bipartite(
    n_left: int,
    n_right: int,
    extra_edges: int = 0,
    seed: int | random.Random | None = None,
) -> BipartiteGraph:
    """A connected random bipartite graph.

    Builds a random spanning tree over the two sides (guaranteeing
    connectivity) and then adds ``extra_edges`` random chords.  Useful for
    property tests of the connected-graph bounds (Cor 2.1, Thm 3.1).
    """
    if n_left < 1 or n_right < 1:
        raise GraphError("both sides need at least one vertex")
    rng = _rng(seed)
    g = BipartiteGraph(
        left=[f"u{i}" for i in range(n_left)],
        right=[f"v{j}" for j in range(n_right)],
    )
    # Random alternating spanning tree: attach each new vertex to a random
    # already-attached vertex on the opposite side.
    attached_left = [0]
    attached_right: list[int] = []
    pending = [("u", i) for i in range(1, n_left)] + [("v", j) for j in range(n_right)]
    rng.shuffle(pending)
    # Make sure the first right vertex can attach: force one right vertex first.
    pending.sort(key=lambda t: 0 if (t[0] == "v" and not attached_right) else 1)
    for side, idx in pending:
        if side == "u":
            j = rng.choice(attached_right)
            g.add_edge(f"u{idx}", f"v{j}")
            attached_left.append(idx)
        else:
            i = rng.choice(attached_left)
            g.add_edge(f"u{i}", f"v{idx}")
            attached_right.append(idx)
    capacity = n_left * n_right - g.num_edges
    for _ in range(min(extra_edges, capacity) * 4):
        if extra_edges <= 0:
            break
        i, j = rng.randrange(n_left), rng.randrange(n_right)
        if not g.has_edge(f"u{i}", f"v{j}"):
            g.add_edge(f"u{i}", f"v{j}")
            extra_edges -= 1
    return g


def spider_graph(n: int) -> BipartiteGraph:
    """The ``G_n`` shape of Fig 1(a): a star ``K_{1,n}`` with one pendant
    edge attached to each leaf; ``m = 2n`` edges.

    The canonical worst-case family lives in :mod:`repro.core.families`
    (with cost formulas); this generator provides just the graph.
    """
    if n < 1:
        raise GraphError("spider needs n >= 1")
    g = BipartiteGraph(left=["c"], right=[f"v{j}" for j in range(n)])
    for j in range(n):
        g.add_edge("c", f"v{j}")
        g.add_edge(f"w{j}", f"v{j}")  # pendant left vertex
    return g


def incidence_graph(graph: Graph) -> BipartiteGraph:
    """The vertex–edge incidence bipartite graph of a general graph.

    This is the map ``f`` of Theorem 4.4: nodes of ``graph`` on the left,
    edges of ``graph`` on the right, with an incidence edge whenever the
    vertex is an endpoint of the edge.  Edge vertices are labelled with the
    canonical edge tuples of ``graph``.
    """
    b = BipartiteGraph(left=graph.vertices, right=graph.edges())
    for edge in graph.edges():
        u, v = edge
        b.add_edge(u, edge)
        b.add_edge(v, edge)
    return b


def grid_graph(rows: int, cols: int) -> BipartiteGraph:
    """A ``rows × cols`` grid, a natural bipartite stress instance."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    g = BipartiteGraph()
    for r in range(rows):
        for c in range(cols):
            name = f"u{r}_{c}" if (r + c) % 2 == 0 else f"v{r}_{c}"
            if (r + c) % 2 == 0:
                g.add_left_vertex(name)
            else:
                g.add_right_vertex(name)
    for r in range(rows):
        for c in range(cols):
            here = f"{'u' if (r + c) % 2 == 0 else 'v'}{r}_{c}"
            if c + 1 < cols:
                right = f"{'u' if (r + c + 1) % 2 == 0 else 'v'}{r}_{c + 1}"
                g.add_edge(*((here, right) if here.startswith("u") else (right, here)))
            if r + 1 < rows:
                below = f"{'u' if (r + 1 + c) % 2 == 0 else 'v'}{r + 1}_{c}"
                g.add_edge(*((here, below) if here.startswith("u") else (below, here)))
    return g


def random_tsp12_graph(
    n: int,
    max_degree: int,
    seed: int | random.Random | None = None,
    edge_factor: float = 1.3,
) -> Graph:
    """A random general graph with bounded degree, i.e. the weight-1 edge set
    of a TSP-k(1,2) instance (paper §4).

    ``edge_factor · n`` edge insertions are attempted; insertions that would
    exceed ``max_degree`` at an endpoint are skipped.  The result may be
    disconnected — TSP(1,2) instances need not be connected.
    """
    if max_degree < 1:
        raise GraphError("max_degree must be positive")
    rng = _rng(seed)
    g = Graph(vertices=range(n))
    attempts = int(edge_factor * n) + n
    for _ in range(attempts):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        if g.degree(u) >= max_degree or g.degree(v) >= max_degree:
            continue
        g.add_edge(u, v)
    return g


def all_small_bipartite_graphs(
    n_left: int, n_right: int, min_edges: int = 1
) -> Iterable[BipartiteGraph]:
    """Every bipartite graph on fixed labelled sides (for exhaustive tests).

    There are ``2^(n_left · n_right)`` of them, so keep the sides tiny
    (``n_left · n_right ≤ 12`` or so).
    """
    cells = [(i, j) for i in range(n_left) for j in range(n_right)]
    total = len(cells)
    for mask in range(1 << total):
        if mask.bit_count() < min_edges:
            continue
        g = BipartiteGraph(
            left=[f"u{i}" for i in range(n_left)],
            right=[f"v{j}" for j in range(n_right)],
        )
        for bit, (i, j) in enumerate(cells):
            if mask >> bit & 1:
                g.add_edge(f"u{i}", f"v{j}")
        yield g
