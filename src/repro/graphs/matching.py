"""Matchings: Hopcroft–Karp on bipartite graphs, greedy on general graphs.

Matchings appear in three places in this reproduction:

- Lemma 2.4 identifies matchings as the pebbling-cost extreme among
  disconnected graphs (``π̂ = 2m``);
- the matching-based TSP(1,2) heuristic
  (:mod:`repro.core.solvers.matching_stitch`) seeds path fragments from a
  matching of the line graph, in the spirit of the Papadimitriou–Yannakakis
  approximation the paper cites;
- workload analysis uses maximum matchings to characterize join graphs.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex, normalize_edge

_INFINITY = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> dict[Vertex, Vertex]:
    """Maximum matching of a bipartite graph via Hopcroft–Karp.

    Returns a symmetric dict: if ``u`` is matched to ``v`` then both
    ``result[u] == v`` and ``result[v] == u``.  Runs in ``O(E sqrt(V))``.
    """
    match_left: dict[Vertex, Vertex | None] = {u: None for u in graph.left}
    match_right: dict[Vertex, Vertex | None] = {v: None for v in graph.right}
    distance: dict[Vertex | None, float] = {}

    def bfs() -> bool:
        queue: deque[Vertex] = deque()
        for u in graph.left:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        distance[None] = _INFINITY
        while queue:
            u = queue.popleft()
            if distance[u] < distance[None]:
                for v in graph.neighbors(u):
                    mate = match_right[v]
                    if distance.get(mate, _INFINITY) == _INFINITY:
                        distance[mate] = distance[u] + 1
                        if mate is not None:
                            queue.append(mate)
        return distance[None] != _INFINITY

    def dfs(u: Vertex) -> bool:
        for v in graph.neighbors(u):
            mate = match_right[v]
            if mate is None or (
                distance.get(mate) == distance[u] + 1 and dfs(mate)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INFINITY
        return False

    while bfs():
        for u in graph.left:
            if match_left[u] is None:
                dfs(u)

    matching: dict[Vertex, Vertex] = {}
    for u, v in match_left.items():
        if v is not None:
            matching[u] = v
            matching[v] = u
    return matching


def maximum_matching_size(graph: BipartiteGraph) -> int:
    """The number of edges in a maximum matching."""
    return len(hopcroft_karp(graph)) // 2


def greedy_maximal_matching(graph: Graph) -> list[tuple[Vertex, Vertex]]:
    """A maximal (not necessarily maximum) matching of a general graph.

    Edges are scanned in order of increasing minimum endpoint degree, which
    empirically leaves fewer exposed vertices than arbitrary order.  Used as
    the seed for the matching-stitch pebbling heuristic.
    """
    degree = {v: graph.degree(v) for v in graph.vertices}
    edges = sorted(
        graph.edges(),
        key=lambda e: (min(degree[e[0]], degree[e[1]]), repr(e)),
    )
    matched: set[Vertex] = set()
    matching: list[tuple[Vertex, Vertex]] = []
    for u, v in edges:
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            matching.append((u, v))
    return matching


def improve_matching(
    graph: Graph, matching: list[tuple[Vertex, Vertex]], max_rounds: int = 4
) -> list[tuple[Vertex, Vertex]]:
    """Grow a matching by simple augmenting-path search (no blossoms).

    This is a heuristic improvement for *general* graphs: it looks for
    alternating paths between exposed vertices, ignoring odd-cycle
    (blossom) structure, so it may miss some augmenting paths but never
    returns a smaller matching.  For bipartite inputs it finds a maximum
    matching (no blossoms exist there).
    """
    matched: dict[Vertex, Vertex] = {}
    for u, v in matching:
        matched[u] = v
        matched[v] = u

    def find_augmenting(start: Vertex) -> list[Vertex] | None:
        # BFS over alternating paths; even-level vertices are reached via a
        # matched edge (or are the start).
        parent: dict[Vertex, Vertex | None] = {start: None}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v in parent:
                    continue
                mate = matched.get(v)
                if mate is None:
                    # Augmenting path found; reconstruct it.
                    path = [v, u]
                    current = parent[u]
                    while current is not None:
                        path.append(current)
                        current = parent[current]
                    path.reverse()
                    return path
                if mate not in parent:
                    parent[v] = u
                    parent[mate] = v
                    queue.append(mate)
        return None

    for _ in range(max_rounds):
        exposed = [v for v in graph.vertices if v not in matched]
        augmented = False
        for start in exposed:
            if start in matched:
                continue
            path = find_augmenting(start)
            if path is None:
                continue
            # Flip matched/unmatched status along the path.
            for i in range(0, len(path) - 1, 2):
                matched[path[i]] = path[i + 1]
                matched[path[i + 1]] = path[i]
            augmented = True
        if not augmented:
            break

    seen: set[tuple[Vertex, Vertex]] = set()
    for u, v in matched.items():
        seen.add(normalize_edge(u, v))
    return sorted(seen, key=repr)
