"""Graph substrate used by the pebbling model.

This subpackage is a small, self-contained graph library providing exactly
the structures the paper's model needs:

- :class:`~repro.graphs.simple.Graph` — a general undirected graph, used for
  line graphs ``L(G)``, TSP(1,2) instances, and hardness gadgets.
- :class:`~repro.graphs.bipartite.BipartiteGraph` — the *join graph* of a
  join problem instance (paper §2).
- connected components and the 0th Betti number (paper Def 2.2),
- line-graph construction and claw-freeness (paper §2.2),
- maximum matchings, Hamiltonian-path search, generators and serialization.

``networkx`` is deliberately *not* used here; the test-suite uses it only as
an independent oracle to cross-check this implementation.
"""

from repro.graphs.simple import Graph
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import (
    betti_number,
    connected_components,
    disjoint_union,
    is_connected,
)
from repro.graphs.line_graph import is_claw_free, line_graph
from repro.graphs.matching import greedy_maximal_matching, hopcroft_karp
from repro.graphs.hamiltonian import (
    find_hamiltonian_path,
    has_hamiltonian_path,
    hamiltonian_path_endpoints,
)

__all__ = [
    "Graph",
    "BipartiteGraph",
    "betti_number",
    "connected_components",
    "disjoint_union",
    "is_connected",
    "line_graph",
    "is_claw_free",
    "hopcroft_karp",
    "greedy_maximal_matching",
    "find_hamiltonian_path",
    "has_hamiltonian_path",
    "hamiltonian_path_endpoints",
]
