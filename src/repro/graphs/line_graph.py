"""Line graphs and the weighted completion used by the TSP view (paper §2.2).

The line graph ``L(G)`` has one node per edge of ``G``; two nodes are
adjacent iff the corresponding edges of ``G`` share an endpoint.  A pebbling
scheme moves from edge to edge, so a scheme is a walk over the nodes of
``L(G)``; viewing ``L(G)`` as a complete graph with weight 1 on its edges
("good") and weight 2 on non-edges ("bad"), the optimal pebbling cost is a
minimum-cost travelling-salesman *path* (Prop 2.2).

Line graphs of connected graphs are connected and claw-free (Harary), which
Theorem 3.1 relies on; :func:`is_claw_free` verifies the property.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph

AnyGraph = Graph | BipartiteGraph

# A node of L(G) is an edge of G in canonical orientation.  For a bipartite
# G this is the (left, right) tuple; for a plain Graph the normalized tuple.
LineNode = tuple


def graph_edge_list(graph: AnyGraph) -> list[LineNode]:
    """The canonical edge list of either graph type."""
    return list(graph.edges())


def line_graph(graph: AnyGraph) -> Graph:
    """Construct ``L(G)``.

    Nodes of the result are the canonical edge tuples of ``graph``.  The
    construction is O(sum of deg² ) — it groups edges by shared endpoint
    rather than testing all edge pairs.
    """
    edges = graph_edge_list(graph)
    lg = Graph(vertices=edges)
    # Group the edges by endpoint; every pair within a group is adjacent.
    by_endpoint: dict[object, list[LineNode]] = {}
    for edge in edges:
        u, v = edge
        by_endpoint.setdefault(u, []).append(edge)
        by_endpoint.setdefault(v, []).append(edge)
    for incident in by_endpoint.values():
        for e1, e2 in combinations(incident, 2):
            lg.add_edge(e1, e2)
    return lg


def is_claw_free(graph: Graph) -> bool:
    """True iff ``graph`` has no induced ``K_{1,3}`` (claw).

    Checked directly from the definition: for every vertex, no three pairwise
    non-adjacent neighbors exist.  Cost is O(Σ deg³) which is fine for the
    line graphs this library builds.
    """
    for center in graph.vertices:
        neighbors = sorted(graph.neighbors(center), key=repr)
        for a, b, c in combinations(neighbors, 3):
            if (
                not graph.has_edge(a, b)
                and not graph.has_edge(a, c)
                and not graph.has_edge(b, c)
            ):
                return False
    return True


def tsp_weight(line: Graph, a: LineNode, b: LineNode) -> int:
    """Weight of the pair ``{a, b}`` in the completed line graph: 1 if the
    two underlying edges share an endpoint ("good"), else 2 ("bad")."""
    return line.complement_weight(a, b)


def good_degree(line: Graph, node: LineNode) -> int:
    """The number of weight-1 (good) edges at ``node`` in the completion.

    This is simply the node's degree in ``L(G)`` and drives the deficiency
    lower bound (Theorem 3.3's counting argument generalized).
    """
    return line.degree(node)
