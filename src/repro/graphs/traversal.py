"""Graph traversal: BFS, DFS, DFS trees, and bipartiteness checking.

The 1.25-approximation of Theorem 3.1 is built on a rooted DFS tree of the
line graph, so DFS trees here carry explicit parent/children structure and
subtree-size bookkeeping that the solver manipulates (twin elimination and
path peeling rewire the tree in place).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.errors import GraphError, NotBipartiteError, VertexError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex

AnyGraph = Graph | BipartiteGraph


def bfs_order(graph: AnyGraph, start: Vertex) -> list[Vertex]:
    """Vertices reachable from ``start`` in breadth-first order."""
    if not _has_vertex(graph, start):
        raise VertexError(f"vertex {start!r} does not exist")
    order = [start]
    seen = {start}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def dfs_order(graph: AnyGraph, start: Vertex) -> list[Vertex]:
    """Vertices reachable from ``start`` in depth-first (preorder) order."""
    if not _has_vertex(graph, start):
        raise VertexError(f"vertex {start!r} does not exist")
    order: list[Vertex] = []
    seen: set[Vertex] = set()
    stack = [start]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        order.append(current)
        for neighbor in sorted(graph.neighbors(current), key=repr, reverse=True):
            if neighbor not in seen:
                stack.append(neighbor)
    return order


def _has_vertex(graph: AnyGraph, vertex: Vertex) -> bool:
    if isinstance(graph, BipartiteGraph):
        return graph.has_vertex(vertex)
    return graph.has_vertex(vertex)


class RootedTree:
    """A rooted tree with mutable parent/children structure.

    Used by the Theorem 3.1 approximation, which starts from a DFS tree of
    ``L(G)`` and then rewires it (twin elimination) and peels subtrees from
    it (path chunking).  The tree is *not* tied to a graph: rewiring steps
    are validated by the caller against the underlying graph's adjacency.
    """

    def __init__(self, root: Vertex) -> None:
        self.root = root
        self._parent: dict[Vertex, Vertex | None] = {root: None}
        self._children: dict[Vertex, list[Vertex]] = {root: []}

    # -- construction ---------------------------------------------------
    def add_child(self, parent: Vertex, child: Vertex) -> None:
        if parent not in self._parent:
            raise VertexError(f"parent {parent!r} not in tree")
        if child in self._parent:
            raise GraphError(f"node {child!r} already in tree")
        self._parent[child] = parent
        self._children[parent].append(child)
        self._children[child] = []

    # -- queries ----------------------------------------------------------
    def parent(self, node: Vertex) -> Vertex | None:
        return self._parent[node]

    def children(self, node: Vertex) -> list[Vertex]:
        return list(self._children[node])

    def nodes(self) -> list[Vertex]:
        return list(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: Vertex) -> bool:
        return node in self._parent

    def is_leaf(self, node: Vertex) -> bool:
        return not self._children[node]

    def leaves(self) -> list[Vertex]:
        return [node for node in self._parent if not self._children[node]]

    def subtree_nodes(self, node: Vertex) -> list[Vertex]:
        """All nodes of the subtree rooted at ``node`` (preorder)."""
        out = []
        stack = [node]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children[current]))
        return out

    def subtree_sizes(self) -> dict[Vertex, int]:
        """Subtree size (including the node itself) for every node."""
        sizes: dict[Vertex, int] = {}
        for node in reversed(self._preorder()):
            sizes[node] = 1 + sum(sizes[c] for c in self._children[node])
        return sizes

    def depth(self, node: Vertex) -> int:
        d = 0
        current = self._parent[node]
        while current is not None:
            d += 1
            current = self._parent[current]
        return d

    def _preorder(self) -> list[Vertex]:
        return self.subtree_nodes(self.root)

    def max_children(self) -> int:
        if not self._children:
            return 0
        return max(len(c) for c in self._children.values())

    # -- rewiring (used by twin elimination) ------------------------------
    def reattach(self, node: Vertex, new_parent: Vertex) -> None:
        """Move ``node`` (with its whole subtree) under ``new_parent``.

        The caller is responsible for ensuring the corresponding graph edge
        exists and that ``new_parent`` is not inside ``node``'s subtree.
        """
        if node == self.root:
            raise GraphError("cannot reattach the root")
        if new_parent in self.subtree_nodes(node):
            raise GraphError("new parent lies inside the moved subtree")
        old_parent = self._parent[node]
        assert old_parent is not None
        self._children[old_parent].remove(node)
        self._parent[node] = new_parent
        self._children[new_parent].append(node)

    def remove_subtree(self, node: Vertex) -> list[Vertex]:
        """Delete the subtree rooted at ``node``; return the removed nodes."""
        removed = self.subtree_nodes(node)
        if node == self.root:
            self._parent.clear()
            self._children.clear()
            return removed
        parent = self._parent[node]
        assert parent is not None
        self._children[parent].remove(node)
        for v in removed:
            del self._parent[v]
            del self._children[v]
        return removed


def dfs_tree(graph: AnyGraph, root: Vertex) -> RootedTree:
    """A rooted DFS tree of the component containing ``root``.

    Iterative DFS; neighbor order is sorted by ``repr`` for determinism.
    """
    if not _has_vertex(graph, root):
        raise VertexError(f"vertex {root!r} does not exist")
    tree = RootedTree(root)
    # Stack of (node, iterator over its sorted neighbors).
    stack: list[tuple[Vertex, Iterator[Vertex]]] = [
        (root, iter(sorted(graph.neighbors(root), key=repr)))
    ]
    while stack:
        node, neighbors = stack[-1]
        advanced = False
        for neighbor in neighbors:
            if neighbor not in tree:
                tree.add_child(node, neighbor)
                stack.append(
                    (neighbor, iter(sorted(graph.neighbors(neighbor), key=repr)))
                )
                advanced = True
                break
        if not advanced:
            stack.pop()
    return tree


def two_coloring(graph: Graph) -> tuple[set[Vertex], set[Vertex]]:
    """A proper 2-coloring of ``graph``, or raise ``NotBipartiteError``.

    Used to recover a bipartition from a plain :class:`Graph`, e.g. when a
    generator produces an abstract graph that must be interpreted as a join
    graph.
    """
    color: dict[Vertex, int] = {}
    for start in graph.vertices:
        if start in color:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in color:
                    color[neighbor] = 1 - color[current]
                    queue.append(neighbor)
                elif color[neighbor] == color[current]:
                    raise NotBipartiteError(
                        f"odd cycle through edge {current!r}-{neighbor!r}"
                    )
    left = {v for v, c in color.items() if c == 0}
    right = {v for v, c in color.items() if c == 1}
    return left, right


def as_bipartite(graph: Graph) -> BipartiteGraph:
    """Interpret a 2-colorable :class:`Graph` as a :class:`BipartiteGraph`."""
    left, right = two_coloring(graph)
    out = BipartiteGraph(left=sorted(left, key=repr), right=sorted(right, key=repr))
    for u, v in graph.edges():
        if u in left:
            out.add_edge(u, v)
        else:
            out.add_edge(v, u)
    return out
