"""Serialization of graphs to and from a small text format.

The format is line-oriented and human-editable:

.. code-block:: text

    # bipartite
    L u0 u1 u2
    R v0 v1
    E u0 v0
    E u1 v0
    E u2 v1

``L``/``R`` lines declare vertices (so isolated vertices survive a round
trip); ``E`` lines declare edges.  Plain graphs use ``V`` instead of
``L``/``R``.  Vertex names may not contain whitespace.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph


def _checked(name) -> str:
    text = str(name)
    if any(c.isspace() for c in text):
        raise GraphError(
            f"vertex name {text!r} contains whitespace and cannot be "
            "serialized; relabel the graph first"
        )
    return text


def dump_bipartite(graph: BipartiteGraph) -> str:
    """Serialize a bipartite graph; inverse of :func:`load_bipartite`.

    Vertex names must be whitespace-free once stringified (relabel graphs
    with tuple vertices before dumping).
    """
    lines = ["# bipartite"]
    if graph.left:
        lines.append("L " + " ".join(_checked(v) for v in graph.left))
    if graph.right:
        lines.append("R " + " ".join(_checked(v) for v in graph.right))
    for u, v in graph.edges():
        lines.append(f"E {_checked(u)} {_checked(v)}")
    return "\n".join(lines) + "\n"


def load_bipartite(text: str) -> BipartiteGraph:
    """Parse the output of :func:`dump_bipartite`.

    Vertex names are restored as strings.
    """
    graph = BipartiteGraph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tag, *fields = line.split()
        if tag == "L":
            for name in fields:
                graph.add_left_vertex(name)
        elif tag == "R":
            for name in fields:
                graph.add_right_vertex(name)
        elif tag == "E":
            if len(fields) != 2:
                raise GraphError(f"line {lineno}: E needs two vertex names")
            graph.add_edge(fields[0], fields[1])
        else:
            raise GraphError(f"line {lineno}: unknown tag {tag!r}")
    return graph


def dump_graph(graph: Graph) -> str:
    """Serialize a plain graph; inverse of :func:`load_graph`."""
    lines = ["# graph"]
    if graph.vertices:
        lines.append("V " + " ".join(_checked(v) for v in graph.vertices))
    for u, v in graph.edges():
        lines.append(f"E {_checked(u)} {_checked(v)}")
    return "\n".join(lines) + "\n"


def load_graph(text: str) -> Graph:
    """Parse the output of :func:`dump_graph` (vertex names as strings)."""
    graph = Graph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tag, *fields = line.split()
        if tag == "V":
            for name in fields:
                graph.add_vertex(name)
        elif tag == "E":
            if len(fields) != 2:
                raise GraphError(f"line {lineno}: E needs two vertex names")
            graph.add_edge(fields[0], fields[1])
        else:
            raise GraphError(f"line {lineno}: unknown tag {tag!r}")
    return graph
