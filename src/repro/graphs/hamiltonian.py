"""Exact Hamiltonian-path search.

Proposition 2.1 states that a connected graph ``G`` has a *perfect* pebbling
scheme (``π(G) = m``) iff its line graph ``L(G)`` has a Hamiltonian path, so
exact Hamiltonian-path detection is the ground truth for perfect-pebbling
questions.  It is also used to certify the diamond gadget of Fig 2, whose
defining properties quantify over all Hamiltonian paths.

Two engines are provided:

- a bitmask dynamic program (Held–Karp style) in ``O(2^n · n²)``, best for
  decision/optimization up to ``n ≈ 20``;
- a backtracking enumerator that can stream *all* Hamiltonian paths (used by
  gadget certification, where the per-endpoint question matters).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InstanceTooLargeError
from repro.graphs.simple import Graph, Vertex

_DP_LIMIT = 22


def _index_graph(graph: Graph) -> tuple[list[Vertex], list[int]]:
    """Map vertices to indices and adjacency to bitmasks."""
    vertices = sorted(graph.vertices, key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = [0] * len(vertices)
    for u, v in graph.edges():
        adjacency[index[u]] |= 1 << index[v]
        adjacency[index[v]] |= 1 << index[u]
    return vertices, adjacency


def has_hamiltonian_path(graph: Graph) -> bool:
    """Decide whether ``graph`` has a Hamiltonian path."""
    return find_hamiltonian_path(graph) is not None


def find_hamiltonian_path(
    graph: Graph,
    start: Vertex | None = None,
    end: Vertex | None = None,
) -> list[Vertex] | None:
    """Find a Hamiltonian path, optionally pinning one or both endpoints.

    Returns the vertex sequence or ``None``.  Uses the bitmask DP; raises
    :class:`~repro.errors.InstanceTooLargeError` beyond ``n = 22`` vertices
    (use the pebbling branch-and-bound solver for larger line graphs).
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if n == 1:
        only = graph.vertices[0]
        if (start is not None and start != only) or (end is not None and end != only):
            return None
        return [only]
    if n > _DP_LIMIT:
        raise InstanceTooLargeError(
            f"Hamiltonian DP limited to {_DP_LIMIT} vertices, got {n}"
        )
    vertices, adjacency = _index_graph(graph)
    index = {v: i for i, v in enumerate(vertices)}
    if start is not None and start not in index:
        return None
    if end is not None and end not in index:
        return None

    start_idx = index[start] if start is not None else None
    end_idx = index[end] if end is not None else None
    full = (1 << n) - 1

    # reachable[mask] = bitmask of vertices v such that some path visiting
    # exactly `mask` ends at v.
    reachable = [0] * (1 << n)
    if start_idx is None:
        for i in range(n):
            reachable[1 << i] = 1 << i
    else:
        reachable[1 << start_idx] = 1 << start_idx

    order = sorted(range(1, 1 << n), key=lambda m: m.bit_count())
    for mask in order:
        ends = reachable[mask]
        if not ends:
            continue
        remaining = ends
        while remaining:
            low = remaining & (-remaining)
            remaining ^= low
            v = low.bit_length() - 1
            extensions = adjacency[v] & ~mask
            while extensions:
                bit = extensions & (-extensions)
                extensions ^= bit
                reachable[mask | bit] |= bit

    final_ends = reachable[full]
    if end_idx is not None:
        final_ends &= 1 << end_idx
    if not final_ends:
        return None

    # Reconstruct one path by walking backwards through the DP.
    last = (final_ends & -final_ends).bit_length() - 1
    path_indices = [last]
    mask = full
    while mask.bit_count() > 1:
        prev_mask = mask ^ (1 << last)
        candidates = reachable[prev_mask] & adjacency[last]
        assert candidates, "DP reconstruction invariant violated"
        prev = (candidates & -candidates).bit_length() - 1
        path_indices.append(prev)
        mask = prev_mask
        last = prev
    path_indices.reverse()
    path = [vertices[i] for i in path_indices]
    if start is not None and path[0] != start:
        path.reverse()
    return path


def hamiltonian_path_endpoints(graph: Graph) -> set[Vertex]:
    """All vertices that are an endpoint of *some* Hamiltonian path.

    The diamond gadget of Fig 2 requires that every Hamiltonian path starts
    and ends at corner nodes — i.e. that this set contains no central node.
    Uses the same DP table as :func:`find_hamiltonian_path` (endpoint set is
    the reachable set of the full mask, over all start vertices), so the
    whole question is answered in one ``O(2^n n²)`` sweep.
    """
    n = graph.num_vertices
    if n == 0:
        return set()
    if n > _DP_LIMIT:
        raise InstanceTooLargeError(
            f"Hamiltonian DP limited to {_DP_LIMIT} vertices, got {n}"
        )
    vertices, adjacency = _index_graph(graph)
    full = (1 << n) - 1
    reachable = [0] * (1 << n)
    for i in range(n):
        reachable[1 << i] = 1 << i
    order = sorted(range(1, 1 << n), key=lambda m: m.bit_count())
    for mask in order:
        ends = reachable[mask]
        if not ends:
            continue
        remaining = ends
        while remaining:
            low = remaining & (-remaining)
            remaining ^= low
            v = low.bit_length() - 1
            extensions = adjacency[v] & ~mask
            while extensions:
                bit = extensions & (-extensions)
                extensions ^= bit
                reachable[mask | bit] |= bit
    ends = reachable[full]
    result: set[Vertex] = set()
    i = 0
    while ends:
        if ends & 1:
            result.add(vertices[i])
        ends >>= 1
        i += 1
    return result


def enumerate_hamiltonian_paths(
    graph: Graph, start: Vertex | None = None
) -> Iterator[list[Vertex]]:
    """Yield every Hamiltonian path (each undirected path once).

    Backtracking enumeration; exponential, intended for gadget-sized graphs
    (``n ≤ 12``).  To avoid yielding each path twice (once per direction),
    paths are emitted only when the first endpoint sorts at or before the
    last endpoint — unless ``start`` pins the first endpoint.
    """
    vertices = sorted(graph.vertices, key=repr)
    n = len(vertices)
    if n == 0:
        return
    starts = [start] if start is not None else vertices

    path: list[Vertex] = []
    visited: set[Vertex] = set()

    def backtrack() -> Iterator[list[Vertex]]:
        if len(path) == n:
            if start is not None or repr(path[0]) <= repr(path[-1]):
                yield list(path)
            return
        current = path[-1]
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor in visited:
                continue
            path.append(neighbor)
            visited.add(neighbor)
            yield from backtrack()
            path.pop()
            visited.remove(neighbor)

    for first in starts:
        path.append(first)
        visited.add(first)
        yield from backtrack()
        path.pop()
        visited.remove(first)
