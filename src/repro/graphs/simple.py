"""A general undirected graph.

The pebbling model of the paper lives on two kinds of graphs: the bipartite
*join graph* ``G`` and its *line graph* ``L(G)``, which is not bipartite.
TSP(1,2) instances (paper §4) and the diamond gadget (Fig 2) are also plain
undirected graphs.  This module provides the shared representation.

Vertices may be any hashable objects.  Edges are unordered pairs of distinct
vertices; parallel edges and self-loops are rejected, matching the paper's
setting (a join graph never needs either).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import EdgeError, GraphError, VertexError

Vertex = Hashable
Edge = tuple[Any, Any]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    Canonical means the two endpoints are sorted by their ``repr`` (falling
    back to ``repr`` keeps arbitrary vertex types comparable), so an edge has
    exactly one tuple form regardless of insertion order.
    """
    if u == v:
        raise EdgeError(f"self-loops are not allowed: {u!r}")
    try:
        smaller_first = u < v  # type: ignore[operator]
    except TypeError:
        smaller_first = repr(u) < repr(v)
    if smaller_first:
        return (u, v)
    return (v, u)


class Graph:
    """A simple undirected graph over hashable vertices.

    The class is mutable during construction (``add_vertex`` / ``add_edge``)
    and is otherwise used as a value: equality compares vertex and edge sets,
    and :meth:`copy` produces an independent instance.

    Example
    -------
    >>> g = Graph()
    >>> g.add_edge("a", "b")
    >>> g.add_edge("b", "c")
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    >>> g.num_edges
    2
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._adjacency: dict[Vertex, set[Vertex]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the graph (a no-op if already present)."""
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Adding an edge that already exists is a no-op; self-loops raise
        :class:`~repro.errors.EdgeError`.
        """
        if u == v:
            raise EdgeError(f"self-loops are not allowed: {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise if it does not exist."""
        if not self.has_edge(u, v):
            raise EdgeError(f"edge {u!r}-{v!r} does not exist")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and every edge incident to it."""
        if vertex not in self._adjacency:
            raise VertexError(f"vertex {vertex!r} does not exist")
        for neighbor in self._adjacency[vertex]:
            self._adjacency[neighbor].discard(vertex)
        del self._adjacency[vertex]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> list[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adjacency)

    @property
    def num_vertices(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def edges(self) -> list[Edge]:
        """All edges, each reported once in canonical orientation."""
        seen: set[Edge] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                seen.add(normalize_edge(u, v))
        return sorted(seen, key=repr)

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, vertex: Vertex) -> set[Vertex]:
        """The (copied) neighbor set of ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexError(f"vertex {vertex!r} does not exist")
        return set(self._adjacency[vertex])

    def degree(self, vertex: Vertex) -> int:
        if vertex not in self._adjacency:
            raise VertexError(f"vertex {vertex!r} does not exist")
        return len(self._adjacency[vertex])

    def max_degree(self) -> int:
        """The maximum vertex degree (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def isolated_vertices(self) -> list[Vertex]:
        """Vertices with no incident edge.

        The paper removes these a priori: "we will remove a priori all
        isolated vertices" (§2), because the pebble game deals only with the
        edge set.
        """
        return [v for v, nbrs in self._adjacency.items() if not nbrs]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        clone._adjacency = {v: set(nbrs) for v, nbrs in self._adjacency.items()}
        return clone

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by the vertex set ``keep``."""
        keep_set = set(keep)
        missing = keep_set - set(self._adjacency)
        if missing:
            raise VertexError(f"vertices not in graph: {sorted(map(repr, missing))}")
        sub = Graph(vertices=keep_set)
        for u in keep_set:
            for v in self._adjacency[u]:
                if v in keep_set:
                    sub.add_edge(u, v)
        return sub

    def without_isolated_vertices(self) -> "Graph":
        """A copy with every isolated vertex dropped (paper §2)."""
        keep = [v for v, nbrs in self._adjacency.items() if nbrs]
        return self.subgraph(keep)

    def relabeled(self, mapping: dict[Vertex, Vertex]) -> "Graph":
        """A copy with vertices renamed through ``mapping``.

        Every vertex must appear in ``mapping`` and the mapping must be
        injective, otherwise :class:`~repro.errors.GraphError` is raised.
        """
        if set(mapping) != set(self._adjacency):
            raise GraphError("mapping must cover exactly the vertex set")
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("mapping must be injective")
        out = Graph(vertices=mapping.values())
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        return out

    def complement_weight(self, u: Vertex, v: Vertex) -> int:
        """The TSP(1,2) weight of the pair ``{u, v}``: 1 if the edge is
        present ("good"), 2 otherwise ("bad").

        This is the weighted completion of §2.2: "The weight between two
        nodes is set to one if there is an edge between them and two,
        otherwise."
        """
        if u == v:
            raise EdgeError("weight undefined for identical endpoints")
        return 1 if self.has_edge(u, v) else 2

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            set(self._adjacency) == set(other._adjacency)
            and set(self.edges()) == set(other.edges())
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are not dict keys
        raise TypeError("Graph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
