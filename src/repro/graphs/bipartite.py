"""Bipartite join graphs (paper §2).

An instance of a join problem over relations ``R`` and ``S`` is modelled as a
bipartite graph ``G = (R, S, E)`` with one vertex per tuple and an edge for
every pair of tuples that satisfies the join predicate.  The pebble game is
played on this graph, so :class:`BipartiteGraph` is the central input type of
the whole library.

Left vertices conventionally correspond to tuples of ``R`` and right vertices
to tuples of ``S``.  The two sides must be disjoint label sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import EdgeError, GraphError, VertexError
from repro.graphs.simple import Graph, Vertex

JoinEdge = tuple[Any, Any]


class BipartiteGraph:
    """A bipartite graph with explicit left/right partitions.

    Edges are stored left-to-right: :meth:`edges` yields ``(u, v)`` with
    ``u`` on the left side and ``v`` on the right side, which is also the
    canonical form used by pebbling schemes.

    Example
    -------
    >>> g = BipartiteGraph(left=["r1", "r2"], right=["s1"])
    >>> g.add_edge("r1", "s1")
    >>> g.add_edge("r2", "s1")
    >>> g.num_edges
    2
    >>> g.is_complete_bipartite()
    True
    """

    def __init__(
        self,
        left: Iterable[Vertex] = (),
        right: Iterable[Vertex] = (),
        edges: Iterable[tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._left: dict[Vertex, set[Vertex]] = {}
        self._right: dict[Vertex, set[Vertex]] = {}
        for vertex in left:
            self.add_left_vertex(vertex)
        for vertex in right:
            self.add_right_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_left_vertex(self, vertex: Vertex) -> None:
        if vertex in self._right:
            raise GraphError(f"vertex {vertex!r} is already on the right side")
        self._left.setdefault(vertex, set())

    def add_right_vertex(self, vertex: Vertex) -> None:
        if vertex in self._left:
            raise GraphError(f"vertex {vertex!r} is already on the left side")
        self._right.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``(u, v)`` with ``u`` on the left and ``v`` on the right.

        Unknown endpoints are created on the appropriate side.  Passing two
        vertices from the same side raises :class:`~repro.errors.GraphError`.
        """
        if u in self._right or v in self._left:
            if u in self._left or v in self._right:
                raise GraphError(
                    f"edge ({u!r}, {v!r}) connects vertices on the same side"
                )
            u, v = v, u  # caller supplied (right, left); normalize
        self.add_left_vertex(u)
        self.add_right_vertex(v)
        self._left[u].add(v)
        self._right[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``(u, v)``; raises if absent."""
        if not self.has_edge(u, v):
            raise EdgeError(f"edge ({u!r}, {v!r}) does not exist")
        if u in self._right:
            u, v = v, u
        self._left[u].discard(v)
        self._right[v].discard(u)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def left(self) -> list[Vertex]:
        """Left-side vertices (relation ``R``), in insertion order."""
        return list(self._left)

    @property
    def right(self) -> list[Vertex]:
        """Right-side vertices (relation ``S``), in insertion order."""
        return list(self._right)

    @property
    def num_vertices(self) -> int:
        return len(self._left) + len(self._right)

    @property
    def num_edges(self) -> int:
        """``m``, the paper's input-size measure (§2): the number of result
        tuples the join produces."""
        return sum(len(nbrs) for nbrs in self._left.values())

    def edges(self) -> list[JoinEdge]:
        """Edges in canonical (left, right) orientation, sorted for
        deterministic iteration."""
        out = [(u, v) for u, nbrs in self._left.items() for v in nbrs]
        out.sort(key=repr)
        return out

    def side_of(self, vertex: Vertex) -> str:
        """``"left"`` or ``"right"``, or raise ``VertexError``."""
        if vertex in self._left:
            return "left"
        if vertex in self._right:
            return "right"
        raise VertexError(f"vertex {vertex!r} does not exist")

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._left or vertex in self._right

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u in self._left:
            return v in self._left[u]
        if u in self._right:
            return v in self._right[u]
        return False

    def neighbors(self, vertex: Vertex) -> set[Vertex]:
        if vertex in self._left:
            return set(self._left[vertex])
        if vertex in self._right:
            return set(self._right[vertex])
        raise VertexError(f"vertex {vertex!r} does not exist")

    def degree(self, vertex: Vertex) -> int:
        return len(self.neighbors(vertex))

    def isolated_vertices(self) -> list[Vertex]:
        """Vertices with no incident edge (removed a priori by the paper)."""
        out = [v for v, nbrs in self._left.items() if not nbrs]
        out.extend(v for v, nbrs in self._right.items() if not nbrs)
        return out

    def orient_edge(self, u: Vertex, v: Vertex) -> JoinEdge:
        """Return the edge ``{u, v}`` in canonical (left, right) orientation."""
        if not self.has_edge(u, v):
            raise EdgeError(f"edge ({u!r}, {v!r}) does not exist")
        if u in self._left:
            return (u, v)
        return (v, u)

    # ------------------------------------------------------------------
    # structure tests
    # ------------------------------------------------------------------
    def is_complete_bipartite(self) -> bool:
        """True iff every left vertex is adjacent to every right vertex.

        After dropping isolated vertices, the connected components of an
        *equijoin* graph are exactly the complete bipartite graphs
        (paper §3.1).
        """
        n_right = len(self._right)
        return all(len(nbrs) == n_right for nbrs in self._left.values())

    def is_matching(self) -> bool:
        """True iff every vertex has degree at most 1 (paper Lemma 2.4)."""
        return all(
            len(nbrs) <= 1
            for side in (self._left, self._right)
            for nbrs in side.values()
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "BipartiteGraph":
        clone = BipartiteGraph()
        clone._left = {v: set(nbrs) for v, nbrs in self._left.items()}
        clone._right = {v: set(nbrs) for v, nbrs in self._right.items()}
        return clone

    def subgraph(self, keep: Iterable[Vertex]) -> "BipartiteGraph":
        """The induced subgraph on ``keep``, preserving sides."""
        keep_set = set(keep)
        missing = [v for v in keep_set if not self.has_vertex(v)]
        if missing:
            raise VertexError(f"vertices not in graph: {sorted(map(repr, missing))}")
        sub = BipartiteGraph(
            left=(v for v in self._left if v in keep_set),
            right=(v for v in self._right if v in keep_set),
        )
        for u in sub.left:
            for v in self._left[u]:
                if v in keep_set:
                    sub.add_edge(u, v)
        return sub

    def without_isolated_vertices(self) -> "BipartiteGraph":
        """A copy with isolated vertices removed (paper §2)."""
        keep = [
            v
            for side in (self._left, self._right)
            for v, nbrs in side.items()
            if nbrs
        ]
        return self.subgraph(keep)

    def to_graph(self) -> Graph:
        """Forget the bipartition and return a plain :class:`Graph`."""
        g = Graph(vertices=list(self._left) + list(self._right))
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def relabeled(self, mapping: dict[Vertex, Vertex]) -> "BipartiteGraph":
        """A copy with vertices renamed through the injective ``mapping``."""
        all_vertices = set(self._left) | set(self._right)
        if set(mapping) != all_vertices:
            raise GraphError("mapping must cover exactly the vertex set")
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("mapping must be injective")
        out = BipartiteGraph(
            left=(mapping[v] for v in self._left),
            right=(mapping[v] for v in self._right),
        )
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        return out

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return self.has_vertex(vertex)

    def __iter__(self) -> Iterator[Vertex]:
        yield from self._left
        yield from self._right

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            set(self._left) == set(other._left)
            and set(self._right) == set(other._right)
            and set(self.edges()) == set(other.edges())
        )

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("BipartiteGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(left={len(self._left)}, right={len(self._right)}, "
            f"m={self.num_edges})"
        )


def from_edges(edges: Iterable[tuple[Vertex, Vertex]]) -> BipartiteGraph:
    """Build a bipartite graph from left-to-right edge pairs.

    Every first component is placed on the left, every second on the right.
    A label used on both sides raises :class:`~repro.errors.GraphError`.
    """
    g = BipartiteGraph()
    for u, v in edges:
        g.add_left_vertex(u)
        g.add_right_vertex(v)
        g.add_edge(u, v)
    return g
