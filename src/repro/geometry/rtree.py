"""An R-tree with Sort-Tile-Recursive (STR) bulk loading.

The spatial-join literature the paper builds on (Günther; Orenstein;
Patel–DeWitt) evaluates overlap joins through spatial indexes; this R-tree
is the index substrate for :mod:`repro.joins.algorithms.spatial`.  It
supports window queries and a synchronized-descent index join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import GeometryError
from repro.geometry.primitives import Rectangle

DEFAULT_FANOUT = 8


@dataclass
class _Node:
    bounds: Rectangle
    children: list["_Node"] = field(default_factory=list)
    entries: list[tuple[Rectangle, Any]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _bounds_of(rects: list[Rectangle]) -> Rectangle:
    out = rects[0]
    for r in rects[1:]:
        out = out.union_bounds(r)
    return out


class RTree:
    """A static R-tree over ``(rectangle, payload)`` entries.

    Built once by STR bulk loading: entries are sorted by center-x, sliced
    into vertical strips, each strip sorted by center-y and cut into leaf
    pages; the process repeats on the page bounding boxes until one root
    remains.

    Example
    -------
    >>> tree = RTree([(Rectangle(0, 0, 1, 1), "a"), (Rectangle(5, 5, 6, 6), "b")])
    >>> [p for _, p in tree.query(Rectangle(0.5, 0.5, 2, 2))]
    ['a']
    """

    def __init__(
        self,
        entries: list[tuple[Rectangle, Any]],
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        if fanout < 2:
            raise GeometryError("fanout must be at least 2")
        self.fanout = fanout
        self.size = len(entries)
        self.root = self._bulk_load(list(entries)) if entries else None

    # ------------------------------------------------------------------
    def _bulk_load(self, entries: list[tuple[Rectangle, Any]]) -> _Node:
        import math

        leaves: list[_Node] = []
        entries.sort(key=lambda e: (e[0].center.x, e[0].center.y))
        n = len(entries)
        leaf_count = math.ceil(n / self.fanout)
        strip_count = max(1, math.ceil(math.sqrt(leaf_count)))
        per_strip = math.ceil(n / strip_count)
        for s in range(0, n, per_strip):
            strip = entries[s : s + per_strip]
            strip.sort(key=lambda e: (e[0].center.y, e[0].center.x))
            for o in range(0, len(strip), self.fanout):
                page = strip[o : o + self.fanout]
                leaves.append(
                    _Node(bounds=_bounds_of([r for r, _ in page]), entries=page)
                )
        level = leaves
        while len(level) > 1:
            level.sort(key=lambda nd: (nd.bounds.center.x, nd.bounds.center.y))
            parents: list[_Node] = []
            for o in range(0, len(level), self.fanout):
                group = level[o : o + self.fanout]
                parents.append(
                    _Node(
                        bounds=_bounds_of([g.bounds for g in group]),
                        children=group,
                    )
                )
            level = parents
        return level[0]

    # ------------------------------------------------------------------
    def query(self, window: Rectangle) -> list[tuple[Rectangle, Any]]:
        """All entries whose rectangle overlaps ``window``."""
        if self.root is None:
            return []
        out: list[tuple[Rectangle, Any]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(window):
                continue
            if node.is_leaf:
                out.extend(
                    (r, payload)
                    for r, payload in node.entries
                    if r.intersects(window)
                )
            else:
                stack.extend(node.children)
        return out

    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a single leaf)."""
        h = 0
        node = self.root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h

    def join(self, other: "RTree") -> list[tuple[Any, Any]]:
        """Synchronized-descent R-tree join: all overlapping payload pairs.

        The classic index-based spatial join: descend both trees in
        lockstep, pruning subtree pairs whose bounds do not overlap.
        """
        if self.root is None or other.root is None:
            return []
        out: list[tuple[Any, Any]] = []
        stack: list[tuple[_Node, _Node]] = [(self.root, other.root)]
        while stack:
            a, b = stack.pop()
            if not a.bounds.intersects(b.bounds):
                continue
            if a.is_leaf and b.is_leaf:
                for ra, pa in a.entries:
                    for rb, pb in b.entries:
                        if ra.intersects(rb):
                            out.append((pa, pb))
            elif a.is_leaf:
                stack.extend((a, child) for child in b.children)
            elif b.is_leaf:
                stack.extend((child, b) for child in a.children)
            else:
                for ca in a.children:
                    for cb in b.children:
                        stack.append((ca, cb))
        return out
