"""Plane-sweep rectangle intersection.

The standard algorithm for the filter step of spatial joins: sweep a
vertical line across x; rectangles are *active* while the line is inside
their x-interval; on each rectangle's activation, report overlaps against
the active set of the other relation using y-interval tests.

Runs in ``O((n + k) log n)``-ish time with the interval list kept sorted
(``k`` = output size); exact asymptotics are not the point — the point is a
realistic sweep-based join whose *output order* feeds the pebbling trace
bridge.
"""

from __future__ import annotations

from typing import Any

from repro.geometry.primitives import Rectangle


def sweep_rectangle_pairs(
    left: list[tuple[Rectangle, Any]],
    right: list[tuple[Rectangle, Any]],
) -> list[tuple[Any, Any]]:
    """All overlapping ``(left_payload, right_payload)`` pairs by plane sweep.

    Output order is the sweep order (by activation x, ties by side), which
    is exactly the order a sweep-based join algorithm would emit result
    tuples — downstream, :mod:`repro.joins.trace` turns that order into a
    pebbling scheme.
    """
    events: list[tuple[float, int, int, int]] = []  # (x, kind, side, idx)
    # kind 0 = activation, processed before deactivations at same x to keep
    # closed-interval semantics; side 0 = left, 1 = right.
    for idx, (rect, _) in enumerate(left):
        events.append((rect.x_min, 0, 0, idx))
        events.append((rect.x_max, 1, 0, idx))
    for idx, (rect, _) in enumerate(right):
        events.append((rect.x_min, 0, 1, idx))
        events.append((rect.x_max, 1, 1, idx))
    events.sort(key=lambda e: (e[0], e[1]))

    active_left: dict[int, Rectangle] = {}
    active_right: dict[int, Rectangle] = {}
    out: list[tuple[Any, Any]] = []
    for _x, kind, side, idx in events:
        if kind == 1:
            (active_left if side == 0 else active_right).pop(idx, None)
            continue
        if side == 0:
            rect, payload = left[idx]
            active_left[idx] = rect
            for j, other in active_right.items():
                if rect.y_min <= other.y_max and other.y_min <= rect.y_max:
                    out.append((payload, right[j][1]))
        else:
            rect, payload = right[idx]
            active_right[idx] = rect
            for i, other in active_left.items():
                if rect.y_min <= other.y_max and other.y_min <= rect.y_max:
                    out.append((left[i][1], payload))
    return out
