"""Overlap and intersection tests.

The spatial-overlap join predicate ``r.A ∩ s.B ≠ ∅`` needs a robust overlap
test for each geometry pair.  Rectangle–rectangle is interval arithmetic;
polygon–polygon uses the standard two-part test: boundary segments
intersect, or one polygon contains a vertex of the other.
"""

from __future__ import annotations

from repro.geometry.primitives import Point, Polygon, Rectangle

_EPS = 1e-12


def rectangles_overlap(a: Rectangle, b: Rectangle) -> bool:
    """Closed overlap of axis-aligned rectangles."""
    return a.intersects(b)


def _orient(a: Point, b: Point, c: Point) -> int:
    """Sign of the cross product (b−a) × (c−a): 1 ccw, −1 cw, 0 collinear."""
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def point_on_segment(p: Point, a: Point, b: Point) -> bool:
    """Is ``p`` on the closed segment ``ab``?"""
    if _orient(a, b, p) != 0:
        return False
    return (
        min(a.x, b.x) - _EPS <= p.x <= max(a.x, b.x) + _EPS
        and min(a.y, b.y) - _EPS <= p.y <= max(a.y, b.y) + _EPS
    )


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Closed-segment intersection, handling all collinear cases."""
    d1 = _orient(q1, q2, p1)
    d2 = _orient(q1, q2, p2)
    d3 = _orient(p1, p2, q1)
    d4 = _orient(p1, p2, q2)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and point_on_segment(p1, q1, q2):
        return True
    if d2 == 0 and point_on_segment(p2, q1, q2):
        return True
    if d3 == 0 and point_on_segment(q1, p1, p2):
        return True
    if d4 == 0 and point_on_segment(q2, p1, p2):
        return True
    return False


def polygons_overlap(a: Polygon, b: Polygon) -> bool:
    """Do two simple polygons share at least one point (closed semantics)?

    Fast path: bounding boxes must overlap.  Then: any pair of boundary
    edges intersects, or one polygon's first vertex is inside the other
    (covering the nested case).
    """
    if not a.bounding_box().intersects(b.bounding_box()):
        return False
    edges_a = a.edges()
    edges_b = b.edges()
    for ea in edges_a:
        for eb in edges_b:
            if segments_intersect(ea[0], ea[1], eb[0], eb[1]):
                return True
    if b.contains_point(a.vertices[0]):
        return True
    if a.contains_point(b.vertices[0]):
        return True
    return False


def overlap(a, b) -> bool:
    """Polymorphic overlap over the supported geometry types."""
    from repro.geometry.interval import Interval

    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.overlaps(b)
    if isinstance(a, Rectangle) and isinstance(b, Rectangle):
        return rectangles_overlap(a, b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return polygons_overlap(a, b)
    if isinstance(a, Rectangle) and isinstance(b, Polygon):
        return polygons_overlap(Polygon.from_rectangle(a), b)
    if isinstance(a, Polygon) and isinstance(b, Rectangle):
        return polygons_overlap(a, Polygon.from_rectangle(b))
    raise TypeError(f"unsupported geometry pair: {type(a).__name__}, {type(b).__name__}")
