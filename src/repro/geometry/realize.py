"""Geometric realizations of prescribed join graphs (Lemma 3.4 and beyond).

Lemma 3.4 states that the worst-case family of Fig 1(a) arises as the join
graph of a spatial overlap join.  :func:`realize_worst_case_family` builds
such an instance from axis-aligned rectangles.

The library goes further with :func:`realize_bipartite_with_combs`: *every*
bipartite graph is the overlap join graph of two sets of simple rectilinear
("comb") polygons.  The construction gives each edge ``(u_i, v_j)`` a
private x-column; ``u_i`` is a horizontal spine high up with teeth
descending into a middle strip at its edge columns, ``v_j`` a spine low
down with teeth ascending into the same strip.  Two teeth meet in the
middle strip iff they share a column iff the edge exists.  Overlaps among
polygons of the *same* relation are irrelevant to the join graph, which is
what makes the construction work.  This strengthens the paper's §3.3
observation (spatial joins reach the worst case) to full universality, the
spatial analogue of Lemma 3.3.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.graphs.bipartite import BipartiteGraph
from repro.geometry.primitives import Point, Polygon, Rectangle
from repro.relations.relation import Relation


def realize_worst_case_family(n: int) -> tuple[Relation, Relation]:
    """A rectangle instance whose overlap join graph is ``G_n`` (Lemma 3.4).

    Layout: the star centre ``c`` is a long horizontal bar; each ``v_j`` is
    a vertical bar crossing it; each pendant ``w_j`` is a small box touching
    only the bottom of ``v_j``.  Returns ``(R, S)`` where
    ``R = [c, w_0, …]`` and ``S = [v_0, …]`` in the same vertex order as
    :func:`repro.core.families.worst_case_family` (asserted by tests).
    """
    if n < 1:
        raise GeometryError("family defined for n >= 1")
    centre = Rectangle(0.0, 0.0, float(4 * n), 1.0)
    r_values = [centre]
    s_values = []
    for j in range(n):
        x0 = 4.0 * j + 1.0
        s_values.append(Rectangle(x0, -4.0, x0 + 1.0, 0.5))
        r_values.append(Rectangle(x0, -5.0, x0 + 1.0, -3.5))  # w_j
    return Relation("R", r_values), Relation("S", s_values)


def realize_union_of_bicliques(sizes: list[tuple[int, int]]) -> tuple[Relation, Relation]:
    """A rectangle instance whose overlap join graph is a union of
    complete bipartite blocks — the equijoin shape, realized spatially.

    Block ``b`` lives in its own disjoint region; inside it all ``k`` left
    and all ``l`` right rectangles pairwise overlap.
    """
    r_values: list[Rectangle] = []
    s_values: list[Rectangle] = []
    for b, (k, l) in enumerate(sizes):
        ox = 10.0 * b
        for i in range(k):
            r_values.append(Rectangle(ox + 0.1 * i, 0.0, ox + 5.0, 5.0))
        for j in range(l):
            s_values.append(Rectangle(ox + 1.0, 0.1 * j, ox + 4.0, 4.0))
    return Relation("R", r_values), Relation("S", s_values)


def _comb_polygon(
    spine_y0: float,
    spine_y1: float,
    columns: list[float],
    tooth_width: float,
    tooth_tip_y: float,
    x_extent: tuple[float, float],
) -> Polygon:
    """A rectilinear comb: a horizontal spine with rectangular teeth.

    Teeth extend from the spine towards ``tooth_tip_y`` (below the spine if
    ``tooth_tip_y < spine_y0``, above if ``> spine_y1``) at the given column
    x-positions.  With no columns, the comb degenerates to the spine box.
    """
    x_lo, x_hi = x_extent
    if spine_y0 >= spine_y1:
        raise GeometryError("spine must have positive height")
    cols = sorted(columns)
    if not cols:
        return Polygon.from_rectangle(Rectangle(x_lo, spine_y0, x_hi, spine_y1))
    teeth_below = tooth_tip_y < spine_y0
    base_y = spine_y0 if teeth_below else spine_y1
    ring: list[Point] = []
    if teeth_below:
        # Clockwise from top-left: top edge, right edge, weave along bottom.
        ring.append(Point(x_lo, spine_y1))
        ring.append(Point(x_hi, spine_y1))
        ring.append(Point(x_hi, base_y))
        for c in reversed(cols):
            ring.append(Point(c + tooth_width, base_y))
            ring.append(Point(c + tooth_width, tooth_tip_y))
            ring.append(Point(c, tooth_tip_y))
            ring.append(Point(c, base_y))
        ring.append(Point(x_lo, base_y))
    else:
        # Counter-clockwise from bottom-left: bottom edge, right edge, weave
        # along the top.
        ring.append(Point(x_lo, spine_y0))
        ring.append(Point(x_hi, spine_y0))
        ring.append(Point(x_hi, base_y))
        for c in reversed(cols):
            ring.append(Point(c + tooth_width, base_y))
            ring.append(Point(c + tooth_width, tooth_tip_y))
            ring.append(Point(c, tooth_tip_y))
            ring.append(Point(c, base_y))
        ring.append(Point(x_lo, base_y))
    return Polygon(ring)


def realize_bipartite_with_combs(graph: BipartiteGraph) -> tuple[Relation, Relation]:
    """A polygon instance whose overlap join graph is exactly ``graph``.

    Universality construction (see module docstring).  The returned
    relations list one polygon per vertex, in ``graph.left`` /
    ``graph.right`` order, so ``TupleRef("R", i)`` corresponds to
    ``graph.left[i]``.
    """
    lefts = graph.left
    rights = graph.right
    left_index = {v: i for i, v in enumerate(lefts)}
    right_index = {v: j for j, v in enumerate(rights)}
    n_left = len(lefts)

    def column_x(i: int, j: int) -> float:
        # A private unit column per (left, right) pair.
        return float(j * n_left + i)

    total_cols = max(1, n_left * len(rights))
    x_extent = (-1.0, float(total_cols) + 1.0)
    tooth_width = 0.5

    r_polys: list[Polygon] = []
    for i, u in enumerate(lefts):
        cols = [column_x(i, right_index[v]) for v in graph.neighbors(u)]
        # Spine high above the middle strip; teeth descend to y = -1.
        y0 = 2.0 + 2.0 * i
        r_polys.append(
            _comb_polygon(y0, y0 + 1.0, cols, tooth_width, -1.0, x_extent)
        )
    s_polys: list[Polygon] = []
    for j, v in enumerate(rights):
        cols = [column_x(left_index[u], j) for u in graph.neighbors(v)]
        # Spine far below; teeth ascend to y = +1.
        y1 = -2.0 - 2.0 * j
        s_polys.append(
            _comb_polygon(y1 - 1.0, y1, cols, tooth_width, 1.0, x_extent)
        )
    return Relation("R", r_polys), Relation("S", s_polys)
