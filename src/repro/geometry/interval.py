"""1D intervals: the temporal-join substrate.

Interval overlap joins ("find all meeting pairs whose times intersect")
are the one-dimensional slice of spatial overlap.  One might hope a single
dimension tames the pebbling worst case — it does not, and the reason is a
point worth internalizing about the model: **same-relation overlaps are
invisible to the join graph** (edges connect ``R``-tuples to ``S``-tuples
only).  The worst-case family ``G_n`` of Theorem 3.3 is therefore
realizable with plain intervals by *nesting*: the star centre ``c`` covers
the whole timeline, each arm ``v_j`` is a disjoint sub-interval of ``c``,
and each pendant ``w_j`` nests inside its ``v_j`` — ``w_j`` overlaps ``c``
too, but both live in ``R``, so no edge results
(:func:`realize_worst_case_intervals`, verified in tests).  Temporal joins
thus inherit the full ``1.25m − 1`` lower bound; dimensionality is no
refuge.  (An earlier draft of this module conjectured the opposite; the
randomized falsification test found the nesting counterexample — the test
is kept, inverted, as the witness.)
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the line."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise GeometryError(f"inverted interval bounds: {self}")

    @property
    def length(self) -> float:
        return self.hi - self.lo

    def overlaps(self, other: "Interval") -> bool:
        """Closed-interval overlap (endpoint contact counts)."""
        return self.lo <= other.hi and other.lo <= self.hi

    def contains(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def contains_point(self, x: float) -> bool:
        return self.lo <= x <= self.hi

    def translated(self, dx: float) -> "Interval":
        return Interval(self.lo + dx, self.hi + dx)


class IntervalIndex:
    """A static overlap index over ``(interval, payload)`` entries.

    Sorted by ``lo`` with a prefix maximum of ``hi``; a stabbing/overlap
    query binary-searches the first candidate and scans while ``lo`` stays
    within range, skipping ahead using the prefix maxima.  Simple and
    adequate for the workload sizes the library uses.
    """

    def __init__(self, entries: list[tuple[Interval, Any]]) -> None:
        self._entries = sorted(entries, key=lambda e: (e[0].lo, e[0].hi))
        self._los = [e[0].lo for e in self._entries]
        self._max_hi_prefix: list[float] = []
        running = float("-inf")
        for interval, _ in self._entries:
            running = max(running, interval.hi)
            self._max_hi_prefix.append(running)

    def __len__(self) -> int:
        return len(self._entries)

    def query(self, window: Interval) -> list[tuple[Interval, Any]]:
        """All entries overlapping ``window``."""
        # Entries with lo > window.hi can never overlap.
        stop = bisect.bisect_right(self._los, window.hi)
        out = []
        for index in range(stop):
            interval, payload = self._entries[index]
            if interval.hi >= window.lo:
                out.append((interval, payload))
        return out


def sweep_interval_pairs(
    left: list[tuple[Interval, Any]],
    right: list[tuple[Interval, Any]],
) -> list[tuple[Any, Any]]:
    """All overlapping ``(left_payload, right_payload)`` pairs by an
    endpoint sweep — the 1D analogue of
    :func:`repro.geometry.sweep.sweep_rectangle_pairs`, with the same
    emission-order contract for the trace bridge."""
    events: list[tuple[float, int, int, int]] = []
    for index, (interval, _) in enumerate(left):
        events.append((interval.lo, 0, 0, index))
        events.append((interval.hi, 1, 0, index))
    for index, (interval, _) in enumerate(right):
        events.append((interval.lo, 0, 1, index))
        events.append((interval.hi, 1, 1, index))
    events.sort(key=lambda e: (e[0], e[1]))

    active_left: set[int] = set()
    active_right: set[int] = set()
    out: list[tuple[Any, Any]] = []
    for _x, kind, side, index in events:
        if kind == 1:
            (active_left if side == 0 else active_right).discard(index)
            continue
        if side == 0:
            active_left.add(index)
            for j in active_right:
                out.append((left[index][1], right[j][1]))
        else:
            active_right.add(index)
            for i in active_left:
                out.append((left[i][1], right[index][1]))
    return out


def realize_worst_case_intervals(n: int) -> tuple[list, list]:
    """``G_n`` as a temporal join: the nesting construction.

    Returns ``(left_intervals, right_intervals)`` in the same vertex order
    as :func:`repro.core.families.worst_case_family` (``c, w_0, …`` on the
    left, ``v_0, …`` on the right): ``c`` spans the timeline, arm ``v_j``
    is the disjoint window ``[10j, 10j+5]``, pendant ``w_j`` nests inside
    it.  ``w_j`` overlaps ``c`` as well, but same-relation overlaps create
    no join edges — the observation that makes one-dimensional overlap
    joins attain the Theorem 3.3 worst case.
    """
    if n < 1:
        raise GeometryError("family defined for n >= 1")
    left = [Interval(0.0, 10.0 * n)]  # c
    right = []
    for j in range(n):
        right.append(Interval(10.0 * j, 10.0 * j + 5.0))  # v_j
        left.append(Interval(10.0 * j + 1.0, 10.0 * j + 2.0))  # w_j, nested
    return left, right
