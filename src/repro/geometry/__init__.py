"""Spatial substrate for spatial-overlap joins.

Provides the geometric primitives (points, axis-aligned rectangles, simple
polygons), overlap tests, an STR-bulk-loaded R-tree, a plane-sweep rectangle
intersection engine, and — the reproduction-critical piece — *realizations*:
constructions of concrete spatial instances whose overlap join graphs are
prescribed bipartite graphs (Lemma 3.4 and a comb-polygon universality
construction).
"""

from repro.geometry.primitives import Point, Polygon, Rectangle
from repro.geometry.interval import (
    Interval,
    IntervalIndex,
    realize_worst_case_intervals,
    sweep_interval_pairs,
)
from repro.geometry.intersect import (
    polygons_overlap,
    rectangles_overlap,
    segments_intersect,
)
from repro.geometry.rtree import RTree
from repro.geometry.sweep import sweep_rectangle_pairs
from repro.geometry.realize import (
    realize_bipartite_with_combs,
    realize_union_of_bicliques,
    realize_worst_case_family,
)

__all__ = [
    "Point",
    "Rectangle",
    "Polygon",
    "Interval",
    "IntervalIndex",
    "sweep_interval_pairs",
    "realize_worst_case_intervals",
    "rectangles_overlap",
    "segments_intersect",
    "polygons_overlap",
    "RTree",
    "sweep_rectangle_pairs",
    "realize_worst_case_family",
    "realize_bipartite_with_combs",
    "realize_union_of_bicliques",
]
