"""Geometric primitives: points, axis-aligned rectangles, simple polygons.

Everything is immutable and hashable so geometric values can live in
relation columns and be deduplicated.  Coordinates are floats (ints are
accepted and promoted).  Rectangles are *closed*: boundary contact counts
as overlap, consistent with the usual spatial-join semantics of "overlap"
predicates in the literature the paper cites (Orenstein; Patel–DeWitt).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True, order=True)
class Rectangle:
    """A closed axis-aligned rectangle ``[x_min, x_max] × [y_min, y_max]``.

    Degenerate (zero-width or zero-height) rectangles are allowed — they
    model line/point objects and are useful in realization constructions —
    but inverted bounds raise :class:`~repro.errors.GeometryError`.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise GeometryError(f"inverted rectangle bounds: {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains_point(self, p: Point) -> bool:
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    def intersects(self, other: "Rectangle") -> bool:
        """Closed-interval overlap test (boundary contact counts)."""
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    def union_bounds(self, other: "Rectangle") -> "Rectangle":
        """The smallest rectangle covering both."""
        return Rectangle(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def translated(self, dx: float, dy: float) -> "Rectangle":
        return Rectangle(
            self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy
        )


class Polygon:
    """A simple polygon given by its vertex ring (no self-intersections).

    Simplicity is the caller's responsibility for arbitrary input; the
    constructors used by the library (rectilinear combs, boxes) are simple
    by construction, and :meth:`is_simple` offers an O(n²) check for tests.
    """

    def __init__(self, vertices: list[Point] | list[tuple[float, float]]) -> None:
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least 3 vertices")
        ring = [v if isinstance(v, Point) else Point(*v) for v in vertices]
        if len(set(ring)) != len(ring):
            raise GeometryError("polygon has repeated vertices")
        self.vertices: tuple[Point, ...] = tuple(ring)

    @classmethod
    def from_rectangle(cls, rect: Rectangle) -> "Polygon":
        if rect.width == 0 or rect.height == 0:
            raise GeometryError("cannot polygonize a degenerate rectangle")
        return cls(
            [
                Point(rect.x_min, rect.y_min),
                Point(rect.x_max, rect.y_min),
                Point(rect.x_max, rect.y_max),
                Point(rect.x_min, rect.y_max),
            ]
        )

    def edges(self) -> list[tuple[Point, Point]]:
        """The boundary segments in ring order."""
        n = len(self.vertices)
        return [(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]

    def bounding_box(self) -> Rectangle:
        xs = [p.x for p in self.vertices]
        ys = [p.y for p in self.vertices]
        return Rectangle(min(xs), min(ys), max(xs), max(ys))

    def area(self) -> float:
        """Absolute area by the shoelace formula."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2

    def contains_point(self, p: Point) -> bool:
        """Ray-casting point-in-polygon (boundary points count as inside)."""
        from repro.geometry.intersect import point_on_segment

        for a, b in self.edges():
            if point_on_segment(p, a, b):
                return True
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def is_simple(self) -> bool:
        """O(n²) check that non-adjacent boundary edges do not intersect."""
        from repro.geometry.intersect import segments_intersect

        edges = self.edges()
        n = len(edges)
        for i in range(n):
            for j in range(i + 1, n):
                if j == i + 1 or (i == 0 and j == n - 1):
                    continue  # adjacent edges share a vertex by design
                if segments_intersect(*edges[i], *edges[j]):
                    return False
        return True

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon([v.translated(dx, dy) for v in self.vertices])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    def __repr__(self) -> str:
        return f"Polygon(n={len(self.vertices)})"
