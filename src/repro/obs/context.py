"""Ambient trace context: request-scoped correlation for spans and events.

A :class:`TraceContext` names the *request* a piece of work belongs to —
a 128-bit ``trace_id`` (32 lowercase hex chars) plus the span index of
the caller's enclosing span (``parent_span_id``).  It is deliberately
tiny and serializable, because it crosses every boundary the solve
server has:

- **wire** — clients attach it as the optional ``trace`` field of a
  ``repro-serve/v1`` request (older servers ignore unknown fields, so
  the protocol version does not change);
- **task** — :mod:`repro.parallel.pool` pickles it into worker task
  payloads, so spans recorded in a worker process ship home already
  tagged with the originating request's trace id;
- **journal** — the write-ahead request journal records it alongside the
  admitted request line, so ``--recover`` replays keep their original
  trace ids.

The *ambient* part uses :mod:`contextvars`, which is both thread-local
and asyncio-task-local: each concurrently served request on the server's
event loop sees only its own context.  :meth:`repro.obs.trace.Tracer._open`
reads the ambient context to stamp new top-level spans, so existing
instrumentation (``trace.span(...)`` calls throughout the repo) becomes
request-aware without touching any call site.

Like the rest of :mod:`repro.obs` this module is behaviour-neutral:
activating a context records nothing by itself, and when tracing is
disabled the ambient variable is simply never read.

>>> from repro.obs import context
>>> ctx = context.TraceContext(context.derived_trace_id(0, 0))
>>> with context.use(ctx):
...     context.current() is ctx
True
>>> context.current() is None
True
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import random
import string
from dataclasses import dataclass
from typing import Any, Iterator

TRACE_ID_BITS = 128
TRACE_ID_HEX_CHARS = TRACE_ID_BITS // 4

_HEX_DIGITS = frozenset(string.hexdigits.lower())


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id plus the caller's span index.

    ``parent_span_id`` is the ``Span.index`` of the enclosing span *in
    the process that created this context* — meaningful to that process
    (and to offline trace assembly), opaque everywhere else.
    """

    trace_id: str
    parent_span_id: int | None = None

    def child(self, parent_span_id: int | None) -> "TraceContext":
        """The same trace, re-rooted under a new parent span."""
        return TraceContext(trace_id=self.trace_id, parent_span_id=parent_span_id)

    def as_wire(self) -> dict[str, Any]:
        """The JSON-ready form carried on the wire and in the journal."""
        payload: dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        return payload


def new_trace_id(rng: random.Random | None = None) -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    bits = (rng or random).getrandbits(TRACE_ID_BITS)
    return format(bits, f"0{TRACE_ID_HEX_CHARS}x")


def derived_trace_id(seed: int, index: int) -> str:
    """A deterministic trace id for seeded workloads.

    The load generator mints one per generated request from its spec
    seed and the request's position, so replayed load produces the same
    trace ids without consuming any random state shared with the
    workload mix.
    """
    digest = hashlib.sha256(f"repro-trace:{seed}:{index}".encode("ascii"))
    return digest.hexdigest()[:TRACE_ID_HEX_CHARS]


def is_trace_id(value: object) -> bool:
    """True when ``value`` is a well-formed 32-hex-char trace id."""
    return (
        isinstance(value, str)
        and len(value) == TRACE_ID_HEX_CHARS
        and all(ch in _HEX_DIGITS for ch in value)
    )


def from_wire(payload: object) -> TraceContext | None:
    """Parse the wire/journal form, tolerating anything malformed.

    Trace context is an optional correlation hint, never load-bearing
    for request semantics — a garbled ``trace`` field from a newer (or
    buggy) client must degrade to "untraced", not to a protocol error.
    Returns None unless ``payload`` is a dict with a well-formed
    ``trace_id``; a bad ``parent_span_id`` is dropped, not fatal.
    """
    if not isinstance(payload, dict):
        return None
    trace_id = payload.get("trace_id")
    if not is_trace_id(trace_id):
        return None
    parent = payload.get("parent_span_id")
    if isinstance(parent, bool) or not isinstance(parent, int) or parent < 0:
        parent = None
    return TraceContext(trace_id=trace_id, parent_span_id=parent)


# ---------------------------------------------------------------------------
# Ambient propagation.
# ---------------------------------------------------------------------------

_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current() -> TraceContext | None:
    """The ambient context of the calling thread / asyncio task."""
    return _CURRENT.get()


def activate(ctx: TraceContext | None) -> contextvars.Token:
    """Set the ambient context; pass the token to :func:`deactivate`."""
    return _CURRENT.set(ctx)


def deactivate(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextlib.contextmanager
def use(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Ambient context for the duration of the ``with`` body."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
