"""Lightweight hierarchical spans: the tracing half of the observability layer.

A *span* is one timed region of execution — a solver call, a planning
decision, one benchmark scenario — identified by a dotted name and
optional attributes.  Spans nest: entering a span while another is open
records the parent/child relationship, so a completed trace is a forest
ordered by start time.

Design constraints (mirrored by :mod:`repro.obs.metrics`):

- **zero dependencies** — standard library only, like the rest of the repo;
- **off by default, near-zero overhead when off** — the process-global
  tracer starts disabled and :func:`span` then returns a shared no-op
  context manager after a single attribute check, so instrumentation can
  stay in hot paths permanently;
- **behaviour-neutral** — recording never touches random state or the
  objects under measurement (a property test asserts solver outputs are
  identical with tracing on and off).

Timing uses ``time.perf_counter_ns`` for durations (monotonic, ns
resolution) and ``time.time`` for the wall-clock start of each span (so
manifests can be correlated with external logs).

>>> from repro.obs import trace
>>> trace.reset(); trace.enable()
>>> with trace.span("solve", method="exact"):
...     with trace.span("solve.component"):
...         pass
>>> [(s.name, s.depth) for s in trace.spans()]
[('solve', 0), ('solve.component', 1)]
>>> trace.disable(); trace.reset()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs import context as obs_context


@dataclass
class Span:
    """One completed (or still-open) timed region."""

    name: str
    index: int  # position in the collector's completed-span order
    parent_index: int | None  # index of the enclosing span, None at top level
    depth: int  # nesting depth (0 = top level)
    start_unix: float  # wall-clock start, seconds since the epoch
    start_ns: int  # perf_counter_ns at entry
    end_ns: int | None = None  # perf_counter_ns at exit (None while open)
    attrs: dict[str, Any] = field(default_factory=dict)
    # Request correlation (repro.obs.context): the trace id this span
    # belongs to, and — for top-level spans whose logical parent lives in
    # another process or outside the stack — that parent's span index in
    # the *originating* process.
    trace_id: str | None = None
    remote_parent: int | None = None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (used by run manifests)."""
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent_index,
            "depth": self.depth,
            "start_unix": self.start_unix,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "remote_parent": self.remote_parent,
        }


class _NullSpan:
    """The shared do-nothing context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that records one span into the tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.span = Span(
            name=name,
            index=-1,  # assigned on entry
            parent_index=None,
            depth=0,
            start_unix=0.0,
            start_ns=0,
            attrs=attrs,
        )

    def __enter__(self) -> Span:
        self.tracer._open(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        # A span left via an exception is marked, not silently recorded
        # as success — profiles and exported traces must show where
        # failures spent their time.
        if exc_type is not None:
            self.span.attrs["error"] = True
            self.span.attrs["error_type"] = exc_type.__name__
        self.tracer._close(self.span)
        return False


class _DetachedActiveSpan:
    """Context manager recording a span that never joins the stack.

    The solve server opens one of these per request: the region is timed
    and recorded, but because it stays off the parent stack, spans from
    *other* requests interleaving on the same event loop cannot nest
    under it by accident.  Children relate to a detached span through
    the ambient :class:`repro.obs.context.TraceContext` (``trace_id`` +
    ``remote_parent``) instead of ``parent_index``.
    """

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.span = Span(
            name=name,
            index=-1,
            parent_index=None,
            depth=0,
            start_unix=0.0,
            start_ns=0,
            attrs=attrs,
        )

    def __enter__(self) -> Span:
        self.tracer._open_detached(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs["error"] = True
            self.span.attrs["error_type"] = exc_type.__name__
        self.span.end_ns = time.perf_counter_ns()
        return False


class Tracer:
    """A process-global collector of hierarchical spans.

    All state lives on the instance so tests can build private tracers,
    but normal use goes through the module-level singleton ``TRACER`` and
    the :func:`span` / :func:`enable` / :func:`disable` helpers.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._completed: list[Span] = []
        self._stack: list[Span] = []
        self._next_index = 0

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (does not change the enabled flag)."""
        self._completed = []
        self._stack = []
        self._next_index = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """A context manager timing the ``with`` body as one span.

        While the tracer is disabled this returns a shared no-op object,
        so the cost of a disabled hook is one attribute check plus the
        (empty) keyword dict.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def detached_span(self, name: str, **attrs: Any):
        """A stack-free span: timed and recorded, but never a parent.

        Use for regions that stay open across ``await`` points (one per
        in-flight server request) where stack nesting would interleave
        unrelated requests.  Links to children go through the ambient
        trace context rather than the span stack.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _DetachedActiveSpan(self, name, attrs)

    def _stamp_context(self, span: Span) -> None:
        ctx = obs_context.current()
        if ctx is not None:
            span.trace_id = ctx.trace_id
            span.remote_parent = ctx.parent_span_id

    def _open(self, span: Span) -> None:
        span.index = self._next_index
        self._next_index += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_index = parent.index
            span.depth = parent.depth + 1
            span.trace_id = parent.trace_id
        else:
            # Top-level spans inherit the ambient request identity, so
            # existing instrumentation becomes request-aware without
            # changing any call site.
            self._stamp_context(span)
        span.start_unix = time.time()
        span.start_ns = time.perf_counter_ns()
        self._stack.append(span)
        self._completed.append(span)

    def _open_detached(self, span: Span) -> None:
        span.index = self._next_index
        self._next_index += 1
        self._stamp_context(span)
        span.start_unix = time.time()
        span.start_ns = time.perf_counter_ns()
        self._completed.append(span)

    def _close(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        # Tolerate mismatched exits (a span closed out of order) rather
        # than corrupting the stack: pop through the target.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def adopt(
        self, shipped: Sequence[dict[str, Any]], origin: str | None = None
    ) -> list[Span]:
        """Fold span records from another process into this tracer.

        ``shipped`` is a sequence of :meth:`Span.as_dict` payloads in
        start order, as snapshotted by a worker process.  Each becomes a
        local span with a fresh index; parent links *within* the
        shipment are remapped, and a shipped top-level span whose
        ``remote_parent`` names a span already recorded here (the
        dispatch span whose index the parent put in the task's
        TraceContext) is attached as its child.  Worker clocks don't
        share ``perf_counter_ns`` origins, so ``start_ns`` is
        re-derived from the span's wall-clock start against this
        process's current wall/perf pair — good to about a scheduling
        quantum, which is all cross-process timelines can promise.
        """
        if not self.enabled or not shipped:
            return []
        now_unix = time.time()
        now_ns = time.perf_counter_ns()
        adopted: list[Span] = []
        index_map: dict[int, Span] = {}
        for record in shipped:
            if not isinstance(record, dict):
                continue
            try:
                name = str(record["name"])
                start_unix = float(record["start_unix"])
                duration_ns = int(record["duration_ns"])
            except (KeyError, TypeError, ValueError):
                continue
            start_ns = now_ns - int((now_unix - start_unix) * 1e9)
            attrs = record.get("attrs")
            span = Span(
                name=name,
                index=self._next_index,
                parent_index=None,
                depth=0,
                start_unix=start_unix,
                start_ns=start_ns,
                end_ns=start_ns + max(0, duration_ns),
                attrs=dict(attrs) if isinstance(attrs, dict) else {},
                trace_id=record.get("trace_id"),
                remote_parent=None,
            )
            if origin is not None:
                span.attrs.setdefault("origin", origin)
            self._next_index += 1
            parent: Span | None = None
            shipped_parent = record.get("parent")
            remote = record.get("remote_parent")
            if isinstance(shipped_parent, int) and shipped_parent in index_map:
                parent = index_map[shipped_parent]
            elif (
                isinstance(remote, int)
                and not isinstance(remote, bool)
                and 0 <= remote < len(self._completed)
            ):
                # Span.index doubles as position in _completed, so the
                # remote parent resolves by direct lookup.
                parent = self._completed[remote]
            if parent is not None:
                span.parent_index = parent.index
                span.depth = parent.depth + 1
            elif isinstance(remote, int) and not isinstance(remote, bool):
                span.remote_parent = remote
            if isinstance(shipped_index := record.get("index"), int):
                index_map[shipped_index] = span
            self._completed.append(span)
            adopted.append(span)
        return adopted

    # -- inspection ----------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost span currently open, or None at top level.

        The event log (:mod:`repro.obs.events`) reads this at emission
        time to stamp each event with its enclosing span's index.
        """
        return self._stack[-1] if self._stack else None

    def spans(self) -> list[Span]:
        """All recorded spans in start order."""
        return list(self._completed)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [s.as_dict() for s in self._completed]

    def total_ns(self, name: str) -> int:
        """Summed duration of every span with the given name."""
        return sum(s.duration_ns for s in self._completed if s.name == name)

    def render_tree(self) -> str:
        """An indented text rendering of the span forest."""
        lines = []
        for s in self._completed:
            lines.append(f"{'  ' * s.depth}{s.name}  {s.duration_ms:.3f} ms")
        return "\n".join(lines)


TRACER = Tracer()


def enable() -> None:
    """Turn span recording on (module-level singleton)."""
    TRACER.enable()


def disable() -> None:
    """Turn span recording off; already-recorded spans are kept."""
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    """Drop all spans recorded so far."""
    TRACER.reset()


def span(name: str, **attrs: Any):
    """Time the ``with`` body as a span on the global tracer.

    The instrumentation hooks throughout the repo call this; when tracing
    is disabled (the default) it is a near-free no-op.
    """
    return TRACER.span(name, **attrs)


def detached_span(name: str, **attrs: Any):
    """A stack-free span on the global tracer (see Tracer.detached_span)."""
    return TRACER.detached_span(name, **attrs)


def adopt(shipped: Sequence[dict[str, Any]], origin: str | None = None) -> list[Span]:
    """Fold another process's span records into the global tracer."""
    return TRACER.adopt(shipped, origin=origin)


def current_span() -> Span | None:
    """The innermost open span on the global tracer (None at top level)."""
    return TRACER.current_span()


def spans() -> list[Span]:
    """All spans recorded on the global tracer, in start order."""
    return TRACER.spans()


def as_dicts() -> list[dict[str, Any]]:
    """JSON-ready span dicts from the global tracer."""
    return TRACER.as_dicts()


def render_tree() -> str:
    """Indented text view of the global tracer's span forest."""
    return TRACER.render_tree()
