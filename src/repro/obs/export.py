"""Trace export: span forests as Chrome trace JSON, folded stacks, JSONL.

Three interchange formats for one recorded trace:

- **perfetto** — the Chrome trace-event JSON format (an object with a
  ``traceEvents`` list of complete ``ph: "X"`` events), loadable in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``;
- **folded** — one ``root;child;leaf <self_ns>`` line per distinct
  stack, the input format of Brendan Gregg's ``flamegraph.pl``; the
  values are self times, so they re-sum to total traced wall-clock;
- **jsonl** — one :meth:`repro.obs.trace.Span.as_dict` object per line,
  the lossless format for ad-hoc tooling.

:func:`validate_chrome_trace` is the structural schema check CI and the
test-suite run over exported traces (mirroring
``tools/check_bench_json.py`` for bench files): every event must be a
complete event carrying a non-negative ``dur`` or one half of a
correctly nested ``B``/``E`` pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.obs import trace as obs_trace
from repro.obs.profile import self_times_ns
from repro.obs.trace import Span

EXPORT_FORMATS = ("perfetto", "folded", "jsonl")

# Default filename per format (used by the CLI when -o is omitted).
DEFAULT_FILENAMES = {
    "perfetto": "trace.json",
    "folded": "trace.folded",
    "jsonl": "trace.jsonl",
}

_EVENT_PHASES = ("X", "B", "E")


def to_chrome_trace(spans: Sequence[Span], pid: int = 1) -> dict[str, Any]:
    """The span forest as a Chrome trace-event payload.

    Timestamps are microseconds relative to the earliest span, so the
    trace always starts at ``ts = 0``; every span becomes one complete
    (``ph: "X"``) event with its attributes (and depth) under ``args``.
    """
    origin = min((s.start_ns for s in spans), default=0)
    events = []
    for s in spans:
        args = {**s.attrs, "depth": s.depth, "index": s.index}
        if s.trace_id is not None:
            args["trace_id"] = s.trace_id
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": (s.start_ns - origin) / 1e3,
                "dur": s.duration_ns / 1e3,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export", "spans": len(spans)},
    }


def chrome_trace_json(spans: Sequence[Span], pid: int = 1) -> str:
    return json.dumps(to_chrome_trace(spans, pid=pid), sort_keys=True, indent=1) + "\n"


def _stack_of(span: Span, by_index: dict[int, Span]) -> str:
    names = [span.name]
    current = span
    while current.parent_index is not None:
        parent = by_index.get(current.parent_index)
        if parent is None:
            break
        names.append(parent.name)
        current = parent
    return ";".join(reversed(names))


def to_folded(spans: Sequence[Span]) -> str:
    """Folded-stack lines (``flamegraph.pl`` input): per distinct stack,
    the summed **self** time in nanoseconds.  Lines are sorted by stack
    for deterministic output; stacks whose self time rounds to zero are
    still emitted so the lines re-sum exactly to the total self time."""
    by_index = {s.index: s for s in spans}
    selfs = self_times_ns(spans)
    folded: dict[str, int] = {}
    for s, self_ns in zip(spans, selfs):
        stack = _stack_of(s, by_index)
        folded[stack] = folded.get(stack, 0) + self_ns
    return "".join(f"{stack} {folded[stack]}\n" for stack in sorted(folded))


def to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span (``Span.as_dict``), in start order."""
    return "".join(json.dumps(s.as_dict(), sort_keys=True) + "\n" for s in spans)


def export_trace(format: str, spans: Sequence[Span] | None = None) -> str:
    """The serialized trace in one of :data:`EXPORT_FORMATS` (defaults
    to the global tracer's spans)."""
    if format not in EXPORT_FORMATS:
        raise ValueError(
            f"unknown trace format {format!r}; expected one of {EXPORT_FORMATS}"
        )
    the_spans = obs_trace.spans() if spans is None else list(spans)
    if format == "perfetto":
        return chrome_trace_json(the_spans)
    if format == "folded":
        return to_folded(the_spans)
    return to_jsonl(the_spans)


def write_trace(
    path: str | Path, format: str, spans: Sequence[Span] | None = None
) -> Path:
    """Serialize and write the trace; returns the written path."""
    target = Path(path)
    target.write_text(export_trace(format, spans))
    return target


# ---------------------------------------------------------------------------
# Per-request trace assembly (repro runs trace-request).
# ---------------------------------------------------------------------------


def request_trace(
    records: Sequence[dict[str, Any]], request_id: str
) -> dict[str, Any]:
    """One request's Chrome trace assembled from merged span records.

    ``records`` are :meth:`repro.obs.trace.Span.as_dict` payloads — a
    server run's ``trace.jsonl``, holding server-side dispatch spans and
    adopted worker-process spans for *many* requests interleaved.  The
    request id selects the spans: every record whose ``attrs.id``
    matches names a trace id (the ``server.request`` root span carries
    both), and every record sharing one of those trace ids joins the
    assembled trace.  Server-side spans render as ``pid 1``, spans
    adopted from worker processes (``attrs.origin == "worker"``) as
    ``pid 2``, with timestamps in microseconds relative to the earliest
    selected span.  Raises ValueError when the request id appears
    nowhere.
    """
    trace_ids = set()
    for record in records:
        if not isinstance(record, dict) or not record.get("trace_id"):
            continue
        attrs = record.get("attrs")
        if isinstance(attrs, dict) and attrs.get("id") == request_id:
            trace_ids.add(record["trace_id"])
    if not trace_ids:
        raise ValueError(f"request id {request_id!r} not found in trace records")
    picked = [
        record
        for record in records
        if isinstance(record, dict) and record.get("trace_id") in trace_ids
    ]
    origin_us = min(float(r["start_unix"]) for r in picked) * 1e6
    events = []
    for record in sorted(picked, key=lambda r: float(r["start_unix"])):
        attrs = record.get("attrs")
        attrs = dict(attrs) if isinstance(attrs, dict) else {}
        pid = 2 if attrs.get("origin") == "worker" else 1
        try:
            duration_ns = float(record.get("duration_ns", 0))
        except (TypeError, ValueError):
            duration_ns = 0.0
        events.append(
            {
                "name": str(record.get("name") or "?"),
                "cat": "repro",
                "ph": "X",
                "ts": max(0.0, float(record["start_unix"]) * 1e6 - origin_us),
                "dur": max(0.0, duration_ns / 1e3),
                "pid": pid,
                "tid": 1,
                "args": {
                    **attrs,
                    "index": record.get("index"),
                    "depth": record.get("depth"),
                    "parent": record.get("parent"),
                    "remote_parent": record.get("remote_parent"),
                    "trace_id": record.get("trace_id"),
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.export",
            "request_id": request_id,
            "trace_ids": sorted(trace_ids),
            "spans": len(events),
        },
    }


# ---------------------------------------------------------------------------
# Schema check for exported Chrome traces.
# ---------------------------------------------------------------------------


def validate_chrome_trace(payload: object, context: str = "trace") -> list[str]:
    """All structural problems in a parsed Chrome trace (empty = valid).

    Accepts both container layouts Chrome does: an object with a
    ``traceEvents`` list, or a bare event list.  Each event must carry a
    string ``name``, numeric non-negative ``ts``, integer ``pid`` and
    ``tid``, and a phase that is either ``"X"`` (with a non-negative
    ``dur``) or a ``"B"``/``"E"`` pair that nests correctly per
    ``(pid, tid)`` track.
    """
    problems: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return [f"{context}: 'traceEvents' must be a list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"{context}: top level must be an object or an event list"]
    open_stacks: dict[tuple[Any, Any], list[str]] = {}
    for position, event in enumerate(events):
        where = f"{context}.traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: must be an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: 'name' must be a non-empty string")
            name = "?"
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        for track_field in ("pid", "tid"):
            if not isinstance(event.get(track_field), int):
                problems.append(f"{where}: {track_field!r} must be an integer")
        phase = event.get("ph")
        if phase not in _EVENT_PHASES:
            problems.append(
                f"{where}: 'ph' is {phase!r}, expected one of {_EVENT_PHASES}"
            )
            continue
        track = (event.get("pid"), event.get("tid"))
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(
                    f"{where}: complete event needs a non-negative 'dur'"
                )
        elif phase == "B":
            open_stacks.setdefault(track, []).append(name)
        else:  # "E"
            stack = open_stacks.get(track) or []
            if not stack:
                problems.append(f"{where}: 'E' event with no matching 'B'")
            else:
                opened = stack.pop()
                if opened != name:
                    problems.append(
                        f"{where}: 'E' for {name!r} closes span {opened!r}"
                    )
    for track, stack in sorted(open_stacks.items(), key=repr):
        for name in stack:
            problems.append(
                f"{context}: 'B' event {name!r} on track {track} never closed"
            )
    return problems
