"""Observability: spans, metrics, run manifests, and the bench harness.

The measurement layer the perf roadmap hangs off.  Four pieces:

- :mod:`repro.obs.trace` — hierarchical spans (context-manager API,
  ``perf_counter_ns`` durations, process-global collector), including
  detached spans for async servers and cross-process span adoption;
- :mod:`repro.obs.context` — the ambient :class:`TraceContext`
  (contextvars-based) that stamps every span with a request-scoped
  ``trace_id`` and survives the wire protocol, the worker-pool
  boundary, and the request journal;
- :mod:`repro.obs.telemetry` — the live rolling-window aggregator
  behind the solve server's ``metrics`` op and its Prometheus
  text-format v0.0.4 exposition (``repro top`` renders it);
- :mod:`repro.obs.metrics` — named counters/gauges/histogram summaries
  with deterministic, byte-stable JSON snapshots;
- :mod:`repro.obs.events` — the structured event log (``events.jsonl``:
  budget trips, ladder degradations, solver phases, injected faults),
  seq-ordered and span/run correlated;
- :mod:`repro.obs.manifest` — per-run artifact directories
  (``runs/{run_id}/manifest.json`` + ``metrics.json`` + ``report.md``)
  carrying git SHA, seed, and python version, written atomically;
- :mod:`repro.obs.bench` — the ``repro bench`` harness that feeds the
  ``BENCH_<date>.json`` perf trajectory (``benchmarks/results/``);
- :mod:`repro.obs.registry` — the SQLite run registry over ``runs/``
  plus trend/compare analytics (the ``repro runs`` commands);
- :mod:`repro.obs.report_html` — the self-contained cross-run HTML
  dashboard (``repro report --html``);
- :mod:`repro.obs.profile` — self-time attribution over recorded spans
  (the ``repro profile`` table);
- :mod:`repro.obs.export` — trace serialization to Chrome trace-event
  JSON (Perfetto), folded stacks (flamegraphs), and JSONL
  (the ``repro trace`` command), plus per-request trace assembly from
  a server run's ``trace.jsonl`` (``repro runs trace-request``).

All collectors are **off by default**, and every instrumentation hook in
the solvers, engine, joins, and storage layers is behaviour-neutral: with
observability disabled the hooks cost one attribute check, and with it
enabled they record without perturbing any result (property-tested).

>>> from repro import obs
>>> obs.enable()
>>> with obs.span("example"):
...     obs.inc("example.calls")
>>> obs.counter("example.calls")
1
>>> obs.disable(); obs.reset()
"""

from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    counter,
    inc,
    observe,
    set_gauge,
    snapshot,
)
from repro.obs.context import TraceContext
from repro.obs.telemetry import TelemetryWindow
from repro.obs.trace import TRACER, Span, Tracer, span, spans
from repro.obs.export import export_trace, write_trace

# NOTE: the submodule's convenience function ``profile()`` is *not*
# re-exported: binding it here would shadow the ``repro.obs.profile``
# module attribute.  Call ``repro.obs.profile.profile()`` instead.
from repro.obs.profile import Profile, ProfileRow, profile_spans
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


def enable() -> None:
    """Turn on span, metric, and event collection (process-global)."""
    _trace.enable()
    _metrics.enable()
    _events.enable()


def disable() -> None:
    """Turn off span, metric, and event collection."""
    _trace.disable()
    _metrics.disable()
    _events.disable()


def is_enabled() -> bool:
    """True if any collector is currently recording."""
    return _trace.is_enabled() or _metrics.is_enabled() or _events.is_enabled()


def reset() -> None:
    """Drop all recorded spans, metrics, and events (flags unchanged)."""
    _trace.reset()
    _metrics.reset()
    _events.reset()


__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Profile",
    "ProfileRow",
    "Span",
    "TRACER",
    "TelemetryWindow",
    "TraceContext",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "export_trace",
    "inc",
    "is_enabled",
    "observe",
    "profile_spans",
    "reset",
    "set_gauge",
    "snapshot",
    "span",
    "spans",
    "write_trace",
]
