"""The run registry: every ``runs/<id>/`` directory, queryable as SQLite.

PRs 1–3 made each observed run leave an artifact trail (``manifest.json``,
``metrics.json``, ``tables.json``, ``events.jsonl``, traces); this module
turns the pile of directories into one longitudinal store so questions
like "how did exact-solver timing move over the last N runs" are a query,
not a shell loop.

Four tables in ``runs/registry.db`` (see ``docs/OBSERVABILITY.md``):

- ``runs`` — one row per run directory: id, git SHA, seed, mode, status,
  creation time, artifact inventory;
- ``scenarios`` — per-run bench scenario rows (status, best/mean wall
  nanoseconds, repeats, result scalars);
- ``metrics`` — flattened ``metrics.json`` values (counters, gauges, and
  histogram count/mean/p50/p90/p99);
- ``plan_quality`` — per-run, per-predicate-class planner calibration
  aggregated from ``plans.jsonl`` (q-error p50/p90/max, misestimate
  count, choice accuracy; see :mod:`repro.obs.planquality`).

The database is a **cache, never a source of truth**: it is rebuilt from
the artifacts alone (:meth:`RunRegistry.rebuild`), so deleting it loses
nothing and the round-trip property — index, query, rebuild-from-scratch,
same answers — is tested.  Partial run directories (a run killed
mid-write, a corrupt manifest) index with ``status='partial'`` instead of
crashing the scan.

Trend analytics (:meth:`RunRegistry.trend`) compute per-scenario timing
series across runs and flag regressions with the same threshold as the
perf gate (``tools/bench_diff.py``), so "REGRESSION" means one thing
across CI, ``repro runs trend``, and the HTML report.
"""

from __future__ import annotations

import importlib.util
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import planquality

REGISTRY_SCHEMA = "repro-registry/v1"
DB_FILENAME = "registry.db"

# Artifact files a complete run directory may carry; the inventory column
# records which ones exist so report links never dangle.
ARTIFACT_FILES = (
    "manifest.json",
    "metrics.json",
    "tables.json",
    "report.md",
    "bench.json",
    "events.jsonl",
    "plans.jsonl",
    "trace.json",
    "trace.folded",
)

# Plan-quality columns `plan_trend` accepts; for every metric except
# choice_accuracy a higher value is worse (q-error grows with
# miscalibration, accuracy shrinks with it).
PLAN_METRICS = ("q_p50", "q_p90", "q_max", "misestimates", "choice_accuracy")

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_PARTIAL = "partial"


def _load_bench_diff_tolerance() -> float:
    """The perf gate's slowdown threshold, imported from
    ``tools/bench_diff.py`` when the checkout is available (installed
    packages without the tools tree fall back to the same literal)."""
    path = Path(__file__).resolve().parents[3] / "tools" / "bench_diff.py"
    try:
        spec = importlib.util.spec_from_file_location("_repro_bench_diff", path)
        if spec is None or spec.loader is None:
            return 0.25
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return float(module.DEFAULT_TOLERANCE)
    except (OSError, AttributeError, TypeError, ValueError, SyntaxError):
        return 0.25


DEFAULT_TOLERANCE = _load_bench_diff_tolerance()

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    git_sha TEXT NOT NULL,
    seed INTEGER,
    mode TEXT,
    status TEXT NOT NULL,
    created_unix REAL,
    python_version TEXT,
    platform TEXT,
    span_count INTEGER,
    path TEXT NOT NULL,
    artifacts TEXT NOT NULL,
    args_json TEXT NOT NULL,
    problems TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scenarios (
    run_id TEXT NOT NULL,
    scenario TEXT NOT NULL,
    status TEXT NOT NULL,
    best_ns REAL,
    mean_ns REAL,
    repeats INTEGER,
    results_json TEXT NOT NULL,
    PRIMARY KEY (run_id, scenario)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    value REAL,
    PRIMARY KEY (run_id, kind, name)
);
CREATE TABLE IF NOT EXISTS plan_quality (
    run_id TEXT NOT NULL,
    predicate TEXT NOT NULL,
    plans INTEGER,
    executed INTEGER,
    q_p50 REAL,
    q_p90 REAL,
    q_max REAL,
    misestimates INTEGER,
    shadow_checked INTEGER,
    choice_correct INTEGER,
    choice_accuracy REAL,
    PRIMARY KEY (run_id, predicate)
);
CREATE INDEX IF NOT EXISTS idx_scenarios_by_name ON scenarios (scenario);
CREATE INDEX IF NOT EXISTS idx_metrics_by_name ON metrics (name);
CREATE INDEX IF NOT EXISTS idx_plan_quality_by_predicate
    ON plan_quality (predicate);
"""


@dataclass
class IndexedRun:
    """The parsed view of one run directory, pre-insertion."""

    run_id: str
    path: Path
    git_sha: str = "unknown"
    seed: int | None = None
    mode: str | None = None
    status: str = STATUS_PARTIAL
    created_unix: float | None = None
    python_version: str | None = None
    platform: str | None = None
    span_count: int | None = None
    artifacts: list[str] = field(default_factory=list)
    args: dict[str, Any] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)
    scenarios: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[tuple[str, str, float]] = field(default_factory=list)
    plan_quality: list[dict[str, Any]] = field(default_factory=list)


def _read_json(path: Path, problems: list[str]) -> Any | None:
    """Parse one artifact file; unreadable/corrupt becomes a problem note
    (how mid-write-killed runs surface) instead of an exception."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{path.name}: unreadable ({exc})")
        return None


def _scenarios_from_bench(payload: Any, problems: list[str]) -> list[dict[str, Any]]:
    """Scenario rows from a ``bench.json`` (a ``BenchReport.as_dict``)."""
    rows: list[dict[str, Any]] = []
    if not isinstance(payload, dict) or not isinstance(
        payload.get("scenarios"), list
    ):
        problems.append("bench.json: no scenario list")
        return rows
    for entry in payload["scenarios"]:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            continue
        wall = entry.get("wall_ns") if isinstance(entry.get("wall_ns"), dict) else {}
        rows.append(
            {
                "scenario": entry["name"],
                "status": entry.get("status", STATUS_OK),
                "best_ns": _as_float(wall.get("best")),
                "mean_ns": _as_float(wall.get("mean")),
                "repeats": entry.get("repeats"),
                "results": entry.get("results") or {},
            }
        )
    return rows


def _scenarios_from_tables(payload: Any) -> list[dict[str, Any]]:
    """Scenario rows recovered from ``tables.json`` (pre-``bench.json``
    run dirs): the bench table's raw rows are
    ``[scenario, status, best_ms, mean_ms, repeats, summary]``."""
    rows: list[dict[str, Any]] = []
    if not isinstance(payload, list):
        return rows
    for table in payload:
        if not isinstance(table, dict):
            continue
        columns = table.get("columns")
        if not isinstance(columns, list) or columns[:2] != ["scenario", "status"]:
            continue
        for raw in table.get("rows") or []:
            if not isinstance(raw, list) or len(raw) < 5:
                continue
            best_ms, mean_ms = _as_float(raw[2]), _as_float(raw[3])
            rows.append(
                {
                    "scenario": str(raw[0]),
                    "status": str(raw[1]),
                    "best_ns": None if best_ms is None else best_ms * 1e6,
                    "mean_ns": None if mean_ms is None else mean_ms * 1e6,
                    "repeats": raw[4] if isinstance(raw[4], int) else None,
                    "results": {},
                }
            )
    return rows


def _as_float(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _metrics_rows(payload: Any) -> list[tuple[str, str, float]]:
    """Flatten a ``metrics.json`` snapshot into (kind, name, value) rows."""
    rows: list[tuple[str, str, float]] = []
    if not isinstance(payload, dict):
        return rows
    for name, value in (payload.get("counters") or {}).items():
        if (converted := _as_float(value)) is not None:
            rows.append(("counter", str(name), converted))
    for name, value in (payload.get("gauges") or {}).items():
        if (converted := _as_float(value)) is not None:
            rows.append(("gauge", str(name), converted))
    for name, summary in (payload.get("histograms") or {}).items():
        if not isinstance(summary, dict):
            continue
        for stat in ("count", "mean", "p50", "p90", "p99"):
            if (converted := _as_float(summary.get(stat))) is not None:
                rows.append(("histogram", f"{name}.{stat}", converted))
    return rows


def _plan_quality_rows(path: Path, problems: list[str]) -> list[dict[str, Any]]:
    """Per-predicate calibration rows aggregated from one ``plans.jsonl``.

    Malformed lines become problem notes (same contract as every other
    artifact: a truncated log marks the run partial, never crashes the
    scan); well-formed records still aggregate.
    """
    if not path.is_file():
        return []
    try:
        text = path.read_text()
    except OSError as exc:
        problems.append(f"plans.jsonl: unreadable ({exc})")
        return []
    records: list[planquality.PlanRecord] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(planquality.PlanRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            problems.append(f"plans.jsonl:{number}: bad plan record ({exc})")
    return planquality.calibration(records) if records else []


def parse_run_dir(run_dir: str | Path) -> IndexedRun:
    """Parse one run directory into an :class:`IndexedRun`.

    Never raises on artifact content: a directory with a missing or
    truncated ``manifest.json`` still indexes (run id falls back to the
    directory name, ``status='partial'``, problems recorded), so one run
    killed mid-write cannot poison the whole index.
    """
    run_dir = Path(run_dir)
    problems: list[str] = []
    run = IndexedRun(run_id=run_dir.name, path=run_dir, problems=problems)
    run.artifacts = [
        name for name in ARTIFACT_FILES if (run_dir / name).is_file()
    ]

    manifest = _read_json(run_dir / "manifest.json", problems)
    extra: dict[str, Any] = {}
    if isinstance(manifest, dict):
        if isinstance(manifest.get("run_id"), str) and manifest["run_id"]:
            run.run_id = manifest["run_id"]
        if isinstance(manifest.get("git_sha"), str):
            run.git_sha = manifest["git_sha"]
        if isinstance(manifest.get("seed"), int):
            run.seed = manifest["seed"]
        run.created_unix = _as_float(manifest.get("created_unix"))
        if isinstance(manifest.get("python_version"), str):
            run.python_version = manifest["python_version"]
        if isinstance(manifest.get("platform"), str):
            run.platform = manifest["platform"]
        if isinstance(manifest.get("span_count"), int):
            run.span_count = manifest["span_count"]
        if isinstance(manifest.get("args"), dict):
            run.args = manifest["args"]
        if isinstance(manifest.get("extra"), dict):
            extra = manifest["extra"]
    elif manifest is None and "manifest.json" not in run.artifacts:
        problems.append("manifest.json: missing")
    if isinstance(extra.get("mode"), str):
        run.mode = extra["mode"]

    metrics = _read_json(run_dir / "metrics.json", problems)
    if metrics is None and "metrics.json" not in run.artifacts:
        problems.append("metrics.json: missing")
    run.metrics = _metrics_rows(metrics)

    bench = _read_json(run_dir / "bench.json", problems)
    if bench is not None:
        run.scenarios = _scenarios_from_bench(bench, problems)
    else:
        run.scenarios = _scenarios_from_tables(
            _read_json(run_dir / "tables.json", problems)
        )

    run.plan_quality = _plan_quality_rows(run_dir / "plans.jsonl", problems)

    if problems:
        run.status = STATUS_PARTIAL
    elif any(s["status"] != STATUS_OK for s in run.scenarios) or (
        isinstance(extra.get("failed"), list) and extra["failed"]
    ):
        run.status = STATUS_FAILED
    else:
        run.status = STATUS_OK
    return run


class RunRegistry:
    """The SQLite-backed index over a ``runs/`` directory.

    ``path`` may be a filesystem path or ``":memory:"``; in either case
    the store is disposable — :meth:`rebuild` reconstructs it from the
    run directories alone.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA_SQL)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- indexing ------------------------------------------------------
    def index_run(self, run_dir: str | Path) -> IndexedRun:
        """Parse and upsert one run directory; returns the parsed view."""
        run = parse_run_dir(run_dir)
        with self._conn:
            self._conn.execute(
                "REPLACE INTO runs (run_id, git_sha, seed, mode, status,"
                " created_unix, python_version, platform, span_count, path,"
                " artifacts, args_json, problems)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run.run_id,
                    run.git_sha,
                    run.seed,
                    run.mode,
                    run.status,
                    run.created_unix,
                    run.python_version,
                    run.platform,
                    run.span_count,
                    str(run.path),
                    json.dumps(run.artifacts),
                    json.dumps(run.args, sort_keys=True),
                    json.dumps(run.problems),
                ),
            )
            self._conn.execute(
                "DELETE FROM scenarios WHERE run_id = ?", (run.run_id,)
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO scenarios (run_id, scenario, status,"
                " best_ns, mean_ns, repeats, results_json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run.run_id,
                        s["scenario"],
                        s["status"],
                        s["best_ns"],
                        s["mean_ns"],
                        s["repeats"],
                        json.dumps(s["results"], sort_keys=True, default=str),
                    )
                    for s in run.scenarios
                ],
            )
            self._conn.execute(
                "DELETE FROM metrics WHERE run_id = ?", (run.run_id,)
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO metrics (run_id, kind, name, value)"
                " VALUES (?, ?, ?, ?)",
                [(run.run_id, kind, name, value) for kind, name, value in run.metrics],
            )
            self._conn.execute(
                "DELETE FROM plan_quality WHERE run_id = ?", (run.run_id,)
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO plan_quality (run_id, predicate,"
                " plans, executed, q_p50, q_p90, q_max, misestimates,"
                " shadow_checked, choice_correct, choice_accuracy)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run.run_id,
                        row["predicate"],
                        row["plans"],
                        row["executed"],
                        row["q_p50"],
                        row["q_p90"],
                        row["q_max"],
                        row["misestimates"],
                        row["shadow_checked"],
                        row["choice_correct"],
                        row["choice_accuracy"],
                    )
                    for row in run.plan_quality
                ],
            )
        return run

    def rebuild(self, runs_dir: str | Path) -> list[IndexedRun]:
        """Drop everything and re-index every subdirectory of ``runs_dir``.

        Non-directories (e.g. ``registry.db`` itself) are skipped; a
        missing ``runs_dir`` just yields an empty index.
        """
        with self._conn:
            for table in ("runs", "scenarios", "metrics", "plan_quality"):
                self._conn.execute(f"DELETE FROM {table}")
        runs_dir = Path(runs_dir)
        if not runs_dir.is_dir():
            return []
        return [
            self.index_run(entry)
            for entry in sorted(runs_dir.iterdir())
            if entry.is_dir()
        ]

    # -- queries -------------------------------------------------------
    def runs(self, limit: int | None = None) -> list[dict[str, Any]]:
        """All indexed runs, oldest first (created time, then id)."""
        rows = self._conn.execute(
            "SELECT run_id, git_sha, seed, mode, status, created_unix,"
            " python_version, platform, span_count, path, artifacts,"
            " args_json, problems FROM runs"
            " ORDER BY created_unix IS NULL, created_unix, run_id"
        ).fetchall()
        result = [
            {
                "run_id": r[0],
                "git_sha": r[1],
                "seed": r[2],
                "mode": r[3],
                "status": r[4],
                "created_unix": r[5],
                "python_version": r[6],
                "platform": r[7],
                "span_count": r[8],
                "path": r[9],
                "artifacts": json.loads(r[10]),
                "args": json.loads(r[11]),
                "problems": json.loads(r[12]),
            }
            for r in rows
        ]
        if limit is not None:
            result = result[-limit:]
        return result

    def run(self, run_id: str) -> dict[str, Any] | None:
        """One run row by id, or None."""
        for entry in self.runs():
            if entry["run_id"] == run_id:
                return entry
        return None

    def scenarios_for(self, run_id: str) -> list[dict[str, Any]]:
        """Scenario rows of one run, by scenario name."""
        rows = self._conn.execute(
            "SELECT scenario, status, best_ns, mean_ns, repeats, results_json"
            " FROM scenarios WHERE run_id = ? ORDER BY scenario",
            (run_id,),
        ).fetchall()
        return [
            {
                "scenario": r[0],
                "status": r[1],
                "best_ns": r[2],
                "mean_ns": r[3],
                "repeats": r[4],
                "results": json.loads(r[5]),
            }
            for r in rows
        ]

    def scenario_names(self) -> list[str]:
        """Every scenario name seen across all indexed runs."""
        rows = self._conn.execute(
            "SELECT DISTINCT scenario FROM scenarios ORDER BY scenario"
        ).fetchall()
        return [r[0] for r in rows]

    def metrics_for(self, run_id: str) -> list[dict[str, Any]]:
        """Flattened metric rows of one run."""
        rows = self._conn.execute(
            "SELECT kind, name, value FROM metrics WHERE run_id = ?"
            " ORDER BY kind, name",
            (run_id,),
        ).fetchall()
        return [{"kind": r[0], "name": r[1], "value": r[2]} for r in rows]

    def plan_quality_for(self, run_id: str) -> list[dict[str, Any]]:
        """Per-predicate-class calibration rows of one run."""
        rows = self._conn.execute(
            "SELECT predicate, plans, executed, q_p50, q_p90, q_max,"
            " misestimates, shadow_checked, choice_correct, choice_accuracy"
            " FROM plan_quality WHERE run_id = ? ORDER BY predicate",
            (run_id,),
        ).fetchall()
        return [
            {
                "predicate": r[0],
                "plans": r[1],
                "executed": r[2],
                "q_p50": r[3],
                "q_p90": r[4],
                "q_max": r[5],
                "misestimates": r[6],
                "shadow_checked": r[7],
                "choice_correct": r[8],
                "choice_accuracy": r[9],
            }
            for r in rows
        ]

    def plan_predicates(self) -> list[str]:
        """Every predicate class with calibration data across all runs."""
        rows = self._conn.execute(
            "SELECT DISTINCT predicate FROM plan_quality ORDER BY predicate"
        ).fetchall()
        return [r[0] for r in rows]

    def series(
        self, scenario: str, metric: str = "best_ns", limit: int | None = None
    ) -> list[dict[str, Any]]:
        """The timing series of one scenario across runs, oldest first.

        Each point carries run provenance plus ``value_ns`` (None for
        failed/partial points — they stay in the series so gaps are
        visible rather than silently compacted).
        """
        if metric not in ("best_ns", "mean_ns"):
            raise ValueError(f"metric must be best_ns or mean_ns, got {metric!r}")
        points = []
        for run in self.runs():
            for entry in self.scenarios_for(run["run_id"]):
                if entry["scenario"] != scenario:
                    continue
                points.append(
                    {
                        "run_id": run["run_id"],
                        "git_sha": run["git_sha"],
                        "created_unix": run["created_unix"],
                        "mode": run["mode"],
                        "status": entry["status"],
                        "value_ns": entry[metric]
                        if entry["status"] == STATUS_OK
                        else None,
                    }
                )
        if limit is not None:
            points = points[-limit:]
        return points

    # -- analytics -----------------------------------------------------
    def trend(
        self,
        scenario: str,
        metric: str = "best_ns",
        tolerance: float = DEFAULT_TOLERANCE,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """The scenario series with per-point regression verdicts.

        Each point is compared against the **previous ok point** with the
        perf gate's rule: ratio above ``1 + tolerance`` is a REGRESSION,
        below ``1 - tolerance`` is faster, a failed point after an ok one
        is FAILED.  The first comparable point is the baseline.
        """
        points = self.series(scenario, metric=metric, limit=limit)
        previous: float | None = None
        for point in points:
            value = point["value_ns"]
            if value is None:
                point["ratio"] = None
                point["verdict"] = (
                    "FAILED" if point["status"] != STATUS_OK else "no-timing"
                )
                continue
            if previous is None or previous <= 0:
                point["ratio"] = None
                point["verdict"] = "baseline"
            else:
                ratio = value / previous
                point["ratio"] = ratio
                if ratio > 1.0 + tolerance:
                    point["verdict"] = "REGRESSION"
                elif ratio < 1.0 - tolerance:
                    point["verdict"] = "faster"
                else:
                    point["verdict"] = "ok"
            previous = value
        return points

    def plan_series(
        self,
        predicate: str,
        metric: str = "q_p90",
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """The calibration series of one predicate class across runs,
        oldest first; ``value`` is None where a run has no data."""
        if metric not in PLAN_METRICS:
            raise ValueError(
                f"metric must be one of {PLAN_METRICS}, got {metric!r}"
            )
        points = []
        for run in self.runs():
            for row in self.plan_quality_for(run["run_id"]):
                if row["predicate"] != predicate:
                    continue
                points.append(
                    {
                        "run_id": run["run_id"],
                        "git_sha": run["git_sha"],
                        "created_unix": run["created_unix"],
                        "mode": run["mode"],
                        "plans": row["plans"],
                        "value": row[metric],
                    }
                )
        if limit is not None:
            points = points[-limit:]
        return points

    def plan_trend(
        self,
        predicate: str,
        metric: str = "q_p90",
        tolerance: float = DEFAULT_TOLERANCE,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """The plan-quality series with per-point regression verdicts.

        Same vocabulary and tolerance as the perf gate: a point whose
        ratio against the previous comparable point moves past the
        tolerance *in the bad direction* is a REGRESSION — and the bad
        direction flips for ``choice_accuracy`` (shrinks when the
        planner miscalibrates) versus the q-error metrics (grow).
        """
        points = self.plan_series(predicate, metric=metric, limit=limit)
        higher_is_worse = metric != "choice_accuracy"
        previous: float | None = None
        for point in points:
            value = point["value"]
            if value is None:
                point["ratio"] = None
                point["verdict"] = "no-data"
                continue
            if previous is None or previous <= 0:
                point["ratio"] = None
                point["verdict"] = "baseline"
            else:
                ratio = value / previous
                point["ratio"] = ratio
                worse = ratio > 1.0 + tolerance
                better = ratio < 1.0 - tolerance
                if not higher_is_worse:
                    worse, better = better, worse
                if worse:
                    point["verdict"] = "REGRESSION"
                elif better:
                    point["verdict"] = "faster"
                else:
                    point["verdict"] = "ok"
            previous = value
        return points

    def compare(
        self,
        run_a: str,
        run_b: str,
        metric: str = "best_ns",
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> list[dict[str, Any]]:
        """Scenario-by-scenario comparison of two indexed runs.

        The same verdict vocabulary as ``tools/bench_diff.py``: MISSING
        (coverage loss), FAILED (ok -> failed), REGRESSION (past
        tolerance), faster, ok.
        """
        a_map = {s["scenario"]: s for s in self.scenarios_for(run_a)}
        b_map = {s["scenario"]: s for s in self.scenarios_for(run_b)}
        rows = []
        for name in sorted(a_map.keys() | b_map.keys()):
            old, fresh = a_map.get(name), b_map.get(name)
            row: dict[str, Any] = {
                "scenario": name,
                "a_ns": None if old is None else old[metric],
                "b_ns": None if fresh is None else fresh[metric],
                "ratio": None,
            }
            if old is None:
                row["verdict"] = "new"
            elif fresh is None:
                row["verdict"] = "MISSING"
            elif old["status"] != STATUS_OK:
                row["verdict"] = "baseline-failed"
            elif fresh["status"] != STATUS_OK:
                row["verdict"] = "FAILED"
            elif not row["a_ns"] or row["b_ns"] is None:
                row["verdict"] = "no-timing"
            else:
                ratio = row["b_ns"] / row["a_ns"]
                row["ratio"] = ratio
                if ratio > 1.0 + tolerance:
                    row["verdict"] = "REGRESSION"
                elif ratio < 1.0 - tolerance:
                    row["verdict"] = "faster"
                else:
                    row["verdict"] = "ok"
            rows.append(row)
        return rows

    def dump(self) -> dict[str, Any]:
        """A deterministic full-content view (the round-trip test's
        equality witness): every table, sorted."""
        return {
            "schema": REGISTRY_SCHEMA,
            "runs": self.runs(),
            "scenarios": {
                run["run_id"]: self.scenarios_for(run["run_id"])
                for run in self.runs()
            },
            "metrics": {
                run["run_id"]: self.metrics_for(run["run_id"])
                for run in self.runs()
            },
            "plan_quality": {
                run["run_id"]: self.plan_quality_for(run["run_id"])
                for run in self.runs()
            },
        }


def open_registry(
    runs_dir: str | Path,
    db_path: str | Path | None = None,
    refresh: bool = True,
) -> RunRegistry:
    """Open (and by default rebuild) the registry for ``runs_dir``.

    The database defaults to ``<runs_dir>/registry.db``; when that
    location is unwritable (read-only checkout, missing directory) the
    registry silently degrades to an in-memory store — queries work
    either way because the artifacts are the source of truth.
    """
    runs_dir = Path(runs_dir)
    target = Path(db_path) if db_path is not None else runs_dir / DB_FILENAME
    try:
        registry = RunRegistry(target)
    except sqlite3.Error:
        registry = RunRegistry(":memory:")
    if refresh:
        registry.rebuild(runs_dir)
    return registry
