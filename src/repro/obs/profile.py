"""Self-time attribution: turning a span forest into a profile table.

A span's *total* time includes everything executed inside it; its *self*
time is what remains after subtracting the durations of its **direct
children** — the time genuinely spent at that level of the stack.  Self
times are additive: summed over a consistent forest they equal the
summed duration of the top-level spans, so a profile is a partition of
observed wall-clock, exactly what a flamegraph draws.

The aggregation is deterministic given the spans: rows are grouped by
span name and ordered by descending self time with the name as
tie-break, so two profiles of the same trace render identically.

>>> from repro.obs import trace, profile
>>> trace.reset(); trace.enable()
>>> with trace.span("outer"):
...     with trace.span("inner"):
...         pass
>>> p = profile.profile()
>>> sorted(r.name for r in p.rows)
['inner', 'outer']
>>> p.total_self_ns == sum(s.duration_ns for s in trace.spans() if s.depth == 0)
True
>>> trace.disable(); trace.reset()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.analysis.report import Table
from repro.obs import trace as obs_trace
from repro.obs.trace import Span


def self_times_ns(spans: Sequence[Span]) -> list[int]:
    """Per-span self time in nanoseconds, index-aligned with ``spans``.

    Each direct child's duration is subtracted from its parent; results
    are clamped at zero so a hand-built (or clock-skewed) forest can
    never produce negative attribution.
    """
    position = {s.index: pos for pos, s in enumerate(spans)}
    selfs = [s.duration_ns for s in spans]
    for s in spans:
        if s.parent_index is not None and s.parent_index in position:
            selfs[position[s.parent_index]] -= s.duration_ns
    return [max(0, v) for v in selfs]


@dataclass(frozen=True)
class ProfileRow:
    """Aggregated timing for every span sharing one name."""

    name: str
    calls: int
    total_ns: int  # summed durations (children included)
    self_ns: int  # summed self times (children excluded)
    max_self_ns: int

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def self_ms(self) -> float:
        return self.self_ns / 1e6

    @property
    def mean_self_ns(self) -> float:
        return self.self_ns / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "max_self_ns": self.max_self_ns,
        }


@dataclass(frozen=True)
class Profile:
    """A deterministic self-time table over one recorded span forest."""

    rows: tuple[ProfileRow, ...]  # descending self time, name tie-break
    total_self_ns: int
    span_count: int

    def top(self, n: int) -> tuple[ProfileRow, ...]:
        return self.rows[:n]

    def row(self, name: str) -> ProfileRow | None:
        for r in self.rows:
            if r.name == name:
                return r
        return None

    def table(self, top: int | None = None) -> Table:
        """The profile as a rendered-ready table (`self %` is each row's
        share of the forest's total self time)."""
        shown = self.rows if top is None else self.rows[:top]
        table = Table(
            ["span", "calls", "self ms", "total ms", "self %"],
            title=(
                f"self-time profile ({self.span_count} spans, "
                f"{self.total_self_ns / 1e6:.3f} ms total)"
            ),
        )
        for r in shown:
            share = (
                100.0 * r.self_ns / self.total_self_ns
                if self.total_self_ns
                else 0.0
            )
            table.add_row(
                [r.name, r.calls, round(r.self_ms, 3), round(r.total_ms, 3), share]
            )
        return table

    def as_dict(self) -> dict[str, Any]:
        return {
            "total_self_ns": self.total_self_ns,
            "span_count": self.span_count,
            "rows": [r.as_dict() for r in self.rows],
        }


def profile_spans(spans: Sequence[Span]) -> Profile:
    """Aggregate a span forest into a :class:`Profile` by span name."""
    selfs = self_times_ns(spans)
    grouped: dict[str, list[int]] = {}
    totals: dict[str, int] = {}
    for s, self_ns in zip(spans, selfs):
        grouped.setdefault(s.name, []).append(self_ns)
        totals[s.name] = totals.get(s.name, 0) + s.duration_ns
    rows = [
        ProfileRow(
            name=name,
            calls=len(values),
            total_ns=totals[name],
            self_ns=sum(values),
            max_self_ns=max(values),
        )
        for name, values in grouped.items()
    ]
    rows.sort(key=lambda r: (-r.self_ns, r.name))
    return Profile(
        rows=tuple(rows),
        total_self_ns=sum(selfs),
        span_count=len(spans),
    )


def profile() -> Profile:
    """The profile of everything recorded on the global tracer so far."""
    return profile_spans(obs_trace.spans())
